"""Pytest bootstrap for running the suite from a source checkout.

If the ``repro`` package has been installed (``pip install -e .``) this file
does nothing.  When it has not — for example on an air-gapped machine where
editable installs are unavailable — we add ``src/`` to ``sys.path`` so the
tests and benchmarks run directly against the checkout.
"""

from __future__ import annotations

import sys
from pathlib import Path

try:
    import repro  # noqa: F401  (already importable; nothing to do)
except ImportError:  # pragma: no cover - only hit on uninstalled checkouts
    sys.path.insert(0, str(Path(__file__).resolve().parent / "src"))
