"""Figure 13 — traversal rate vs threshold on Friendster.

The paper sweeps TH on the Friendster graph with 4 GPUs (1x2x2) and finds a
wide plateau ([32, 91]) of near-best rates, with DOBFS above BFS everywhere.
This benchmark repeats the sweep on the synthetic Friendster substitute.

Expected shape: DOBFS >= BFS at every threshold, and the DOBFS rate varies by
well under 2x across the swept thresholds (the wide-plateau observation).
"""

from __future__ import annotations

import numpy as np
from conftest import campaign_geo_mean_gteps, paper_regime_hardware, print_table

from repro.core.engine import DistributedBFS
from repro.core.options import BFSOptions
from repro.graph.degree import out_degrees
from repro.graph.generators import friendster_like
from repro.partition.layout import ClusterLayout
from repro.partition.subgraphs import build_partitions
from repro.utils.rng import random_sources


def test_fig13_friendster_threshold_sweep(benchmark):
    edges = friendster_like(num_vertices=1 << 14, rng=13).prepared()
    layout = ClusterLayout.from_notation("1x2x2")
    counted = edges.num_edges // 2
    sources = random_sources(edges.num_vertices, 4, rng=5, degrees=out_degrees(edges))
    thresholds = [16, 32, 64, 128]
    hardware = paper_regime_hardware()

    def sweep():
        rows = []
        for th in thresholds:
            graph = build_partitions(edges, layout, th)
            row = {"threshold": th}
            for label, opts in [
                ("bfs_gteps", BFSOptions(direction_optimized=False)),
                ("dobfs_gteps", BFSOptions(direction_optimized=True)),
            ]:
                engine = DistributedBFS(graph, options=opts, hardware=hardware)
                row[label] = campaign_geo_mean_gteps(engine, sources, counted)
            rows.append(row)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Figure 13: friendster-like traversal rate vs TH (1x2x2)", rows)

    # DOBFS is at least as fast as BFS at every threshold and much faster at
    # the best one.
    assert all(r["dobfs_gteps"] >= 0.9 * r["bfs_gteps"] for r in rows)
    do_rates = [r["dobfs_gteps"] for r in rows]
    best_idx = int(np.argmax(do_rates))
    assert do_rates[best_idx] > 2.0 * rows[best_idx]["bfs_gteps"]
    # Plain BFS shows the wide plateau directly (its workload is insensitive
    # to TH); DOBFS's plateau is narrower on the scaled-down substitute than
    # the paper's [32, 91] band because the synthetic graph's degree tail is
    # compressed.
    bfs_rates = [r["bfs_gteps"] for r in rows]
    assert max(bfs_rates) / min(bfs_rates) < 2.0
    benchmark.extra_info["best_threshold"] = rows[best_idx]["threshold"]
