"""Figure 11 — strong scaling on a fixed-scale RMAT graph.

The paper fixes a scale-30 graph (34 billion edges, fitting on 12 GPUs thanks
to the compact representation) and scales from 12 to 64 GPUs: DOBFS improves
29% from 12 to 24 GPUs, then the curve flattens and eventually drops once
communication dominates; plain BFS strong-scales better because it has more
computation to hide the communication behind.  This benchmark fixes a
scale-15 graph and sweeps 2 to 32 virtual GPUs.

Expected shape: the elapsed time first improves with more GPUs, but the
communication share of the runtime grows monotonically, and the relative gain
per doubling shrinks (the curve flattens); plain BFS retains a larger relative
improvement from the first to the last configuration than DOBFS.
"""

from __future__ import annotations

from conftest import paper_regime_hardware, print_table

from repro.core.options import BFSOptions
from repro.perfmodel.scaling import strong_scaling_sweep

GPU_COUNTS = [2, 4, 8, 16, 32]


def test_fig11_strong_scaling(benchmark):
    scale = 15
    hardware = paper_regime_hardware()

    def run():
        rows = []
        for do in (True, False):
            points = strong_scaling_sweep(
                scale=scale,
                gpu_counts=GPU_COUNTS,
                gpus_per_rank=2,
                options=BFSOptions(direction_optimized=do),
                hardware=hardware,
                num_sources=4,
                seed=29,
            )
            for point in points:
                b = point.breakdown
                comm = (
                    b.local_communication + b.remote_normal_exchange + b.remote_delegate_reduce
                )
                rows.append(
                    {
                        "algorithm": "DOBFS" if do else "BFS",
                        "gpus": point.num_gpus,
                        "gteps": point.gteps_geo_mean,
                        "elapsed_ms": point.elapsed_ms_geo_mean,
                        "comm_share": comm / b.parts_sum(),
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(f"Figure 11: strong scaling (RMAT scale {scale})", rows)

    for algo in ("DOBFS", "BFS"):
        series = [r for r in rows if r["algorithm"] == algo]
        shares = [r["comm_share"] for r in series]
        # Communication takes a much larger share of the runtime at the
        # largest GPU count than at the smallest (the mechanism that
        # eventually flattens the DOBFS curve).  The share is not strictly
        # monotone because the suggested threshold — and with it the
        # mask/exchange mix — changes with the GPU count.
        assert shares[-1] > 1.5 * shares[0]
    do_series = [r for r in rows if r["algorithm"] == "DOBFS"]
    bfs_series = [r for r in rows if r["algorithm"] == "BFS"]
    # DOBFS gains little beyond the first configurations: its best point is
    # within 2x of its 2-GPU point (the paper sees +29% then a flat curve).
    do_rates = [r["gteps"] for r in do_series]
    assert max(do_rates) < 2.0 * do_rates[0]
    # The DOBFS curve flattens or drops at the largest GPU counts: the last
    # doubling is no better than the best earlier point by any margin.
    assert do_rates[-1] <= max(do_rates) + 1e-9
    # BFS strong-scales relatively better end-to-end than DOBFS (paper: "BFS
    # yields better strong scaling than DOBFS").
    do_total_gain = do_series[-1]["gteps"] / do_series[0]["gteps"]
    bfs_total_gain = bfs_series[-1]["gteps"] / bfs_series[0]["gteps"]
    assert bfs_total_gain > do_total_gain
    benchmark.extra_info["dobfs_total_gain"] = do_total_gain
    benchmark.extra_info["bfs_total_gain"] = bfs_total_gain
