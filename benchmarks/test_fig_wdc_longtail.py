"""§VI-D — long-tail web graph (WDC 2012 substitute).

The paper runs BFS on the WDC 2012 hyperlink graph (4.29 B vertices, 224 B
edges) on 160 GPUs: the search takes ~330 iterations on average, per-iteration
time approaches the per-iteration overhead, and DOBFS ends up *slightly
slower* than plain BFS (84.2 vs 79.7 GTEPS the other way around — BFS wins)
because the direction-decision work outweighs the traversal savings on such a
long, thin frontier.  This benchmark reproduces the behaviour on the
synthetic long-tail web graph.

Expected shape: the BFS needs an order of magnitude more iterations than an
RMAT graph of similar size; DOBFS's workload saving is marginal (nowhere near
the >3x saving on RMAT); and DOBFS does not beat BFS by any meaningful margin.
"""

from __future__ import annotations

import numpy as np
from conftest import print_table

from repro.core.engine import DistributedBFS
from repro.core.options import BFSOptions
from repro.graph.degree import out_degrees
from repro.graph.generators import wdc_like
from repro.graph.rmat import generate_rmat
from repro.partition.layout import ClusterLayout
from repro.partition.subgraphs import build_partitions


def test_wdc_long_tail_behaviour(benchmark):
    wdc = wdc_like(num_vertices=1 << 14, rng=19).prepared()
    rmat = generate_rmat(13, rng=19)
    layout = ClusterLayout.from_notation("2x2x2")

    def run():
        rows = []
        for name, edges, threshold in [("wdc-like", wdc, 256), ("rmat-13", rmat, 64)]:
            graph = build_partitions(edges, layout, threshold)
            src = int(np.argmax(out_degrees(edges)))
            plain = DistributedBFS(graph, options=BFSOptions(direction_optimized=False)).run(src)
            do = DistributedBFS(graph, options=BFSOptions()).run(src)
            rows.append(
                {
                    "graph": name,
                    "iterations": plain.iterations,
                    "bfs_elapsed_ms": plain.elapsed_ms,
                    "dobfs_elapsed_ms": do.elapsed_ms,
                    "bfs_edges_examined": plain.total_edges_examined,
                    "dobfs_edges_examined": do.total_edges_examined,
                    "do_workload_saving": plain.total_edges_examined
                    / max(do.total_edges_examined, 1),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Section VI-D: long-tail WDC-like graph vs RMAT", rows)

    wdc_row = rows[0]
    rmat_row = rows[1]
    # Long tail: the web graph needs many more iterations than RMAT.
    assert wdc_row["iterations"] > 5 * rmat_row["iterations"]
    # DO still saves >2x workload on RMAT...
    assert rmat_row["do_workload_saving"] > 2.0
    # ...but on the long-tail graph the saving is marginal,
    assert wdc_row["do_workload_saving"] < rmat_row["do_workload_saving"]
    # and DOBFS does not meaningfully beat BFS in elapsed time there.
    assert wdc_row["dobfs_elapsed_ms"] > 0.8 * wdc_row["bfs_elapsed_ms"]
    benchmark.extra_info["wdc_iterations"] = wdc_row["iterations"]
