"""§VI-A1 — network behaviour vs message size.

The paper sweeps MPI message sizes from 128 kB to 16 MB on 32 nodes and finds
that "the optimal message size is about 4 MB for data larger than 2 MB", with
small messages benefitting from caching.  This benchmark sweeps the same
range through the reproduction's :class:`NetworkModel` and prints effective
bandwidth and transfer efficiency per message size.

Expected shape: efficiency rises monotonically with message size, crosses 95%
around the 4 MB optimum, and the marginal gain beyond 4 MB is small.
"""

from __future__ import annotations

from conftest import print_table

from repro.cluster.netmodel import NetworkModel


def test_network_message_size_sweep(benchmark):
    model = NetworkModel()

    def sweep():
        rows = []
        for exp in range(17, 25):  # 128 kB .. 16 MB
            nbytes = float(1 << exp)
            eff = model.message_efficiency(nbytes)
            rows.append(
                {
                    "message_MB": nbytes / 1e6,
                    "efficiency": eff,
                    "effective_GBps": model.effective_nic_bandwidth(nbytes) / 1e9,
                    "transfer_ms": model.inter_node_time(nbytes) * 1e3,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Section VI-A1: message-size sweep (128 kB to 16 MB)", rows)

    effs = [r["efficiency"] for r in rows]
    assert all(a <= b + 1e-12 for a, b in zip(effs, effs[1:])), "efficiency must be monotone"
    four_mb = [r for r in rows if abs(r["message_MB"] - 4.194304) < 0.01][0]
    sixteen_mb = rows[-1]
    assert four_mb["efficiency"] > 0.95
    # Past the optimum, the remaining gain is marginal (<5%).
    assert sixteen_mb["efficiency"] - four_mb["efficiency"] < 0.05
    small = rows[0]
    assert small["efficiency"] < 0.5
    benchmark.extra_info["efficiency_at_4MB"] = four_mb["efficiency"]
