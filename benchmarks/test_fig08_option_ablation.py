"""Figure 8 — effect of runtime options on the per-phase runtime.

The paper's Figure 8 stacks the four runtime components (computation, local
communication, remote normal exchange, remote delegate reduce) for option
combinations {none, DO, DO+L, DO+L+U} × {IR, BR} on a scale-32 RMAT graph
with 64 GPUs in 16x2x2 and 16x1x4 configurations.  This benchmark runs the
same ablation on a scale-14 graph over 16 virtual GPUs with a low-overhead
hardware spec (the regime the paper's billion-edge graphs are in).

Expected shape:
* DO cuts the computation component by roughly 3x;
* L and U add a little local time without changing remote volume much
  (the threshold is low enough that duplicates are rare);
* BR (blocking reduction) spends less time in the delegate reduce than IR.
"""

from __future__ import annotations

from conftest import high_degree_source, print_table

from repro.cluster.hardware import HardwareSpec
from repro.core.engine import DistributedBFS
from repro.core.options import BFSOptions
from repro.partition.layout import ClusterLayout
from repro.partition.subgraphs import build_partitions

LOW_OVERHEAD = HardwareSpec(kernel_overhead_s=2e-7, iteration_overhead_s=2e-7)

ABLATION = [
    ("IR", BFSOptions(direction_optimized=False, blocking_reduce=False)),
    ("DO IR", BFSOptions(direction_optimized=True, blocking_reduce=False)),
    ("DO L IR", BFSOptions(local_all2all=True, blocking_reduce=False)),
    ("DO L U IR", BFSOptions(local_all2all=True, uniquify=True, blocking_reduce=False)),
    ("BR", BFSOptions(direction_optimized=False, blocking_reduce=True)),
    ("DO BR", BFSOptions(direction_optimized=True, blocking_reduce=True)),
    ("DO L BR", BFSOptions(local_all2all=True, blocking_reduce=True)),
    ("DO L U BR", BFSOptions(local_all2all=True, uniquify=True, blocking_reduce=True)),
]


def _run_ablation(edges, layout, source):
    graph = build_partitions(edges, layout, threshold=64)
    rows = []
    for label, opts in ABLATION:
        result = DistributedBFS(graph, options=opts, hardware=LOW_OVERHEAD).run(source)
        rows.append(
            {
                "options": label,
                "layout": layout.notation(),
                "computation_ms": result.timing.computation,
                "local_comm_ms": result.timing.local_communication,
                "remote_normal_ms": result.timing.remote_normal_exchange,
                "remote_delegate_ms": result.timing.remote_delegate_reduce,
                "elapsed_ms": result.timing.elapsed_ms,
            }
        )
    return rows


def test_fig08_option_ablation(benchmark, rmat_bench_graphs):
    scale = 14
    edges = rmat_bench_graphs(scale)
    source = high_degree_source(edges)

    def run():
        rows = []
        for notation in ["4x2x2", "4x1x4"]:
            rows.extend(_run_ablation(edges, ClusterLayout.from_notation(notation), source))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(f"Figure 8: option ablation (RMAT scale {scale}, 16 GPUs)", rows)

    by_key = {(r["layout"], r["options"]): r for r in rows}
    for layout in ["4x2x2", "4x1x4"]:
        plain = by_key[(layout, "BR")]
        do = by_key[(layout, "DO BR")]
        # DO cuts computation by ~3x (paper: "DO cuts the computation time by
        # a factor of three").
        assert do["computation_ms"] < 0.5 * plain["computation_ms"]
        # Blocking reduction spends no more time in the delegate reduce than IR.
        assert (
            by_key[(layout, "DO BR")]["remote_delegate_ms"]
            <= by_key[(layout, "DO IR")]["remote_delegate_ms"] + 1e-12
        )
        # L and U do not blow up the elapsed time (they did not help in the
        # paper either, because duplicates are rare at the chosen TH).
        assert by_key[(layout, "DO L U BR")]["elapsed_ms"] < 2.0 * do["elapsed_ms"]
    benchmark.extra_info["do_computation_cut_4x2x2"] = (
        by_key[("4x2x2", "BR")]["computation_ms"] / by_key[("4x2x2", "DO BR")]["computation_ms"]
    )
