"""Figure 9 — weak scaling with a fixed per-GPU RMAT scale.

The paper rides a ~scale-26 RMAT graph on every GPU and doubles the GPU count
from 1 to 124 (2x2 and 1x4 rank configurations, BFS and DOBFS), observing
mostly linear aggregate GTEPS growth peaking at 259.8 GTEPS.  This benchmark
repeats the sweep with a scale-11 graph per virtual GPU, 1 to 16 GPUs.

Expected shape: aggregate GTEPS grows close to linearly with the GPU count
(within a 2x efficiency loss across the sweep), and DOBFS stays above plain
BFS at every point.
"""

from __future__ import annotations

from conftest import paper_regime_hardware, print_table

from repro.core.options import BFSOptions
from repro.perfmodel.scaling import weak_scaling_sweep

GPU_COUNTS = [1, 2, 4, 8, 16]


def test_fig09_weak_scaling(benchmark):
    hardware = paper_regime_hardware()

    def run():
        do_points = weak_scaling_sweep(
            scale_per_gpu=11,
            gpu_counts=GPU_COUNTS,
            gpus_per_rank=2,
            options=BFSOptions(direction_optimized=True),
            hardware=hardware,
            num_sources=4,
            seed=17,
        )
        bfs_points = weak_scaling_sweep(
            scale_per_gpu=11,
            gpu_counts=GPU_COUNTS,
            gpus_per_rank=2,
            options=BFSOptions(direction_optimized=False),
            hardware=hardware,
            num_sources=4,
            seed=17,
        )
        rows = []
        for do, plain in zip(do_points, bfs_points):
            rows.append(
                {
                    "gpus": do.num_gpus,
                    "scale": do.scale,
                    "layout": do.layout_notation,
                    "threshold": do.threshold,
                    "dobfs_gteps": do.gteps_geo_mean,
                    "bfs_gteps": plain.gteps_geo_mean,
                    "dobfs_per_gpu": do.gteps_geo_mean / do.num_gpus,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Figure 9: weak scaling (scale-11 RMAT per GPU)", rows)

    gteps = [r["dobfs_gteps"] for r in rows]
    # Aggregate rate grows monotonically with the cluster size...
    assert all(a < b for a, b in zip(gteps, gteps[1:]))
    # ...and per-GPU efficiency degrades only gradually.  (The paper loses
    # roughly 2x per-GPU efficiency over a 124x GPU increase; at laptop scale
    # the small graphs amplify the communication share, so we only assert the
    # loss stays within an order of magnitude over the 16x sweep.)
    per_gpu = [r["dobfs_per_gpu"] for r in rows]
    assert max(per_gpu) / min(per_gpu) < 8.0
    # DOBFS is at least as fast as plain BFS everywhere.
    assert all(r["dobfs_gteps"] >= 0.9 * r["bfs_gteps"] for r in rows)
    benchmark.extra_info["peak_gteps"] = gteps[-1]
    benchmark.extra_info["scaling_efficiency"] = per_gpu[-1] / per_gpu[0]
