"""Micro-benchmarks of the traversal kernels and partitioning primitives.

These are not paper figures; they time the hot building blocks of the
reproduction itself (frontier gather, backward pull, edge distribution and
delegate-mask reduction) so that performance regressions in the simulation
are caught.  They use pytest-benchmark's statistical timing (multiple rounds)
because the operations are microseconds-to-milliseconds long.
"""

from __future__ import annotations

import numpy as np
from conftest import high_degree_source

from repro.cluster.comm import Communicator
from repro.cluster.netmodel import NetworkModel
from repro.cluster.topology import ClusterTopology
from repro.core.kernels import backward_visit, forward_visit
from repro.graph.csr import CSRGraph
from repro.partition.delegates import separate_by_degree
from repro.partition.distributor import distribute_edges
from repro.partition.layout import ClusterLayout
from repro.utils.bitmask import Bitmask


def test_micro_forward_visit(benchmark, rmat_bench_graphs):
    edges = rmat_bench_graphs(14)
    csr = CSRGraph.from_edgelist(edges)
    rng = np.random.default_rng(3)
    frontier = rng.integers(0, csr.num_rows, size=4096).astype(np.int64)
    out = benchmark(forward_visit, csr, frontier)
    assert out.edges_examined == csr.frontier_workload(frontier)


def test_micro_backward_visit(benchmark, rmat_bench_graphs):
    edges = rmat_bench_graphs(14)
    csr = CSRGraph.from_edgelist(edges)
    rng = np.random.default_rng(4)
    frontier_flags = np.zeros(csr.num_rows, dtype=bool)
    frontier_flags[rng.integers(0, csr.num_rows, size=2048)] = True
    candidates = np.flatnonzero(~frontier_flags)
    out = benchmark(backward_visit, csr, candidates, frontier_flags)
    assert out.backward
    assert out.edges_examined > 0


def test_micro_edge_distributor(benchmark, rmat_bench_graphs):
    edges = rmat_bench_graphs(14)
    layout = ClusterLayout(num_ranks=8, gpus_per_rank=2)
    separation = separate_by_degree(edges, 64)
    assignment = benchmark(distribute_edges, edges, separation, layout)
    assert assignment.owner.size == edges.num_edges


def test_micro_delegate_mask_reduce(benchmark):
    layout = ClusterLayout(num_ranks=8, gpus_per_rank=2)
    topology = ClusterTopology(layout)
    rng = np.random.default_rng(5)
    masks = [
        Bitmask.from_indices(1 << 16, rng.integers(0, 1 << 16, size=2048))
        for _ in range(layout.num_gpus)
    ]

    def reduce_once():
        comm = Communicator(topology, NetworkModel())
        return comm.allreduce_delegate_masks(masks)

    result = benchmark(reduce_once)
    assert result.merged.count() > 0


def test_micro_normal_exchange(benchmark):
    layout = ClusterLayout(num_ranks=4, gpus_per_rank=2)
    topology = ClusterTopology(layout)
    rng = np.random.default_rng(6)
    outboxes = [rng.integers(0, 1 << 18, size=8192).astype(np.int64) for _ in range(8)]

    def exchange_once():
        comm = Communicator(topology, NetworkModel())
        return comm.exchange_normals(outboxes, local_all2all=True, uniquify=True)

    result = benchmark(exchange_once)
    assert sum(box.size for box in result.inboxes) > 0
