"""Figure 6 — traversal rate vs degree threshold, BFS and DOBFS.

The paper sweeps TH in [16, 256] on a scale-30 RMAT graph over 16 GPUs
(4x1x4) and shows a wide plateau of near-optimal thresholds (45–90), with
DOBFS well above plain BFS throughout.  This benchmark runs the same sweep on
a scale-14 graph over 16 virtual GPUs and reports geometric-mean GTEPS.

Expected shape: DOBFS beats BFS at every threshold by a substantial factor,
and the rate varies only mildly (well within 2x) across the swept thresholds —
the "wide range of suitable TH" observation.
"""

from __future__ import annotations

import numpy as np
from conftest import campaign_geo_mean_gteps, paper_regime_hardware, print_table

from repro.core.engine import DistributedBFS
from repro.core.options import BFSOptions
from repro.graph.degree import out_degrees
from repro.partition.layout import ClusterLayout
from repro.partition.subgraphs import build_partitions
from repro.perfmodel.teps import rmat_counted_edges
from repro.utils.rng import random_sources


def test_fig06_threshold_sweep(benchmark, rmat_bench_graphs):
    scale = 14
    edges = rmat_bench_graphs(scale)
    layout = ClusterLayout.from_notation("4x1x4")
    counted = rmat_counted_edges(scale)
    sources = random_sources(
        edges.num_vertices, 4, rng=3, degrees=out_degrees(edges)
    )
    thresholds = [16, 32, 64, 128, 256]
    hardware = paper_regime_hardware()

    def sweep():
        rows = []
        for th in thresholds:
            graph = build_partitions(edges, layout, th)
            row = {"threshold": th}
            for label, opts in [
                ("bfs_gteps", BFSOptions(direction_optimized=False)),
                ("dobfs_gteps", BFSOptions(direction_optimized=True)),
            ]:
                engine = DistributedBFS(graph, options=opts, hardware=hardware)
                row[label] = campaign_geo_mean_gteps(engine, sources, counted)
            rows.append(row)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        f"Figure 6: traversal rate vs TH (RMAT scale {scale}, {layout.notation()})", rows
    )

    # DOBFS wins at every threshold, by a large factor at the good thresholds.
    assert all(r["dobfs_gteps"] > r["bfs_gteps"] for r in rows)
    do_rates = [r["dobfs_gteps"] for r in rows]
    best = max(do_rates)
    assert best > 2.0 * rows[int(np.argmax(do_rates))]["bfs_gteps"]
    # A band of near-optimal thresholds exists: at least two thresholds land
    # within 1.5x of the best DOBFS rate.  (The paper's band at full scale is
    # [45, 90]; at laptop scale the band sits at the lower thresholds because
    # the delegate masks that would punish small TH are only kilobytes here.)
    assert sum(1 for r in do_rates if r > best / 1.5) >= 2
    benchmark.extra_info["best_dobfs_gteps"] = max(do_rates)
    benchmark.extra_info["speedup_over_bfs"] = float(
        np.mean([r["dobfs_gteps"] / r["bfs_gteps"] for r in rows])
    )
