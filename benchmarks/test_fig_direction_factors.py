"""§IV-B / §VI-B — direction-switching factor sweep.

The paper scans the three per-subgraph direction-switching factors from 1e-8
to 10 and finds "a wide range of near-optimal values", settling on
(0.5, 0.05, 1e-7) for the dd, dn and nd subgraphs.  This benchmark sweeps the
dd factor (the dominant one, since dd carries most of the edges at the tuned
threshold) over the same range while keeping the paper's values for the other
two, and reports elapsed time and examined edges.

Expected shape: a wide plateau — every factor at or below ~1 lands within a
modest band of the best elapsed time; only disabling the switch entirely
(huge factor0, so the dd kernel never goes backward) loses the workload
saving and examines several times more edges.
"""

from __future__ import annotations

from conftest import high_degree_source, print_table

from repro.cluster.hardware import HardwareSpec
from repro.core.engine import DistributedBFS
from repro.core.options import BFSOptions, DirectionFactors
from repro.partition.layout import ClusterLayout
from repro.partition.subgraphs import build_partitions

LOW_OVERHEAD = HardwareSpec(kernel_overhead_s=2e-7, iteration_overhead_s=2e-7)


def test_direction_factor_sweep(benchmark, rmat_bench_graphs):
    scale = 14
    edges = rmat_bench_graphs(scale)
    layout = ClusterLayout.from_notation("2x1x2")
    graph = build_partitions(edges, layout, threshold=64)
    source = high_degree_source(edges)
    factors = [1e-8, 1e-4, 0.05, 0.5, 10.0, 1e12]

    def sweep():
        rows = []
        for f0 in factors:
            opts = BFSOptions(dd_factors=DirectionFactors(factor0=f0, factor1=1e-13))
            result = DistributedBFS(graph, options=opts, hardware=LOW_OVERHEAD).run(source)
            rows.append(
                {
                    "dd_factor0": f0,
                    "elapsed_ms": result.elapsed_ms,
                    "edges_examined": result.total_edges_examined,
                    "dd_edges_examined": result.workload_by_kernel()["dd"],
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(f"Direction-switching factor sweep (RMAT scale {scale})", rows)

    plateau = [r for r in rows if r["dd_factor0"] <= 10.0]
    best = min(r["elapsed_ms"] for r in plateau)
    worst_plateau = max(r["elapsed_ms"] for r in plateau)
    # Wide near-optimal range: everything up to factor0=10 is within 2x of best.
    assert worst_plateau < 2.0 * best
    # Effectively disabling the switch (factor0=1e12) throws away the saving.
    disabled = rows[-1]
    assert disabled["dd_edges_examined"] > 2.0 * min(r["dd_edges_examined"] for r in plateau)
    benchmark.extra_info["plateau_spread"] = worst_plateau / best
