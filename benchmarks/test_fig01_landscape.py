"""Figure 1 — landscape of large-scale BFS systems.

The paper's Figure 1 places prior work and this work ("[T]") on two scatter
plots: (left) RMAT scale vs number of processors, (right) number of
processors vs per-processor throughput.  This benchmark regenerates both data
series from the transcribed prior-work table plus one measured point from this
reproduction (scaled down, then annotated with the paper's own configuration
for context).

Expected shape (as in the paper): this work sits far below the CPU-cluster
points in processor count at the same scale, and above every other GPU- or
CPU-cluster point in per-processor throughput.
"""

from __future__ import annotations

from conftest import high_degree_source, print_table

from repro.core.engine import DistributedBFS
from repro.partition.layout import ClusterLayout
from repro.partition.subgraphs import build_partitions
from repro.perfmodel.comparison import PAPER_RESULT, PRIOR_WORK
from repro.perfmodel.teps import rmat_counted_edges


def _measure_repro_point(rmat_bench_graphs):
    scale = 14
    edges = rmat_bench_graphs(scale)
    layout = ClusterLayout(num_ranks=4, gpus_per_rank=2)
    graph = build_partitions(edges, layout, threshold=64)
    result = DistributedBFS(graph).run(high_degree_source(edges))
    return {
        "key": "[repro] this reproduction (simulated)",
        "category": "gpu_cluster",
        "processors": layout.num_gpus,
        "scale": scale,
        "gteps": result.gteps(rmat_counted_edges(scale)),
    }


def test_fig01_landscape(benchmark, rmat_bench_graphs):
    def build():
        rows = [w.as_dict() for w in PRIOR_WORK.values()]
        rows.append(PAPER_RESULT.as_dict())
        measured = _measure_repro_point(rmat_bench_graphs)
        measured["gteps_per_processor"] = measured["gteps"] / measured["processors"]
        measured["description"] = "simulated cluster, scaled-down workload"
        rows.append(measured)
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    print_table("Figure 1: scale vs processors and GTEPS per processor", rows)

    paper = PAPER_RESULT
    gpu_clusters = [w for w in PRIOR_WORK.values() if w.category == "gpu_cluster"]
    cpu_clusters = [w for w in PRIOR_WORK.values() if w.category == "cpu_cluster"]
    # Shape assertions from the paper's narrative:
    # (1) highest per-processor throughput among all cluster systems;
    assert all(paper.gteps_per_processor > w.gteps_per_processor for w in gpu_clusters)
    assert all(paper.gteps_per_processor > w.gteps_per_processor for w in cpu_clusters)
    # (2) reaches scale 33 with two orders of magnitude fewer processors than
    #     the CPU clusters that reach comparable or larger scales.
    big_cpu = [w for w in cpu_clusters if w.max_scale >= 33]
    assert all(paper.num_processors * 9 < w.num_processors for w in big_cpu)
    benchmark.extra_info["paper_gteps_per_gpu"] = paper.gteps_per_processor
