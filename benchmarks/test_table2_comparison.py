"""Table II — comparison with previous work.

The paper's Table II compares its GTEPS at matching scales/hardware against
Gunrock multi-GPU (Pan et al.), Bernaschi et al., Krajecki et al., Yasui &
Fujisawa and Buluç et al.  This benchmark reprints that table (reference
hardware, reference GTEPS, paper GTEPS, ratio) and adds a measured column
from this reproduction at a proportionally scaled-down configuration, so the
relative standing can be eyeballed.

Expected shape (paper narrative):
* ~31% of Bernaschi et al.'s performance with ~3% of the GPUs (≈10x per-GPU);
* ~4x Krajecki et al. with 1/8 the GPUs;
* 1.49x Yasui & Fujisawa (shared-memory CPU);
* slightly faster than Buluç et al. despite 8.4x fewer processors.
"""

from __future__ import annotations

from conftest import high_degree_source, print_table

from repro.core.engine import DistributedBFS
from repro.partition.layout import ClusterLayout
from repro.partition.subgraphs import build_partitions
from repro.perfmodel.comparison import PRIOR_WORK, comparison_table
from repro.perfmodel.teps import rmat_counted_edges


def test_table2_comparison(benchmark, rmat_bench_graphs):
    def run():
        # One measured data point: the "vs Gunrock single node" row, scaled
        # down (paper: 1x1x4 at scale 26 -> here 1x1x4 at scale 14).
        scale = 14
        edges = rmat_bench_graphs(scale)
        graph = build_partitions(edges, ClusterLayout.from_notation("1x1x4"), 64)
        result = DistributedBFS(graph).run(high_degree_source(edges))
        measured = {"pan2017": result.gteps(rmat_counted_edges(scale))}
        return comparison_table(measured), measured

    (rows, measured) = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Table II: comparison with previous work", rows)

    by_ref = {row["reference"]: row for row in rows}
    bernaschi = by_ref["[18] Bernaschi et al. 2015"]
    assert 0.25 < bernaschi["paper_vs_ref"] < 0.40
    paper_gpus = 124
    assert paper_gpus / PRIOR_WORK["bernaschi2015"].num_processors < 0.04
    krajecki = by_ref["[20] Krajecki et al. 2016"]
    assert krajecki["paper_vs_ref"] > 3.5
    yasui = by_ref["[9] Yasui & Fujisawa 2017"]
    assert 1.3 < yasui["paper_vs_ref"] < 1.7
    buluc = by_ref["[16] Buluc et al. 2017"]
    assert buluc["paper_vs_ref"] > 1.0
    # The reproduction's measured point exists and is positive.
    assert measured["pan2017"] > 0
    benchmark.extra_info["repro_gteps_1x1x4_scale14"] = measured["pan2017"]
