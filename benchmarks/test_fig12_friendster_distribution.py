"""Figure 12 — edge/delegate distribution vs threshold on Friendster.

The paper repeats the Figure-5 census on the Friendster social network
(134 M vertices, half isolated, 5.17 B edges) for thresholds 16–256 and finds
a wide range of suitable thresholds ([16, 128]).  This benchmark runs the same
census on the synthetic Friendster substitute (matched degree skew and
isolated-vertex fraction).

Expected shape: same qualitative behaviour as RMAT — dd% falls and nn% rises
with TH — but the curves are flatter than RMAT's because the social network's
maximum degree is far smaller, and a broad band of thresholds keeps both the
delegate count and the nn share small.
"""

from __future__ import annotations

from conftest import print_table

from repro.graph.generators import friendster_like
from repro.partition.delegates import census_for_thresholds


def test_fig12_friendster_distribution(benchmark):
    edges = friendster_like(num_vertices=1 << 15, rng=7).prepared()
    thresholds = [16, 32, 64, 128, 256]

    def sweep():
        return [
            {
                "threshold": c.threshold,
                "dd_pct": c.dd_percentage,
                "dn_nd_pct": c.nd_dn_percentage,
                "nn_pct": c.nn_percentage,
                "delegates_pct": c.delegate_percentage,
            }
            for c in census_for_thresholds(edges, thresholds)
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Figure 12: friendster-like edge/delegate distribution", rows)

    nn = [r["nn_pct"] for r in rows]
    dd = [r["dd_pct"] for r in rows]
    delegates = [r["delegates_pct"] for r in rows]
    assert all(a <= b + 1e-9 for a, b in zip(nn, nn[1:]))
    assert all(a >= b - 1e-9 for a, b in zip(dd, dd[1:]))
    assert all(a >= b - 1e-9 for a, b in zip(delegates, delegates[1:]))
    # A suitable band exists: at least two thresholds keep the delegate count
    # small while the nn share stays bounded.  (The synthetic substitute is
    # four orders of magnitude smaller than the real Friendster, so its degree
    # tail — and therefore the band — is compressed; the paper's band at full
    # size is [16, 128] with single-digit percentages on both axes.)
    suitable = [r for r in rows if r["delegates_pct"] < 10.0 and r["nn_pct"] < 70.0]
    assert len(suitable) >= 2
    benchmark.extra_info["suitable_thresholds"] = [r["threshold"] for r in suitable]
