"""§II-B vs §V — analytic communication growth of the three schemes.

The paper's central analytic argument: under weak scaling the per-iteration
communication time of 2D-partitioned DOBFS grows as √p, whereas the
degree-separated model's grows only as log(prank); 1D-partitioned DOBFS is
worse than both because every newly-visited vertex must be broadcast.  This
benchmark evaluates the closed-form costs for p = 4 .. 4096 and also
cross-checks the model against the *measured* communication volume of the
simulation at small p.

Expected shape: the degree-separated model has the smallest cost at every p,
and its growth from p=4 to p=4096 is far smaller than the 2D scheme's growth.
"""

from __future__ import annotations

import numpy as np
from conftest import high_degree_source, print_table

from repro.cluster.hardware import HardwareSpec
from repro.core.engine import DistributedBFS
from repro.partition.layout import ClusterLayout
from repro.partition.subgraphs import build_partitions
from repro.perfmodel.costs import paper_model_volume_bytes, weak_scaling_growth

G = HardwareSpec().inverse_bandwidth_g


def test_comm_model_scaling(benchmark, rmat_bench_graphs):
    def run():
        rows = []
        for p in [4, 16, 64, 256, 1024, 4096]:
            costs = weak_scaling_growth(
                p,
                vertices_per_gpu=1 << 26,
                edges_per_gpu=(1 << 26) * 32,
                iterations=16,
                g_seconds_per_byte=G,
            )
            rows.append(
                {
                    "gpus": p,
                    "1d_time_s": costs["1d"].time_seconds,
                    "2d_time_s": costs["2d"].time_seconds,
                    "ours_time_s": costs["paper"].time_seconds,
                    "ours_volume_GB": costs["paper"].volume_bytes / 1e9,
                    "2d_volume_GB": costs["2d"].volume_bytes / 1e9,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Analytic communication cost under weak scaling", rows)

    for r in rows[1:]:
        assert r["ours_time_s"] < r["2d_time_s"]
        assert r["ours_time_s"] < r["1d_time_s"]
    ours_growth = rows[-1]["ours_time_s"] / rows[0]["ours_time_s"]
    two_d_growth = rows[-1]["2d_time_s"] / rows[0]["2d_time_s"]
    assert ours_growth < 0.35 * two_d_growth

    # Cross-check the closed-form volume against the simulation's measured
    # communication for a small configuration.
    scale = 13
    edges = rmat_bench_graphs(scale)
    layout = ClusterLayout(num_ranks=4, gpus_per_rank=1)
    graph = build_partitions(edges, layout, 64)
    result = DistributedBFS(graph).run(high_degree_source(edges))
    iterations_with_updates = sum(1 for rec in result.records if rec.delegate_reduce)
    predicted = paper_model_volume_bytes(
        graph.num_delegates, layout.num_ranks, iterations_with_updates, graph.census.nn_edges
    )
    measured = (
        result.comm_stats.delegate_mask_bytes + result.comm_stats.normal_bytes_remote
    )
    # Same order of magnitude (the formula assumes every nn edge crosses GPUs
    # and full masks every update iteration, so it is an upper-bound-flavoured
    # estimate).
    assert measured < 2.0 * predicted
    assert measured > 0.02 * predicted
    benchmark.extra_info["ours_vs_2d_growth"] = ours_growth / two_d_growth
