"""Table I — memory usage of the partitioned graph representation.

The paper's Table I gives the per-subgraph byte counts and concludes that with
a suitable threshold the total is "only about one third of the conventional
edge list format (16m bytes), and a little more than half of CSR format
(8n + 8m)".  This benchmark builds real partitions for a sweep of thresholds
and prints analytic (Table I formula) vs measured (NumPy buffer) bytes and the
two ratios.

Expected shape: for the suggested threshold the partitioned/edge-list ratio is
≈ 0.3–0.4 and the partitioned/CSR ratio ≈ 0.5–0.7, degrading toward 1 of CSR
when the threshold is so large that no delegates exist.
"""

from __future__ import annotations

from conftest import print_table

from repro.partition.delegates import suggest_threshold
from repro.partition.layout import ClusterLayout
from repro.partition.memory import memory_usage
from repro.partition.subgraphs import build_partitions


def test_table1_memory(benchmark, rmat_bench_graphs):
    scale = 15
    edges = rmat_bench_graphs(scale)
    layout = ClusterLayout(num_ranks=4, gpus_per_rank=2)
    suggested = suggest_threshold(edges, layout.num_gpus)

    def build():
        rows = []
        for th in [suggested, 4 * suggested, 10**9]:
            graph = build_partitions(edges, layout, th)
            analytic, measured = memory_usage(graph)
            rows.append(
                {
                    "threshold": th if th < 10**9 else "inf (no delegates)",
                    "delegates": graph.num_delegates,
                    "analytic_MB": analytic.partitioned_bytes / 1e6,
                    "measured_MB": measured.partitioned_bytes / 1e6,
                    "edge_list_MB": analytic.edge_list_bytes / 1e6,
                    "plain_csr_MB": analytic.plain_csr_bytes / 1e6,
                    "vs_edge_list": analytic.vs_edge_list,
                    "vs_plain_csr": analytic.vs_plain_csr,
                }
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    print_table(f"Table I: memory usage (RMAT scale {scale}, {layout.notation()})", rows)

    tuned = rows[0]
    untuned = rows[-1]
    # Paper claims: ~1/3 of edge list, a bit more than 1/2 of plain CSR.
    assert 0.25 < tuned["vs_edge_list"] < 0.45
    assert 0.45 < tuned["vs_plain_csr"] < 0.75
    # Without separation the advantage over plain CSR disappears.
    assert untuned["vs_plain_csr"] > tuned["vs_plain_csr"]
    # The analytic model tracks the measured buffers closely.
    assert abs(tuned["analytic_MB"] - tuned["measured_MB"]) / tuned["measured_MB"] < 0.2
    benchmark.extra_info["vs_edge_list"] = tuned["vs_edge_list"]
    benchmark.extra_info["vs_plain_csr"] = tuned["vs_plain_csr"]
