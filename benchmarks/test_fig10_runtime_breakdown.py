"""Figure 10 — runtime breakdown along the weak-scaling curve.

The paper decomposes the DOBFS and BFS runtimes into computation, local
communication, remote normal exchange and remote delegate reduce for scales
26–33 (1 to 124 GPUs) and observes: local computation grows slowly (about 4x
over 7 scale doublings for DOBFS), communication grows somewhat faster, and
because of overlap the parts sum exceeds the elapsed time.  This benchmark
prints the same decomposition for scales 11–15 on 1–16 virtual GPUs.

Expected shape: computation grows by well under the 16x cluster-size factor
across the sweep; the communication components appear once more than one rank
participates; and elapsed < sum of parts at every point (overlap).
"""

from __future__ import annotations

from conftest import paper_regime_hardware, print_table

from repro.core.options import BFSOptions
from repro.perfmodel.scaling import weak_scaling_sweep

GPU_COUNTS = [1, 2, 4, 8, 16]


def test_fig10_runtime_breakdown(benchmark):
    hardware = paper_regime_hardware()

    def run():
        rows = []
        for do in (True, False):
            points = weak_scaling_sweep(
                scale_per_gpu=11,
                gpu_counts=GPU_COUNTS,
                gpus_per_rank=2,
                options=BFSOptions(direction_optimized=do),
                hardware=hardware,
                num_sources=3,
                seed=23,
            )
            for point in points:
                b = point.breakdown
                rows.append(
                    {
                        "algorithm": "DOBFS" if do else "BFS",
                        "scale": point.scale,
                        "gpus": point.num_gpus,
                        "computation_ms": b.computation,
                        "local_comm_ms": b.local_communication,
                        "remote_normal_ms": b.remote_normal_exchange,
                        "remote_delegate_ms": b.remote_delegate_reduce,
                        "parts_sum_ms": b.parts_sum(),
                        "elapsed_ms": b.elapsed_ms,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Figure 10: runtime breakdown along the weak-scaling curve", rows)

    for algo in ("DOBFS", "BFS"):
        series = [r for r in rows if r["algorithm"] == algo]
        comp_growth = series[-1]["computation_ms"] / series[0]["computation_ms"]
        # Computation grows much slower than the 16x increase in graph size
        # (the paper sees ~4x over a 124x increase).
        assert comp_growth < 8.0
        # Overlap: elapsed never exceeds the sum of parts.
        assert all(r["elapsed_ms"] <= r["parts_sum_ms"] + 1e-9 for r in series)
        # Remote communication only exists once several ranks participate.
        single_gpu = series[0]
        assert single_gpu["remote_normal_ms"] == 0.0
        assert single_gpu["remote_delegate_ms"] == 0.0
        multi = series[-1]
        assert multi["remote_normal_ms"] + multi["remote_delegate_ms"] > 0.0
    do_final = [r for r in rows if r["algorithm"] == "DOBFS"][-1]
    bfs_final = [r for r in rows if r["algorithm"] == "BFS"][-1]
    # DOBFS computes less than plain BFS at the largest configuration.
    assert do_final["computation_ms"] < bfs_final["computation_ms"]
    benchmark.extra_info["dobfs_comp_growth"] = (
        [r for r in rows if r["algorithm"] == "DOBFS"][-1]["computation_ms"]
        / [r for r in rows if r["algorithm"] == "DOBFS"][0]["computation_ms"]
    )
