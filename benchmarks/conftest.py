"""Shared helpers for the per-figure benchmark harnesses.

Every module in this directory regenerates one table or figure of the paper
(see DESIGN.md §4 and EXPERIMENTS.md).  The harnesses:

* run the full pipeline (generate → partition → traverse on the simulated
  cluster) at laptop scale,
* print the same rows/series the paper reports, so the output can be compared
  side by side with the original figure, and
* attach the headline numbers to ``benchmark.extra_info`` so
  ``pytest benchmarks/ --benchmark-only --benchmark-json=...`` captures them.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

try:  # allow running from an uninstalled checkout
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.graph.degree import out_degrees
from repro.graph.rmat import generate_rmat


def print_table(title: str, rows: list[dict]) -> None:
    """Print a list of dict rows as an aligned text table."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    keys = list(rows[0].keys())
    widths = {k: max(len(str(k)), max(len(_fmt(r.get(k))) for r in rows)) for k in keys}
    header = "  ".join(str(k).ljust(widths[k]) for k in keys)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(_fmt(row.get(k)).ljust(widths[k]) for k in keys))


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def paper_regime_hardware():
    """Hardware spec for the scaling figures (9, 10, 11).

    The paper's per-GPU subgraphs are ~2^12 times larger than this
    reproduction's, so at full scale per-message latencies and kernel-launch
    overheads are negligible and messages are large enough to reach peak
    network efficiency.  To study the same bandwidth-vs-computation regime at
    laptop scale we shrink the fixed overheads by the same factor as the
    workload and disable the small-message efficiency penalty; bandwidths and
    traversal throughputs are unchanged.
    """
    from dataclasses import replace

    from repro.cluster.hardware import HardwareSpec

    return replace(HardwareSpec().with_scaled_overheads(1 / 4096), min_efficiency=1.0)


def high_degree_source(edges) -> int:
    """A deterministic, well-connected BFS source (the paper filters sources
    that do not traverse more than one iteration)."""
    return int(np.argmax(out_degrees(edges)))


def campaign_geo_mean_gteps(engine, sources, counted_edges=None) -> float:
    """Geometric-mean GTEPS over sources, with the paper's skip rule.

    The aggregation protocol (run every source, drop single-iteration runs,
    geometric-mean the rest) lives in :class:`repro.core.campaign.Campaign`;
    this helper is the one-liner the sweep benchmarks share.
    """
    return engine.run_many(sources).geo_mean_gteps(counted_edges)


@pytest.fixture(scope="session")
def rmat_bench_graphs():
    """Cache of prepared RMAT graphs shared by several benchmarks."""
    cache = {}

    def get(scale: int, seed: int = 11):
        key = (scale, seed)
        if key not in cache:
            cache[key] = generate_rmat(scale, rng=seed)
        return cache[key]

    return get
