"""Figure 7 — suggested degree thresholds for different RMAT scales.

The paper recommends thresholds per scale along the weak-scaling curve (one
scale-26 subgraph per GPU, so the GPU count is ``2^(N-26)``), keeping the
delegate percentage under the ``4n/p`` line and the nn-edge percentage small;
the suggested TH grows roughly as sqrt(2) per scale.  This benchmark applies
the same rule at laptop scale (scale-11 per GPU) and prints the suggested TH
with the resulting delegate and nn-edge percentages.

Expected shape: TH is non-decreasing in scale; the delegate percentage stays
below the 4n/p line (= 400/2^(N-11) percent here); the nn-edge percentage
stays below ~10%.
"""

from __future__ import annotations

from conftest import print_table

from repro.graph.rmat import generate_rmat
from repro.partition.delegates import census_for_thresholds, suggest_threshold


def test_fig07_suggested_thresholds(benchmark):
    scale_per_gpu = 11
    scales = [11, 12, 13, 14, 15]

    def sweep():
        rows = []
        for scale in scales:
            edges = generate_rmat(scale, rng=11)
            num_gpus = 2 ** (scale - scale_per_gpu)
            th = suggest_threshold(edges, num_gpus=num_gpus)
            census = census_for_thresholds(edges, [th])[0]
            rows.append(
                {
                    "scale": scale,
                    "gpus": num_gpus,
                    "suggested_TH": th,
                    "delegates_pct": census.delegate_percentage,
                    "nn_pct": census.nn_percentage,
                    "budget_4n_over_p_pct": 100.0 * 4 / num_gpus,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Figure 7: suggested TH per scale (weak-scaling GPU counts)", rows)

    ths = [r["suggested_TH"] for r in rows]
    assert all(a <= b for a, b in zip(ths, ths[1:])), "suggested TH must not shrink with scale"
    assert ths[-1] > ths[0], "suggested TH must grow along the weak-scaling curve"
    for r in rows:
        assert r["delegates_pct"] <= r["budget_4n_over_p_pct"] + 1e-9
        assert r["nn_pct"] <= 10.0 + 1e-9
    benchmark.extra_info["suggested_range"] = f"{ths[0]}..{ths[-1]}"
