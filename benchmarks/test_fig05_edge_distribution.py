"""Figure 5 — edge/delegate distribution vs degree threshold (RMAT).

The paper plots, for a scale-30 RMAT graph, the percentage of dd, dn/nd and
nn edges and of delegate vertices as the degree threshold sweeps from 1 to
~2M.  This benchmark regenerates the same four series on a scale-16 RMAT
graph (same generator, reduced scale).

Expected shape: at TH=1 essentially all edges are dd and most non-isolated
vertices are delegates; as TH grows, dd% falls and nn% rises monotonically,
dn/nd% rises then falls (a hump in the middle), and the delegate percentage
falls toward zero.  The paper's "suitable range" is where delegates are a few
percent and nn edges are still below ~10%.
"""

from __future__ import annotations

from conftest import print_table

from repro.partition.delegates import census_for_thresholds, threshold_candidates
from repro.graph.degree import out_degrees


def test_fig05_edge_distribution(benchmark, rmat_bench_graphs):
    scale = 16
    edges = rmat_bench_graphs(scale)
    max_degree = int(out_degrees(edges).max())
    thresholds = [int(t) for t in threshold_candidates(max_degree)]

    def sweep():
        return [
            {
                "threshold": c.threshold,
                "dd_pct": c.dd_percentage,
                "dn_nd_pct": c.nd_dn_percentage,
                "nn_pct": c.nn_percentage,
                "delegates_pct": c.delegate_percentage,
                "num_delegates": c.num_delegates,
            }
            for c in census_for_thresholds(edges, thresholds)
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(f"Figure 5: edge/delegate distribution vs TH (RMAT scale {scale})", rows)

    # Shape assertions.
    assert rows[0]["dd_pct"] > 90.0
    assert rows[-1]["nn_pct"] > 99.0
    nn = [r["nn_pct"] for r in rows]
    dd = [r["dd_pct"] for r in rows]
    delegates = [r["delegates_pct"] for r in rows]
    assert all(a <= b + 1e-9 for a, b in zip(nn, nn[1:]))
    assert all(a >= b - 1e-9 for a, b in zip(dd, dd[1:]))
    assert all(a >= b - 1e-9 for a, b in zip(delegates, delegates[1:]))
    hump = max(r["dn_nd_pct"] for r in rows)
    assert hump > rows[0]["dn_nd_pct"] and hump > rows[-1]["dn_nd_pct"]
    # A mid-range threshold exists with few delegates yet <10% nn edges.  (At
    # laptop scale the delegate percentage is naturally higher than the 1.75%
    # the paper reports at scale 33, because the degree distribution is
    # compressed; the qualitative band still exists.)
    assert any(r["delegates_pct"] < 15.0 and r["nn_pct"] < 10.0 for r in rows)
    benchmark.extra_info["max_dn_nd_pct"] = hump
