"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file only exists so
that legacy editable installs (``pip install -e . --no-use-pep517``) work on
machines without network access or the ``wheel`` package.
"""

from setuptools import setup

setup()
