#!/usr/bin/env python3
"""The replicated serving tier end to end: open-loop load -> tail latency.

The closed-loop ``QueryService`` bench asks "how fast can one service drain
a stream?".  This example asks the serving question instead: *at a given
offered load*, what latency do clients see — and what do backpressure and
request hedging buy?  It walks:

1. building a replica pool (one engine + cache per replica, one shared
   graph) through the session facade,
2. replaying a bursty open-loop workload on the deterministic virtual
   clock, once with hedging and once without, comparing p50/p95/p99,
3. overload: a queue bound turns excess arrivals into counted sheds
   instead of unbounded queueing, and
4. live mutation: update deltas fanned out to every replica by epoch-bump
   invalidation, all replicas converging on one graph version.

Run with::

    python examples/serve_cluster.py [scale]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro
from repro.dynamic import DynamicGraph
from repro.graph.degree import out_degrees
from repro.serve import OpenLoopWorkload, ZipfWorkload
from repro.serve.cluster import BurstyArrivals, ClusterConfig, ClusterDispatcher, ReplicaPool


def replay(graph, stream, *, replicas=3, hedge=True, queue_limit=0):
    pool = ReplicaPool(graph, replicas, batch_size=16, cache_size=64)
    config = ClusterConfig(
        queue_limit=queue_limit,
        hedge=hedge,
        hedge_quantile=0.9,
        hedge_min_samples=16,
        slo_ms=10.0,
    )
    try:
        return ClusterDispatcher(pool, config).run(stream)
    finally:
        pool.close()


def main(scale: int = 12) -> None:
    print(f"== Building a scale-{scale} RMAT graph ==")
    session = repro.session(layout="4x1x2").generate(scale=scale, seed=7)
    graph_session = session.threshold(repro.auto).build()
    edges = graph_session.edges
    degrees = out_degrees(edges)

    print("\n== Hedging vs tail latency under bursty load ==")
    workload = OpenLoopWorkload(
        queries=ZipfWorkload(num_queries=400, skew=1.0, pool=256, seed=11),
        arrivals=BurstyArrivals(rate_qps=3000.0, period_ms=200.0, duty=0.25, seed=29),
    )
    stream = workload.generate(edges.num_vertices, degrees=degrees)
    for hedge in (False, True):
        snap = replay(graph_session.graph, stream, hedge=hedge)
        lat, cluster = snap["cluster"]["latency"], snap["cluster"]
        print(
            f"hedging {'on ' if hedge else 'off'}: "
            f"p50 {lat['p50_ms']:6.2f} ms  p95 {lat['p95_ms']:6.2f} ms  "
            f"p99 {lat['p99_ms']:6.2f} ms  SLO>10ms {lat['slo_violations']:3d}x  "
            f"({cluster['hedges_issued']} hedges, {cluster['hedges_won']} won)"
        )

    print("\n== Backpressure: a queue bound converts overload into sheds ==")
    for queue_limit in (0, 16):
        snap = replay(graph_session.graph, stream, queue_limit=queue_limit)
        counters = snap["counters"]
        lat = snap["cluster"]["latency"]
        bound = f"{queue_limit:2d}" if queue_limit else " ∞"
        print(
            f"queue_limit {bound}: admitted {counters['admitted']:3d}, "
            f"shed {counters['shed']:3d}, p99 {lat['p99_ms']:6.2f} ms, "
            f"max {lat['max_ms']:6.2f} ms"
        )

    print("\n== Update fanout: every replica converges on one graph version ==")
    mutable = DynamicGraph(
        edges,
        graph_session.graph.layout,
        graph_session.graph.threshold,
        partitioned=graph_session.graph,
    )
    mixed = OpenLoopWorkload(
        queries=ZipfWorkload(num_queries=400, skew=1.0, pool=256, seed=11),
        arrivals=BurstyArrivals(rate_qps=3000.0, period_ms=200.0, duty=0.25, seed=29),
        num_updates=3,
        edges_per_update=1024,
        update_style="pa",
    )
    mixed_stream = mixed.generate(edges.num_vertices, degrees=degrees, edges=edges)
    pool = ReplicaPool(mutable, 3, batch_size=16, cache_size=64)
    try:
        snap = ClusterDispatcher(
            pool, ClusterConfig(queue_limit=32, hedge_min_samples=16, slo_ms=10.0)
        ).run(mixed_stream)
        counters, cluster = snap["counters"], snap["cluster"]
        print(
            f"{counters['updates']} deltas applied; all {len(pool)} replicas at "
            f"graph version {pool.graph_version()} "
            f"({cluster['shed_during_update']} arrivals shed behind update drains)"
        )
        for replica in pool:
            stats = replica.service.stats
            print(
                f"  replica {replica.rid}: {stats.epoch_bumps} epoch bumps, "
                f"{stats.entries_invalidated} cache entries invalidated"
            )
    finally:
        pool.close()


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
