#!/usr/bin/env python3
"""Quickstart: run a distributed direction-optimized BFS on a simulated GPU cluster.

This is the smallest end-to-end use of the library:

1. generate a Graph500 RMAT graph (the paper's benchmark workload),
2. choose a degree threshold and partition the graph across a virtual
   4-node x 1-rank x 2-GPU cluster with the paper's edge distributor,
3. run direction-optimized BFS from a few random sources,
4. validate the hop distances against an independent serial BFS, and
5. print the traversal rates and the modeled runtime breakdown.

Run with::

    python examples/quickstart.py [scale]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import (
    BFSOptions,
    ClusterLayout,
    DistributedBFS,
    build_partitions,
    generate_rmat,
    suggest_threshold,
    validate_distances,
)
from repro.baselines import serial_bfs
from repro.graph.csr import CSRGraph
from repro.graph.degree import out_degrees
from repro.perfmodel.teps import rmat_counted_edges
from repro.utils.rng import random_sources
from repro.utils.stats import geometric_mean


def main(scale: int = 14) -> None:
    print(f"== Generating a scale-{scale} Graph500 RMAT graph ==")
    edges = generate_rmat(scale, rng=7)
    print(f"   vertices: {edges.num_vertices:,}   directed edges: {edges.num_edges:,}")

    layout = ClusterLayout.from_notation("4x1x2")
    threshold = suggest_threshold(edges, layout.num_gpus)
    print(f"== Partitioning over a {layout.notation()} virtual cluster (TH={threshold}) ==")
    graph = build_partitions(edges, layout, threshold)
    print(
        f"   delegates: {graph.num_delegates:,} "
        f"({100 * graph.num_delegates / graph.num_vertices:.2f}% of vertices), "
        f"nn edges: {graph.census.nn_percentage:.2f}%"
    )
    print(f"   partitioned storage: {graph.total_nbytes() / 1e6:.1f} MB "
          f"vs {16 * edges.num_edges / 1e6:.1f} MB as a plain edge list")

    engine = DistributedBFS(graph, options=BFSOptions())
    counted = rmat_counted_edges(scale)
    sources = random_sources(edges.num_vertices, 5, rng=1, degrees=out_degrees(edges))
    reference_csr = CSRGraph.from_edgelist(edges)

    print("== Running DOBFS from 5 random sources ==")
    rates = []
    for source in sources:
        result = engine.run(int(source))
        if not result.traversed_more_than_one_iteration():
            continue
        reference = serial_bfs(reference_csr, int(source))
        report = validate_distances(edges, int(source), result.distances, reference=reference)
        report.raise_if_invalid()
        rates.append(result.gteps(counted))
        timing = result.timing
        print(
            f"   source {int(source):>8}: {result.num_visited:,} vertices in "
            f"{result.iterations} iterations, modeled {timing.elapsed_ms:.3f} ms "
            f"({result.gteps(counted):.2f} GTEPS)  "
            f"[comp {timing.computation:.3f} | local {timing.local_communication:.3f} | "
            f"normal {timing.remote_normal_exchange:.3f} | "
            f"delegate {timing.remote_delegate_reduce:.3f} ms]"
        )
    print(f"== Geometric-mean traversal rate: {geometric_mean(rates):.2f} GTEPS ==")
    print("   (all runs validated against a serial reference BFS)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 14)
