#!/usr/bin/env python3
"""Quickstart: run a distributed direction-optimized BFS on a simulated GPU cluster.

This is the smallest end-to-end use of the library:

1. generate a Graph500 RMAT graph (the paper's benchmark workload),
2. choose a degree threshold and partition the graph across a virtual
   4-node x 1-rank x 2-GPU cluster with the paper's edge distributor,
3. run direction-optimized BFS from a few random sources (one *campaign*,
   aggregated the way the paper reports: geometric mean, single-iteration
   runs skipped),
4. validate the hop distances against an independent serial BFS, and
5. print the traversal rates and the modeled runtime breakdown.

Run with::

    python examples/quickstart.py [scale]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro
from repro.baselines import serial_bfs
from repro.graph.csr import CSRGraph
from repro.perfmodel.teps import rmat_counted_edges
from repro.validate import validate_distances


def main(scale: int = 14) -> None:
    print(f"== Generating a scale-{scale} Graph500 RMAT graph ==")
    graph = (
        repro.session(layout="4x1x2")
        .generate(scale=scale, seed=7)
        .threshold(repro.auto)
        .build()
    )
    edges = graph.edges
    print(f"   vertices: {edges.num_vertices:,}   directed edges: {edges.num_edges:,}")
    print(
        f"   delegates: {graph.graph.num_delegates:,} "
        f"({100 * graph.graph.num_delegates / graph.graph.num_vertices:.2f}% of vertices), "
        f"nn edges: {graph.graph.census.nn_percentage:.2f}% (TH={graph.graph.threshold})"
    )
    print(f"   partitioned storage: {graph.graph.total_nbytes() / 1e6:.1f} MB "
          f"vs {16 * edges.num_edges / 1e6:.1f} MB as a plain edge list")

    counted = rmat_counted_edges(scale)
    reference_csr = CSRGraph.from_edgelist(edges)

    def validate(result) -> None:
        reference = serial_bfs(reference_csr, result.source)
        report = validate_distances(edges, result.source, result.distances, reference=reference)
        report.raise_if_invalid()

    def report(result) -> None:
        if not result.traversed_more_than_one_iteration():
            return
        timing = result.timing
        print(
            f"   source {result.source:>8}: {result.num_visited:,} vertices in "
            f"{result.iterations} iterations, modeled {timing.elapsed_ms:.3f} ms "
            f"({result.gteps(counted):.2f} GTEPS)  "
            f"[comp {timing.computation:.3f} | local {timing.local_communication:.3f} | "
            f"normal {timing.remote_normal_exchange:.3f} | "
            f"delegate {timing.remote_delegate_reduce:.3f} ms]"
        )

    print("== Running a DOBFS campaign from 5 random sources ==")
    campaign = graph.campaign(sources=5, seed=1, validate=validate, on_result=report)
    print(
        f"== Geometric-mean traversal rate: {campaign.geo_mean_gteps(counted):.2f} GTEPS "
        f"over {len(campaign.reported)} reported runs "
        f"({len(campaign.skipped)} skipped) =="
    )
    print("   (all runs validated against a serial reference BFS)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 14)
