#!/usr/bin/env python3
"""Dynamic graphs end to end: build -> mutate -> incremental repair -> serve.

This walks the whole mutable-graph story:

1. build a partitioned RMAT graph through the fluent session,
2. keep a BFS answer *maintained* while a preferential-attachment update
   stream mutates the graph — every batch repaired from a bounded frontier
   and verified bit-identical to a from-scratch run,
3. compare the repair's traversal work against the full recompute it
   replaces, and
4. serve a mixed read/update workload through the QueryService, watching the
   version-tagged cache invalidate by epoch bump on every applied delta.

Run with::

    python examples/dynamic_updates.py [scale]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro
from repro.dynamic import DynamicEngine, DynamicGraph, MaintainedLevels, update_stream
from repro.graph.degree import out_degrees
from repro.serve import MixedWorkload, QueryService, ZipfWorkload


def main(scale: int = 13) -> None:
    print(f"== Building a scale-{scale} RMAT graph ==")
    session = repro.session(layout="4x1x2").generate(scale=scale, seed=7)
    graph = session.threshold(repro.auto).build()
    edges = graph.edges

    print("\n== Maintaining BFS levels across an update stream ==")
    dynamic = DynamicGraph(edges, graph.graph.layout, graph.graph.threshold)
    engine = DynamicEngine(dynamic)
    maintained = MaintainedLevels(engine, source=0)
    initial = maintained.result
    print(
        f"initial BFS: {initial.num_visited:,} visited, "
        f"{initial.total_edges_examined:,} edges examined, "
        f"{initial.timing.elapsed_ms:.3f} ms modeled"
    )

    for i, delta in enumerate(update_stream(edges, 4, 2048, style="pa", seed=3)):
        applied = engine.apply_delta(delta)
        repaired = maintained.update(applied)
        fresh = maintained.verify()  # raises unless bit-identical
        note = f" [compacted: {applied.compact_reason}]" if applied.compacted else ""
        print(
            f"batch {i}: +{applied.num_inserts} edges -> repair examined "
            f"{repaired.total_edges_examined:,} edges "
            f"({repaired.timing.elapsed_ms:.3f} ms modeled) vs recompute "
            f"{fresh.total_edges_examined:,} ({fresh.timing.elapsed_ms:.3f} ms)"
            + note
        )
    stats = maintained.stats
    print(
        f"maintenance totals: {stats.repairs} repairs over "
        f"{stats.repair_edges:,} edges; graph at version {dynamic.version}, "
        f"{dynamic.overlay.num_edges:,} overlay edges, "
        f"{dynamic.compactions} compaction(s)"
    )

    print("\n== The one-liner: mutate through the session facade ==")
    target = edges.num_vertices - 1
    session_graph = repro.session(layout="4x1x2").generate(scale=scale, seed=7).build()
    before = int(session_graph.bfs(0).distances[target])
    session_graph.mutate(inserts=[[0, target]])
    after = int(session_graph.bfs(0).distances[target])
    print(f"distance 0 -> {target}: {before} before the insert, {after} after")

    print("\n== Serving a mixed read/update workload ==")
    workload = MixedWorkload(
        queries=ZipfWorkload(num_queries=192, skew=1.0, pool=64, seed=11),
        update_rate=0.1,
        edges_per_update=512,
        update_style="pa",
    )
    operations = workload.generate(edges, degrees=out_degrees(edges))
    service = QueryService(
        DynamicEngine(DynamicGraph(edges, graph.graph.layout, graph.graph.threshold)),
        batch_size=16,
        cache_size=256,
    )
    service.run_mixed(operations)
    snapshot = service.stats_snapshot()["service"]
    cache = service.stats_snapshot()["cache"]
    print(
        f"{snapshot['queries']} queries at {snapshot['queries_per_sec']:,.0f} q/s, "
        f"{snapshot['updates']} update batches applied"
    )
    print(
        f"cache: {cache['hits']} hits ({cache['hit_rate']:.0%}), "
        f"{snapshot['epoch_bumps']} epoch bumps invalidated "
        f"{snapshot['entries_invalidated']} entries"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 13)
