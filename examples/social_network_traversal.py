#!/usr/bin/env python3
"""Social-network and web-graph traversal (paper §VI-D).

The paper evaluates its BFS on two "general" graphs beyond RMAT: the
Friendster social network and the WDC 2012 hyperlink graph.  Neither dataset
is redistributable at laptop scale, so this example uses the library's
synthetic substitutes with matched qualitative structure:

* ``friendster_like`` — heavy-tailed degrees, roughly half the vertex universe
  isolated; and
* ``wdc_like`` — a scale-free core with long thin chains, giving BFS a
  long-tail behaviour of hundreds of iterations.

It compares BFS and DOBFS on both: on the social graph DOBFS keeps its
advantage, on the long-tail web graph the advantage disappears (the paper sees
DOBFS slightly *slower* there), which motivates the paper's closing remark
that such workloads want asynchronous frameworks rather than BSP.

Run with::

    python examples/social_network_traversal.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import BFSOptions, ClusterLayout, DistributedBFS, build_partitions
from repro.graph.degree import out_degrees
from repro.graph.generators import friendster_like, wdc_like
from repro.graph.properties import analyze_graph
from repro.partition.delegates import suggest_threshold


def traverse(name: str, edges, layout: ClusterLayout) -> None:
    props = analyze_graph(edges)
    print(f"\n== {name} ==")
    print(
        f"   vertices: {props.num_vertices:,} ({props.num_isolated:,} isolated), "
        f"directed edges: {props.num_directed_edges:,}, "
        f"max degree: {props.max_out_degree}, approx. BFS depth: {props.approx_diameter}"
    )
    threshold = suggest_threshold(edges, layout.num_gpus)
    graph = build_partitions(edges, layout, threshold)
    print(
        f"   partitioned over {layout.notation()} with TH={threshold}: "
        f"{graph.num_delegates:,} delegates, {graph.census.nn_percentage:.1f}% nn edges"
    )
    source = int(np.argmax(out_degrees(edges)))
    counted = edges.num_edges // 2
    for label, opts in [("BFS  ", BFSOptions(direction_optimized=False)), ("DOBFS", BFSOptions())]:
        result = DistributedBFS(graph, options=opts).run(source)
        print(
            f"   {label}: {result.num_visited:,} vertices reached in {result.iterations} "
            f"iterations, {result.total_edges_examined:,} edges examined, "
            f"modeled {result.elapsed_ms:.3f} ms ({result.gteps(counted):.2f} GTEPS)"
        )


def main() -> None:
    layout = ClusterLayout.from_notation("2x2x2")
    friendster = friendster_like(num_vertices=1 << 15, rng=7).prepared()
    traverse("Friendster-like social network (synthetic substitute)", friendster, layout)

    wdc = wdc_like(num_vertices=1 << 15, rng=7).prepared()
    traverse("WDC-2012-like hyperlink graph (synthetic substitute)", wdc, layout)

    print(
        "\nOn the social network DOBFS examines far fewer edges than BFS; on the "
        "long-tail web graph the searches run for hundreds of iterations and the "
        "direction optimization no longer pays off — matching §VI-D of the paper."
    )


if __name__ == "__main__":
    main()
