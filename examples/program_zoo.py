#!/usr/bin/env python3
"""Program zoo: eight algorithms, one engine.

The paper's contribution — degree separation, four per-GPU subgraphs,
per-subgraph direction optimization, the two communication channels — is
algorithm-agnostic machinery.  This example runs every shipped
:class:`repro.FrontierProgram` over the *same* partitioned graph and engine:

* **BFS levels** — the paper's algorithm (hop distances);
* **BFS parents** — the Graph500 output: a parent tree, with parent pointers
  riding the normal-vertex exchange and a 64-bit delegate value reduction;
* **connected components** — min-label propagation to a fixpoint;
* **k-hop reachability** — BFS truncated after k super-steps;

and the weighted zoo (``docs/PROGRAMS.md``) over the same graph carrying
deterministic edge weights:

* **delta-stepping SSSP** — bucketed shortest paths folding float64
  distances as order-preserving int64 bit patterns, with the Bellman-Ford
  schedule (``delta=inf``) as its built-in baseline;
* **PageRank** — fixed-point integer ranks, bit-identical everywhere;
* **hooking components** — min-label hooking + pointer jumping in
  O(log n) rounds, same answers as the frontier program;
* **triangle counting** — rank-ordered wedge checks.

Each run reports the modeled time and the communication volume its channels
moved, showing how the algorithm's semantics change what the same cluster
has to ship.

Run with::

    python examples/program_zoo.py [scale]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

import repro
from repro.graph.degree import out_degrees


def describe(result) -> None:
    stats = result.comm_stats
    print(
        f"   {result.algorithm:<12} {result.iterations:>3} iters  "
        f"{result.total_edges_examined:>10,} edges examined  "
        f"modeled {result.elapsed_ms:>8.3f} ms  "
        f"[normal wire {stats.normal_bytes_remote:,} B"
        f"{' + payload ' + format(stats.normal_payload_bytes, ',') + ' B' if stats.normal_payload_bytes else ''}"
        f" | delegate {stats.delegate_mask_bytes + stats.delegate_value_bytes:,} B]"
    )


def main(scale: int = 13) -> None:
    print(f"== Building a scale-{scale} RMAT graph on a 2x2x2 virtual cluster ==")
    graph = (
        repro.session(layout="2x2x2")
        .generate(scale=scale, seed=7, weights=5)
        .threshold(repro.auto)
        .build()
    )
    source = int(np.argmax(out_degrees(graph.edges)))
    print(
        f"   {graph.graph.num_vertices:,} vertices, {graph.graph.num_directed_edges:,} "
        f"directed edges, {graph.graph.num_delegates:,} delegates "
        f"(TH={graph.graph.threshold}); source = {source}"
    )

    print("== One engine, four programs ==")
    levels = graph.bfs(source=source)
    describe(levels)
    parents = graph.parents(source=source)
    describe(parents)
    components = graph.components()
    describe(components)
    khop = graph.khop(source=source, max_hops=2)
    describe(khop)

    print("== Cross-checks ==")
    same = np.array_equal(parents.parents >= 0, levels.distances >= 0)
    print(f"   parent tree spans the BFS-reachable set: {same}")
    inside = np.flatnonzero(khop.reachable)
    print(
        f"   {khop.num_reached:,} vertices within 2 hops "
        f"(max BFS distance there: {int(levels.distances[inside].max())})"
    )
    label_of_source = int(components.labels[source])
    component_size = int(np.count_nonzero(components.labels == label_of_source))
    print(
        f"   source's component: label {label_of_source}, {component_size:,} vertices "
        f"({components.num_components:,} components total)"
    )
    print(
        "   parents/components pay for their payloads: delegate channel moved "
        f"{parents.comm_stats.delegate_value_bytes:,} B of parent values vs "
        f"{levels.comm_stats.delegate_mask_bytes:,} B of visited masks"
    )

    print("== The weighted zoo, same engine ==")
    sssp = graph.sssp(source=source, delta="auto")
    describe(sssp)
    bellman_ford = graph.sssp(source=source, delta=float("inf"))
    describe(bellman_ford)
    pagerank = graph.pagerank(damping=0.85, iterations=20)
    describe(pagerank)
    hooked = graph.wcc_hook()
    describe(hooked)
    triangles = graph.triangles()
    describe(triangles)

    print("== Weighted cross-checks ==")
    same_bits = np.array_equal(sssp.dist_bits, bellman_ford.dist_bits)
    print(
        f"   delta-stepping == Bellman-Ford bit for bit: {same_bits} "
        f"({sssp.num_reached:,} reached; delta relaxed "
        f"{sssp.total_edges_examined:,} edges vs BF's "
        f"{bellman_ford.total_edges_examined:,})"
    )
    reach_match = np.array_equal(sssp.dist_bits >= 0, levels.distances >= 0)
    print(f"   SSSP reaches exactly the BFS-reachable set: {reach_match}")
    labels_match = np.array_equal(hooked.labels, components.labels)
    print(
        f"   hooking labels == frontier-propagation labels: {labels_match} "
        f"(in {hooked.iterations} rounds vs {components.iterations})"
    )
    print(
        f"   {triangles.triangles:,} triangles "
        f"(max per vertex: {triangles.max_per_vertex:,}); "
        f"rank mass of the top-5 vertices: "
        f"{float(pagerank.ranks_float[pagerank.top_vertices(5)].sum()):.4f}"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 13)
