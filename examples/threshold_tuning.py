#!/usr/bin/env python3
"""Threshold tuning study (paper §VI-B, Figures 5–7).

The single most important tuning parameter of the system is the degree
threshold ``TH`` that separates delegates from normal vertices.  This example
reproduces the paper's tuning methodology on a laptop-scale RMAT graph:

* sweep TH and print how the edge categories and delegate count shift
  (Figure 5),
* run BFS and DOBFS at several thresholds and print the resulting traversal
  rates (Figure 6), and
* print the threshold the built-in suggestion rule picks (Figure 7's rule).

Run with::

    python examples/threshold_tuning.py [scale] [gpus]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import BFSOptions, ClusterLayout, DistributedBFS, build_partitions, generate_rmat
from repro.graph.degree import out_degrees
from repro.partition.delegates import census_for_thresholds, suggest_threshold, threshold_candidates
from repro.perfmodel.teps import rmat_counted_edges
from repro.utils.rng import random_sources
from repro.utils.stats import geometric_mean


def main(scale: int = 14, num_gpus: int = 8) -> None:
    edges = generate_rmat(scale, rng=11)
    layout = ClusterLayout(num_ranks=max(1, num_gpus // 2), gpus_per_rank=min(2, num_gpus))
    counted = rmat_counted_edges(scale)

    print(f"== Edge-category census vs threshold (scale {scale}) ==")
    print(f"{'TH':>8}  {'delegates%':>10}  {'dd%':>7}  {'nd+dn%':>7}  {'nn%':>7}")
    max_degree = int(out_degrees(edges).max())
    for census in census_for_thresholds(edges, threshold_candidates(max_degree)):
        print(
            f"{census.threshold:>8}  {census.delegate_percentage:>10.2f}  "
            f"{census.dd_percentage:>7.2f}  {census.nd_dn_percentage:>7.2f}  "
            f"{census.nn_percentage:>7.2f}"
        )

    suggested = suggest_threshold(edges, layout.num_gpus)
    print(f"\n== Suggested threshold for {layout.num_gpus} GPUs: {suggested} ==")

    print(f"\n== Traversal rate vs threshold ({layout.notation()}) ==")
    sources = random_sources(edges.num_vertices, 4, rng=3, degrees=out_degrees(edges))
    print(f"{'TH':>8}  {'BFS GTEPS':>10}  {'DOBFS GTEPS':>12}")
    for th in [max(1, suggested // 4), suggested, suggested * 4, suggested * 16]:
        graph = build_partitions(edges, layout, th)
        row = []
        for opts in [BFSOptions(direction_optimized=False), BFSOptions()]:
            engine = DistributedBFS(graph, options=opts)
            rates = [
                r.gteps(counted)
                for r in (engine.run(int(s)) for s in sources)
                if r.traversed_more_than_one_iteration()
            ]
            row.append(geometric_mean(rates))
        print(f"{th:>8}  {row[0]:>10.3f}  {row[1]:>12.3f}")

    print("\nAs in the paper, a wide band of thresholds around the suggestion "
          "performs similarly; only extreme values hurt.")


if __name__ == "__main__":
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 14
    gpus = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    main(scale, gpus)
