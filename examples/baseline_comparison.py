#!/usr/bin/env python3
"""Comparing degree separation against 1D and 2D partitioning (paper §II-B).

The paper motivates its design by arguing that conventional 1D and 2D
partitionings cannot scale direction-optimized BFS: 1D must broadcast newly
visited vertices to every peer, and 2D pays a √p-growth two-hop communication
pattern.  This example makes the comparison concrete on one graph:

* it runs the same BFS on a 1D partition, a 2D partition and the paper's
  degree-separated partition over the same virtual cluster,
* verifies all three produce identical hop distances, and
* prints the measured communication volume and modeled time of each, plus the
  analytic weak-scaling projection of the three schemes out to thousands of
  GPUs.

Run with::

    python examples/baseline_comparison.py [scale]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import ClusterLayout, DistributedBFS, HardwareSpec, build_partitions, generate_rmat
from repro.baselines import OneDBFS, TwoDBFS
from repro.graph.degree import out_degrees
from repro.partition import partition_1d, partition_2d, suggest_threshold
from repro.perfmodel.costs import weak_scaling_growth


def main(scale: int = 14) -> None:
    edges = generate_rmat(scale, rng=5)
    layout = ClusterLayout.from_notation("4x1x2")
    source = int(np.argmax(out_degrees(edges)))
    print(f"== Scale-{scale} RMAT graph on a {layout.notation()} virtual cluster ==")

    # --- 1D baseline --------------------------------------------------- #
    one_d = OneDBFS(partition_1d(edges, layout)).run(source)
    print(
        f"   1D partition : {one_d.remote_bytes / 1e6:8.3f} MB remote traffic, "
        f"modeled {1e3 * one_d.elapsed_s:8.3f} ms "
        f"(a DO variant would broadcast {one_d_dobfs_mb(edges):.1f} MB)"
    )

    # --- 2D baseline --------------------------------------------------- #
    two_d = TwoDBFS(partition_2d(edges, layout)).run(source)
    print(
        f"   2D partition : {two_d.total_comm_bytes / 1e6:8.3f} MB reduce+broadcast traffic, "
        f"modeled {1e3 * two_d.elapsed_s:8.3f} ms"
    )

    # --- degree separation (this work) --------------------------------- #
    threshold = suggest_threshold(edges, layout.num_gpus)
    graph = build_partitions(edges, layout, threshold)
    ours = DistributedBFS(graph).run(source)
    ours_mb = (
        ours.comm_stats.normal_bytes_remote + ours.comm_stats.delegate_mask_bytes
    ) / 1e6
    print(
        f"   degree-sep.  : {ours_mb:8.3f} MB (masks + nn exchange), "
        f"modeled {ours.elapsed_ms:8.3f} ms, TH={threshold}"
    )

    assert np.array_equal(one_d.distances, two_d.distances)
    assert np.array_equal(one_d.distances, ours.distances)
    print("   all three traversals produced identical hop distances")

    # --- analytic projection ------------------------------------------- #
    g = HardwareSpec().inverse_bandwidth_g
    print("\n== Analytic weak-scaling projection of per-iteration communication ==")
    print(f"{'GPUs':>6} {'1D (s)':>12} {'2D (s)':>12} {'degree-sep (s)':>15}")
    for p in [16, 64, 256, 1024, 4096]:
        costs = weak_scaling_growth(p, 1 << 26, (1 << 26) * 32, 16, g)
        print(
            f"{p:>6} {costs['1d'].time_seconds:>12.4f} {costs['2d'].time_seconds:>12.4f} "
            f"{costs['paper'].time_seconds:>15.4f}"
        )
    print(
        "\nThe degree-separated model grows as log(p_rank) while the 2D scheme grows "
        "as sqrt(p) — the scalability argument of §II-B and §V."
    )


def one_d_dobfs_mb(edges) -> float:
    """The 8m-byte broadcast volume a 1D DOBFS would need (§II-B)."""
    return 8 * edges.num_edges / 1e6


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 14)
