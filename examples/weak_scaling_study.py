#!/usr/bin/env python3
"""Weak- and strong-scaling study on the simulated cluster (Figures 9–11).

This example drives the same sweeps the paper's headline figures use:

* **weak scaling** — a fixed per-GPU RMAT scale while the GPU count doubles;
  the paper observes close-to-linear aggregate GTEPS growth up to 124 GPUs;
* **strong scaling** — a fixed graph over an increasing GPU count; the paper
  observes an initial improvement, then a flat curve once communication
  dominates, with plain BFS strong-scaling better than DOBFS.

It prints the aggregate rate, per-GPU rate and per-phase runtime breakdown for
every point.  Hardware overheads are scaled to the paper's operating regime
(see ``HardwareSpec.with_scaled_overheads``) so the compute/communication
balance matches the original machine despite the smaller graphs.

Run with::

    python examples/weak_scaling_study.py [scale_per_gpu] [max_gpus]
"""

from __future__ import annotations

import sys
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import HardwareSpec
from repro.core.options import BFSOptions
from repro.perfmodel.scaling import strong_scaling_sweep, weak_scaling_sweep


def paper_regime_hardware() -> HardwareSpec:
    """Overheads scaled to keep the bandwidth-vs-compute balance of the paper."""
    return replace(HardwareSpec().with_scaled_overheads(1 / 4096), min_efficiency=1.0)


def print_points(title: str, points) -> None:
    print(f"\n== {title} ==")
    print(
        f"{'gpus':>5} {'scale':>6} {'layout':>8} {'TH':>5} {'GTEPS':>9} {'GTEPS/GPU':>10} "
        f"{'comp ms':>9} {'comm ms':>9}"
    )
    for p in points:
        comm = (
            p.breakdown.local_communication
            + p.breakdown.remote_normal_exchange
            + p.breakdown.remote_delegate_reduce
        )
        print(
            f"{p.num_gpus:>5} {p.scale:>6} {p.layout_notation:>8} {p.threshold:>5} "
            f"{p.gteps_geo_mean:>9.2f} {p.gteps_geo_mean / p.num_gpus:>10.3f} "
            f"{p.breakdown.computation:>9.4f} {comm:>9.4f}"
        )


def main(scale_per_gpu: int = 11, max_gpus: int = 16) -> None:
    hardware = paper_regime_hardware()
    gpu_counts = [1]
    while gpu_counts[-1] * 2 <= max_gpus:
        gpu_counts.append(gpu_counts[-1] * 2)

    weak = weak_scaling_sweep(
        scale_per_gpu=scale_per_gpu,
        gpu_counts=gpu_counts,
        gpus_per_rank=2,
        hardware=hardware,
        num_sources=4,
        seed=17,
    )
    print_points(f"Weak scaling (scale-{scale_per_gpu} RMAT per GPU), DOBFS", weak)

    strong_scale = scale_per_gpu + len(gpu_counts) - 1
    strong_do = strong_scaling_sweep(
        scale=strong_scale,
        gpu_counts=gpu_counts[1:],
        gpus_per_rank=2,
        hardware=hardware,
        num_sources=4,
        seed=29,
    )
    print_points(f"Strong scaling (scale-{strong_scale} RMAT), DOBFS", strong_do)

    strong_bfs = strong_scaling_sweep(
        scale=strong_scale,
        gpu_counts=gpu_counts[1:],
        gpus_per_rank=2,
        options=BFSOptions(direction_optimized=False),
        hardware=hardware,
        num_sources=4,
        seed=29,
    )
    print_points(f"Strong scaling (scale-{strong_scale} RMAT), plain BFS", strong_bfs)

    print(
        "\nWeak scaling grows the aggregate rate with the cluster; strong scaling "
        "flattens once communication dominates, and plain BFS strong-scales "
        "better than DOBFS — the same shapes as the paper's Figures 9 and 11."
    )


if __name__ == "__main__":
    scale_per_gpu = int(sys.argv[1]) if len(sys.argv) > 1 else 11
    max_gpus = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    main(scale_per_gpu, max_gpus)
