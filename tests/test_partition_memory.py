"""Tests for the Table-I memory model."""

from __future__ import annotations

import pytest

from repro.graph.rmat import generate_rmat
from repro.partition.delegates import census_for_thresholds, suggest_threshold
from repro.partition.layout import ClusterLayout
from repro.partition.memory import analytic_memory_model, memory_usage
from repro.partition.subgraphs import build_partitions


@pytest.fixture(scope="module")
def graph_and_partition():
    edges = generate_rmat(12, rng=3)
    layout = ClusterLayout(num_ranks=2, gpus_per_rank=2)
    threshold = suggest_threshold(edges, layout.num_gpus)
    return edges, build_partitions(edges, layout, threshold)


class TestAnalyticModel:
    def test_formula_matches_table1(self, graph_and_partition):
        edges, part = graph_and_partition
        model = analytic_memory_model(part.census, part.num_gpus)
        n, m, d, p = (
            part.num_vertices,
            part.num_directed_edges,
            part.num_delegates,
            part.num_gpus,
        )
        assert model.partitioned_bytes == 8 * n + 8 * d * p + 4 * m + 4 * part.census.nn_edges
        assert model.edge_list_bytes == 16 * m
        assert model.plain_csr_bytes == 8 * n + 8 * m

    def test_invalid_gpu_count(self, graph_and_partition):
        _, part = graph_and_partition
        with pytest.raises(ValueError):
            analytic_memory_model(part.census, 0)

    def test_partitioned_is_smaller_than_edge_list(self, graph_and_partition):
        """The paper's claim: roughly one third of the 16-byte edge-list format."""
        _, part = graph_and_partition
        model = analytic_memory_model(part.census, part.num_gpus)
        assert model.vs_edge_list < 0.5
        assert model.vs_plain_csr < 0.8

    def test_ratio_degrades_gracefully_without_delegates(self):
        edges = generate_rmat(11, rng=5)
        layout = ClusterLayout(2, 2)
        part = build_partitions(edges, layout, threshold=10**9)
        model = analytic_memory_model(part.census, part.num_gpus)
        # Without separation every edge is an nn edge (8 bytes per edge).
        assert model.partitioned_bytes == 8 * part.num_vertices + 8 * part.num_directed_edges


class TestMeasuredModel:
    def test_measured_close_to_analytic(self, graph_and_partition):
        _, part = graph_and_partition
        analytic, measured = memory_usage(part)
        # The measured layout has per-GPU rounding and the +1 offset entries,
        # so allow a modest tolerance.
        assert measured.partitioned_bytes == pytest.approx(
            analytic.partitioned_bytes, rel=0.15
        )

    def test_measured_matches_numpy_buffers(self, graph_and_partition):
        _, part = graph_and_partition
        _, measured = memory_usage(part)
        assert measured.partitioned_bytes == part.total_nbytes()
        assert measured.partitioned_bytes == sum(g.nbytes() for g in part.gpus)

    def test_as_dict_round_trip(self, graph_and_partition):
        _, part = graph_and_partition
        analytic, _ = memory_usage(part)
        d = analytic.as_dict()
        assert d["partitioned_bytes"] == analytic.partitioned_bytes
        assert 0 < d["vs_edge_list"] < 1

    def test_memory_shrinks_with_reasonable_threshold(self):
        """Sweep thresholds and confirm a mid-range TH gives the best footprint."""
        edges = generate_rmat(12, rng=3)
        p = 4
        sizes = {}
        for th in [1, 32, 10**9]:
            census = census_for_thresholds(edges, [th])[0]
            sizes[th] = analytic_memory_model(census, p).partitioned_bytes
        # TH=1 replicates too many delegates; TH=inf wastes 8 bytes per edge.
        assert sizes[32] <= sizes[1]
        assert sizes[32] <= sizes[10**9]
