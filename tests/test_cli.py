"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.graph.io import load_npz


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "--output", "g.npz"])
        assert args.kind == "rmat"
        assert args.scale == 16

    def test_bfs_option_flags(self):
        args = build_parser().parse_args(
            ["bfs", "--scale", "12", "--no-direction-optimization", "--uniquify"]
        )
        assert args.no_direction_optimization
        assert args.uniquify

    def test_npz_and_scale_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bfs", "--npz", "x.npz", "--scale", "12"])


class TestCommands:
    def test_generate_writes_loadable_npz(self, tmp_path, capsys):
        out = tmp_path / "graph.npz"
        code = main(["generate", "--kind", "rmat", "--scale", "10", "--output", str(out)])
        assert code == 0
        edges = load_npz(out)
        assert edges.num_vertices == 1024
        assert "wrote" in capsys.readouterr().out

    def test_generate_friendster(self, tmp_path):
        out = tmp_path / "fr.npz"
        assert main(["generate", "--kind", "friendster", "--scale", "11", "--output", str(out)]) == 0
        assert load_npz(out).num_vertices == 2048

    def test_bfs_on_generated_graph(self, capsys):
        code = main(
            [
                "bfs",
                "--scale",
                "11",
                "--layout",
                "2x1x2",
                "--threshold",
                "32",
                "--sources",
                "3",
                "--validate",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "geometric mean" in out
        assert "validated" in out

    def test_bfs_explicit_source_and_npz(self, tmp_path, capsys):
        out = tmp_path / "g.npz"
        main(["generate", "--scale", "10", "--output", str(out)])
        code = main(["bfs", "--npz", str(out), "--source", "0", "--layout", "1x1x2"])
        assert code == 0
        assert "source" in capsys.readouterr().out

    def test_bfs_without_direction_optimization(self, capsys):
        code = main(["bfs", "--scale", "10", "--no-direction-optimization", "--sources", "2"])
        assert code == 0
        assert "options plain+BR" in capsys.readouterr().out

    def test_census_prints_table_and_suggestion(self, capsys):
        code = main(["census", "--scale", "11", "--gpus", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "delegates%" in out
        assert "suggested threshold" in out


class TestNewSubcommandsAndJson:
    def test_bfs_parents_algorithm_validates(self, capsys):
        code = main(
            [
                "bfs",
                "--scale",
                "10",
                "--layout",
                "2x1x2",
                "--algorithm",
                "parents",
                "--sources",
                "2",
                "--validate",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "algorithm parents" in out
        assert "validated" in out

    def test_bfs_json_output(self, capsys):
        import json

        code = main(
            ["bfs", "--scale", "10", "--layout", "2x1x2", "--sources", "3", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "levels"
        assert payload["graph"]["vertices"] == 1024
        assert len(payload["runs"]) == 3
        assert {"runs", "reported", "skipped"} <= set(payload["campaign"])
        for run in payload["runs"]:
            assert {"source", "gteps", "iterations", "visited"} <= set(run)

    def test_components_subcommand(self, capsys):
        code = main(["components", "--scale", "10", "--layout", "2x1x2", "--validate"])
        assert code == 0
        out = capsys.readouterr().out
        assert "components:" in out
        assert "union-find" in out

    def test_components_json(self, capsys):
        import json

        code = main(["components", "--scale", "10", "--layout", "2x1x2", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["result"]["algorithm"] == "components"
        assert payload["result"]["components"] >= 1

    def test_census_json(self, capsys):
        import json

        code = main(["census", "--scale", "10", "--gpus", "4", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["suggested_threshold"] >= 1
        assert all("threshold" in row for row in payload["rows"])


class TestTracing:
    def test_bfs_trace_writes_chrome_trace(self, tmp_path, capsys):
        import json

        from repro.obs import NULL_TRACER, get_tracer, load_trace

        path = tmp_path / "bfs.trace.json"
        code = main(
            ["bfs", "--scale", "10", "--layout", "2x1x2", "--source", "1",
             "--trace", str(path)]
        )
        assert code == 0
        assert get_tracer() is NULL_TRACER  # restored after the command
        assert "trace:" in capsys.readouterr().err
        payload = json.loads(path.read_text())
        assert isinstance(payload["traceEvents"], list)
        events = load_trace(path)
        names = {(e["cat"], e["name"]) for e in events}
        assert ("engine", "traversal") in names
        assert ("engine", "super-step") in names
        assert ("exec", "kernels") in names

    def test_trace_env_var_fallback(self, tmp_path, monkeypatch):
        path = tmp_path / "env.trace.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        code = main(["bfs", "--scale", "10", "--layout", "2x1x2", "--source", "1"])
        assert code == 0
        lines = [line for line in path.read_text().splitlines() if line.strip()]
        assert lines  # JSONL: one event per line
        import json

        assert all("name" in json.loads(line) for line in lines)

    def test_trace_summarize(self, tmp_path, capsys):
        import json

        path = tmp_path / "t.trace.json"
        assert main(
            ["bfs", "--scale", "10", "--layout", "2x1x2", "--source", "1",
             "--trace", str(path)]
        ) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "engine/traversal" in out
        assert main(["trace", "summarize", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["events"] > 0
        assert "engine/traversal" in payload["spans"]

    def test_trace_summarize_missing_file(self, tmp_path, capsys):
        assert main(["trace", "summarize", str(tmp_path / "nope.json")]) == 2
        assert "error" in capsys.readouterr().err

    def test_serve_bench_prom_export(self, tmp_path, capsys):
        prom = tmp_path / "serve.prom"
        code = main(
            ["serve", "bench", "--scale", "10", "--layout", "2x1x2",
             "--queries", "32", "--no-baseline", "--prom", str(prom), "--json"]
        )
        assert code == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["batched"]["service"]["queries"] == 32
        text = prom.read_text()
        assert "repro_service_queries 32" in text
        assert text.endswith("\n")

    def test_traced_run_matches_untraced(self, tmp_path, capsys):
        """Tracing must not change the traversal's JSON-reported results."""
        import json

        argv = ["bfs", "--scale", "10", "--layout", "2x1x2", "--source", "1", "--json"]
        assert main(argv) == 0
        untraced = json.loads(capsys.readouterr().out)
        assert main(argv + ["--trace", str(tmp_path / "t.json")]) == 0
        traced = json.loads(capsys.readouterr().out)
        for run_a, run_b in zip(untraced["runs"], traced["runs"]):
            assert run_a["visited"] == run_b["visited"]
            assert run_a["iterations"] == run_b["iterations"]
