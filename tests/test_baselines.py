"""Tests for the serial and distributed baseline BFS implementations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.bfs_1d import OneDBFS
from repro.baselines.bfs_2d import TwoDBFS
from repro.baselines.serial_bfs import bfs_from_edgelist, serial_bfs, serial_bfs_edge_workload
from repro.baselines.serial_dobfs import serial_dobfs
from repro.graph.csr import CSRGraph
from repro.graph.generators import path_edges
from repro.partition.layout import ClusterLayout
from repro.partition.partition_1d import partition_1d
from repro.partition.partition_2d import partition_2d


class TestSerialBFS:
    def test_path_distances(self):
        edges = path_edges(6).prepared(hash_seed=None)
        dist = bfs_from_edgelist(edges, 0)
        np.testing.assert_array_equal(dist, [0, 1, 2, 3, 4, 5])

    def test_unreachable_vertices(self):
        csr = CSRGraph.from_edges([0], [1], 4, 4)
        dist = serial_bfs(csr, 0)
        np.testing.assert_array_equal(dist, [0, 1, -1, -1])

    def test_against_scipy(self, rmat_small, rmat_small_csr):
        from scipy.sparse.csgraph import shortest_path

        dist = serial_bfs(rmat_small_csr, 11)
        sp = shortest_path(rmat_small_csr.to_scipy(), method="D", unweighted=True, indices=11)
        expected = np.where(np.isinf(sp), -1, sp).astype(np.int64)
        np.testing.assert_array_equal(dist, expected)

    def test_workload_is_sum_of_reached_degrees(self, rmat_small_csr):
        dist, workload = serial_bfs_edge_workload(rmat_small_csr, 3)
        reached = np.flatnonzero(dist >= 0)
        assert workload == int(rmat_small_csr.out_degrees()[reached].sum())

    def test_non_square_rejected(self):
        csr = CSRGraph.from_edges([0], [1], 1, 2)
        with pytest.raises(ValueError):
            serial_bfs(csr, 0)

    def test_bad_source_rejected(self, rmat_small_csr):
        with pytest.raises(ValueError):
            serial_bfs(rmat_small_csr, -1)


class TestSerialDOBFS:
    def test_matches_plain_bfs(self, rmat_small_csr):
        for source in [0, 5, 99]:
            plain = serial_bfs(rmat_small_csr, source)
            do = serial_dobfs(rmat_small_csr, source)
            np.testing.assert_array_equal(plain.astype(np.int64), do.distances)

    def test_reduces_workload_on_scale_free_graph(self, rmat_small_csr):
        source = 5
        _, topdown_workload = serial_bfs_edge_workload(rmat_small_csr, source)
        do = serial_dobfs(rmat_small_csr, source)
        assert do.bottom_up_iterations > 0
        assert do.edges_examined < 0.6 * topdown_workload

    def test_mostly_top_down_on_a_path(self):
        # A path has no dense core: the heuristic may flip briefly near the
        # tail (where few unexplored edges remain) but must spend most of the
        # traversal in top-down mode and still produce exact distances.
        edges = path_edges(40).prepared(hash_seed=None)
        csr = CSRGraph.from_edgelist(edges)
        do = serial_dobfs(csr, 0)
        assert do.bottom_up_iterations < do.iterations / 2
        assert do.depth == 39
        np.testing.assert_array_equal(do.distances, serial_bfs(csr, 0))

    def test_invalid_parameters(self, rmat_small_csr):
        with pytest.raises(ValueError):
            serial_dobfs(rmat_small_csr, 0, alpha=0)
        with pytest.raises(ValueError):
            serial_dobfs(rmat_small_csr, -1)
        with pytest.raises(ValueError):
            serial_dobfs(CSRGraph.from_edges([0], [1], 1, 2), 0)


class TestOneDBFS:
    @pytest.fixture(scope="class")
    def setup(self, rmat_small):
        layout = ClusterLayout(2, 2)
        partition = partition_1d(rmat_small, layout)
        return rmat_small, OneDBFS(partition)

    def test_matches_serial(self, setup, rmat_small_csr):
        edges, bfs = setup
        for source in [0, 3, 77]:
            result = bfs.run(source)
            np.testing.assert_array_equal(result.distances, serial_bfs(rmat_small_csr, source))

    def test_accounts_remote_bytes(self, setup):
        _, bfs = setup
        result = bfs.run(3)
        assert result.remote_bytes > 0
        assert result.modeled_comm_s > 0
        assert result.elapsed_s > result.modeled_comp_s

    def test_dobfs_broadcast_volume_formula(self, setup):
        edges, bfs = setup
        assert bfs.dobfs_broadcast_bytes() == 8 * edges.num_edges

    def test_1d_communicates_more_than_degree_separated(self, rmat_small):
        """The motivation for degree separation: 1D sends every discovery as
        a 64-bit id, the paper's scheme sends only nn updates (32-bit) plus
        compact delegate masks."""
        from repro.core.engine import DistributedBFS
        from repro.partition.subgraphs import build_partitions

        layout = ClusterLayout(2, 2)
        source = 3
        one_d = OneDBFS(partition_1d(rmat_small, layout)).run(source)
        graph = build_partitions(rmat_small, layout, 32)
        ours = DistributedBFS(graph).run(source)
        ours_bytes = (
            ours.comm_stats.normal_bytes_remote + ours.comm_stats.delegate_mask_bytes
        )
        assert ours_bytes < one_d.remote_bytes

    def test_bad_source(self, setup):
        _, bfs = setup
        with pytest.raises(ValueError):
            bfs.run(-1)


class TestTwoDBFS:
    @pytest.fixture(scope="class")
    def setup(self, rmat_small):
        layout = ClusterLayout(2, 2)
        partition = partition_2d(rmat_small, layout)
        return rmat_small, TwoDBFS(partition)

    def test_matches_serial(self, setup, rmat_small_csr):
        _, bfs = setup
        for source in [0, 9, 55]:
            result = bfs.run(source)
            np.testing.assert_array_equal(result.distances, serial_bfs(rmat_small_csr, source))

    def test_communication_accounting(self, setup):
        _, bfs = setup
        result = bfs.run(9)
        assert result.broadcast_bytes > 0
        assert result.reduction_bytes > 0
        assert result.total_comm_bytes == result.broadcast_bytes + result.reduction_bytes

    def test_single_gpu_has_no_comm(self, rmat_small, rmat_small_csr):
        partition = partition_2d(rmat_small, ClusterLayout(1, 1))
        result = TwoDBFS(partition).run(3)
        assert result.total_comm_bytes == 0
        np.testing.assert_array_equal(result.distances, serial_bfs(rmat_small_csr, 3))

    def test_bad_source(self, setup):
        _, bfs = setup
        with pytest.raises(ValueError):
            bfs.run(10**9)
