"""Tests for Algorithm 1 (the edge distributor) and its guarantees."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.edgelist import EdgeList
from repro.graph.rmat import generate_rmat
from repro.partition.delegates import separate_by_degree
from repro.partition.distributor import EDGE_CATEGORIES, distribute_edges
from repro.partition.layout import ClusterLayout


def _make(edges, threshold, layout):
    sep = separate_by_degree(edges, threshold)
    return sep, distribute_edges(edges, sep, layout)


class TestAlgorithmRules:
    def test_normal_source_goes_to_source_owner(self, rmat_small, small_layout):
        sep, assignment = _make(rmat_small, 32, small_layout)
        nn_or_nd = ~sep.is_delegate[rmat_small.src]
        expected = small_layout.flat_gpu_of(rmat_small.src[nn_or_nd])
        np.testing.assert_array_equal(assignment.owner[nn_or_nd], expected)

    def test_dn_edges_go_to_destination_owner(self, rmat_small, small_layout):
        sep, assignment = _make(rmat_small, 32, small_layout)
        dn = sep.is_delegate[rmat_small.src] & ~sep.is_delegate[rmat_small.dst]
        expected = small_layout.flat_gpu_of(rmat_small.dst[dn])
        np.testing.assert_array_equal(assignment.owner[dn], expected)

    def test_dd_edges_follow_min_degree_rule(self, rmat_small, small_layout):
        sep, assignment = _make(rmat_small, 32, small_layout)
        deg = sep.degrees
        dd = sep.is_delegate[rmat_small.src] & sep.is_delegate[rmat_small.dst]
        u, v = rmat_small.src[dd], rmat_small.dst[dd]
        du, dv = deg[u], deg[v]
        anchor = np.where(du < dv, u, np.where(du > dv, v, np.minimum(u, v)))
        np.testing.assert_array_equal(
            assignment.owner[dd], small_layout.flat_gpu_of(anchor)
        )

    def test_categories_match_separation(self, rmat_small, small_layout):
        sep, assignment = _make(rmat_small, 32, small_layout)
        src_d = sep.is_delegate[rmat_small.src]
        dst_d = sep.is_delegate[rmat_small.dst]
        np.testing.assert_array_equal(
            assignment.category == EDGE_CATEGORIES["nn"], ~src_d & ~dst_d
        )
        np.testing.assert_array_equal(
            assignment.category == EDGE_CATEGORIES["dd"], src_d & dst_d
        )

    def test_mismatched_separation_rejected(self, rmat_small, small_layout):
        other = generate_rmat(9, rng=9)
        sep = separate_by_degree(other, 8)
        with pytest.raises(ValueError):
            distribute_edges(rmat_small, sep, small_layout)


class TestPaperGuarantees:
    def test_every_edge_assigned_exactly_once(self, rmat_small, small_layout):
        _, assignment = _make(rmat_small, 32, small_layout)
        assert assignment.owner.size == rmat_small.num_edges
        assert assignment.edges_per_gpu().sum() == rmat_small.num_edges

    def test_non_nn_edge_pairs_land_on_the_same_gpu(self, rmat_small, small_layout):
        """The symmetry property: the reverse of every nd/dn/dd edge is co-located."""
        sep, assignment = _make(rmat_small, 32, small_layout)
        owner_of = {}
        for i in range(rmat_small.num_edges):
            owner_of[(int(rmat_small.src[i]), int(rmat_small.dst[i]))] = int(assignment.owner[i])
        nn_code = EDGE_CATEGORIES["nn"]
        for i in range(rmat_small.num_edges):
            if assignment.category[i] == nn_code:
                continue
            u, v = int(rmat_small.src[i]), int(rmat_small.dst[i])
            assert owner_of[(v, u)] == owner_of[(u, v)], f"edge pair ({u},{v}) split across GPUs"

    def test_edge_balance_on_scale_free_graph(self, rmat_medium):
        """The distributor should spread edges nearly evenly (paper: 'Balanced')."""
        layout = ClusterLayout(num_ranks=4, gpus_per_rank=2)
        _, assignment = _make(rmat_medium, 64, layout)
        assert assignment.imbalance() < 1.15

    def test_category_counts_match_census(self, rmat_small, small_layout):
        from repro.partition.delegates import census_for_thresholds

        _, assignment = _make(rmat_small, 32, small_layout)
        census = census_for_thresholds(rmat_small, [32])[0]
        counts = assignment.category_counts()
        assert counts["nn"] == census.nn_edges
        assert counts["nd"] == census.nd_edges
        assert counts["dn"] == census.dn_edges
        assert counts["dd"] == census.dd_edges

    def test_single_gpu_gets_everything(self, rmat_small):
        layout = ClusterLayout(1, 1)
        _, assignment = _make(rmat_small, 32, layout)
        assert np.all(assignment.owner == 0)

    @given(
        n=st.integers(2, 40),
        prank=st.integers(1, 4),
        pgpu=st.integers(1, 3),
        threshold=st.integers(0, 10),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_symmetry_of_non_nn_edges(self, n, prank, pgpu, threshold, data):
        pairs = data.draw(
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                    lambda p: p[0] != p[1]
                ),
                max_size=60,
            )
        )
        edges = EdgeList(
            np.asarray([p[0] for p in pairs], dtype=np.int64),
            np.asarray([p[1] for p in pairs], dtype=np.int64),
            n,
        ).prepared(hash_seed=None)
        layout = ClusterLayout(prank, pgpu)
        sep = separate_by_degree(edges, threshold)
        assignment = distribute_edges(edges, sep, layout)
        owner_of = {
            (int(s), int(d)): int(o)
            for s, d, o in zip(edges.src, edges.dst, assignment.owner)
        }
        nn_code = EDGE_CATEGORIES["nn"]
        for i in range(edges.num_edges):
            if assignment.category[i] == nn_code:
                continue
            u, v = int(edges.src[i]), int(edges.dst[i])
            assert owner_of[(v, u)] == owner_of[(u, v)]
