"""Tests for the cluster layout / vertex ownership arithmetic."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition.layout import ClusterLayout


class TestConstruction:
    def test_basic_shape(self):
        layout = ClusterLayout(num_ranks=4, gpus_per_rank=2)
        assert layout.num_gpus == 8
        assert layout.nodes == 4
        assert layout.ranks_per_node == 1

    def test_explicit_nodes(self):
        layout = ClusterLayout(num_ranks=4, gpus_per_rank=2, num_nodes=2)
        assert layout.nodes == 2
        assert layout.ranks_per_node == 2
        assert layout.notation() == "2x2x2"

    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            ClusterLayout(0, 1)
        with pytest.raises(ValueError):
            ClusterLayout(1, 0)
        with pytest.raises(ValueError):
            ClusterLayout(3, 1, num_nodes=2)
        with pytest.raises(ValueError):
            ClusterLayout(2, 2, num_nodes=0)

    def test_notation_roundtrip(self):
        for text in ["1x1x1", "4x2x2", "31x2x2", "2x1x4"]:
            layout = ClusterLayout.from_notation(text)
            assert layout.notation() == text

    def test_notation_rejects_garbage(self):
        with pytest.raises(ValueError):
            ClusterLayout.from_notation("4x2")


class TestOwnership:
    def test_paper_formulas(self):
        layout = ClusterLayout(num_ranks=3, gpus_per_rank=2)
        v = np.arange(30)
        np.testing.assert_array_equal(layout.rank_of(v), v % 3)
        np.testing.assert_array_equal(layout.gpu_of(v), (v // 3) % 2)

    def test_flat_gpu_consistent_with_rank_gpu(self):
        layout = ClusterLayout(num_ranks=3, gpus_per_rank=4)
        v = np.arange(100)
        flat = layout.flat_gpu_of(v)
        np.testing.assert_array_equal(flat, layout.rank_of(v) * 4 + layout.gpu_of(v))

    def test_local_global_roundtrip(self):
        layout = ClusterLayout(num_ranks=2, gpus_per_rank=3)
        n = 101
        for g in range(layout.num_gpus):
            owned = layout.owned_vertices(g, n)
            assert owned.size == layout.num_local_vertices(g, n)
            local = layout.local_index_of(owned)
            back = layout.global_from_local(g, local)
            np.testing.assert_array_equal(back, owned)
            np.testing.assert_array_equal(layout.flat_gpu_of(owned), g)

    def test_every_vertex_owned_exactly_once(self):
        layout = ClusterLayout(num_ranks=3, gpus_per_rank=2)
        n = 77
        all_owned = np.concatenate(
            [layout.owned_vertices(g, n) for g in range(layout.num_gpus)]
        )
        np.testing.assert_array_equal(np.sort(all_owned), np.arange(n))

    def test_max_local_vertices(self):
        layout = ClusterLayout(num_ranks=2, gpus_per_rank=2)
        assert layout.max_local_vertices(100) == 25
        assert layout.max_local_vertices(101) == 26

    def test_rank_gpu_of_flat_bounds(self):
        layout = ClusterLayout(num_ranks=2, gpus_per_rank=2)
        with pytest.raises(ValueError):
            layout.rank_gpu_of_flat(4)
        assert layout.rank_gpu_of_flat(3) == (1, 1)

    @given(
        prank=st.integers(1, 8),
        pgpu=st.integers(1, 6),
        n=st.integers(1, 500),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_ownership_partition(self, prank, pgpu, n):
        """Ownership must partition the vertex set and local ids must be bounded."""
        layout = ClusterLayout(num_ranks=prank, gpus_per_rank=pgpu)
        v = np.arange(n)
        flat = layout.flat_gpu_of(v)
        local = layout.local_index_of(v)
        assert flat.min() >= 0 and flat.max() < layout.num_gpus
        assert local.max() < layout.max_local_vertices(n)
        # Reconstruct the global id from (flat GPU, local index) and compare.
        offsets = np.asarray(
            [layout.vertex_offset_of_flat(int(f)) for f in flat], dtype=np.int64
        )
        np.testing.assert_array_equal(local * layout.num_gpus + offsets, v)
        # Per-GPU counts sum to n.
        counts = np.asarray(
            [layout.num_local_vertices(g, n) for g in range(layout.num_gpus)]
        )
        assert counts.sum() == n
