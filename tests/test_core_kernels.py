"""Tests for the forward-push and backward-pull visit kernels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernels import backward_visit, filter_frontier, forward_visit
from repro.graph.csr import CSRGraph


@pytest.fixture()
def small_csr():
    #   0 -> 1, 2
    #   1 -> 2
    #   2 -> (none)
    #   3 -> 0, 1, 2
    return CSRGraph.from_edges(
        [0, 0, 1, 3, 3, 3], [1, 2, 2, 0, 1, 2], num_rows=4, num_cols=4
    )


class TestFilterFrontier:
    def test_removes_duplicates_and_zero_degree(self, small_csr):
        deg = small_csr.out_degrees()
        out = filter_frontier(np.asarray([0, 0, 2, 3]), deg)
        np.testing.assert_array_equal(out, [0, 3])

    def test_empty_input(self, small_csr):
        assert filter_frontier(np.zeros(0, dtype=np.int64), small_csr.out_degrees()).size == 0


class TestForwardVisit:
    def test_gathers_all_neighbors(self, small_csr):
        out = forward_visit(small_csr, np.asarray([0, 3]))
        assert not out.backward
        assert out.edges_examined == 5
        np.testing.assert_array_equal(np.sort(out.discovered), [0, 1, 1, 2, 2])

    def test_empty_frontier(self, small_csr):
        out = forward_visit(small_csr, np.zeros(0, dtype=np.int64))
        assert out.edges_examined == 0
        assert out.discovered.size == 0

    def test_workload_equals_frontier_out_degree(self, small_csr):
        frontier = np.asarray([1, 3])
        out = forward_visit(small_csr, frontier)
        assert out.edges_examined == small_csr.frontier_workload(frontier)


class TestBackwardVisit:
    def test_discovers_candidates_with_frontier_parent(self, small_csr):
        # Parents of 2 are {0, 1, 3}; frontier = {1}: candidate 2 is found by
        # pulling through the reverse graph.
        reverse = small_csr.reversed()
        frontier_flags = np.zeros(4, dtype=bool)
        frontier_flags[1] = True
        out = backward_visit(reverse, np.asarray([2, 3]), frontier_flags)
        assert out.backward
        np.testing.assert_array_equal(out.discovered, [2])

    def test_early_exit_workload_counting(self):
        # Candidate 0 has parents [1, 2, 3] (sorted columns); with 1 in the
        # frontier it stops after examining one edge, with only 3 in the
        # frontier it examines all three.
        reverse = CSRGraph.from_edges([0, 0, 0], [1, 2, 3], num_rows=1, num_cols=4)
        first = np.zeros(4, dtype=bool)
        first[1] = True
        out_first = backward_visit(reverse, np.asarray([0]), first)
        assert out_first.edges_examined == 1
        last = np.zeros(4, dtype=bool)
        last[3] = True
        out_last = backward_visit(reverse, np.asarray([0]), last)
        assert out_last.edges_examined == 3
        none = np.zeros(4, dtype=bool)
        out_none = backward_visit(reverse, np.asarray([0]), none)
        assert out_none.edges_examined == 3
        assert out_none.discovered.size == 0

    def test_candidates_without_parents_cost_nothing(self):
        reverse = CSRGraph.from_edges([1], [0], num_rows=3, num_cols=2)
        out = backward_visit(reverse, np.asarray([0, 2]), np.asarray([True, True]))
        assert out.edges_examined == 0
        assert out.discovered.size == 0

    def test_empty_candidates(self, small_csr):
        out = backward_visit(small_csr, np.zeros(0, dtype=np.int64), np.zeros(4, dtype=bool))
        assert out.edges_examined == 0

    @given(
        n=st.integers(2, 20),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_backward_equals_forward_reachability(self, n, data):
        """Backward pull must discover exactly the unvisited vertices adjacent
        to the frontier (same set a forward push would produce)."""
        pairs = data.draw(
            st.lists(st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)), max_size=60)
        )
        src = np.asarray([p[0] for p in pairs] + [p[1] for p in pairs], dtype=np.int64)
        dst = np.asarray([p[1] for p in pairs] + [p[0] for p in pairs], dtype=np.int64)
        csr = CSRGraph.from_edges(src, dst, n, n)  # symmetric by construction
        frontier = np.unique(
            np.asarray(data.draw(st.lists(st.integers(0, n - 1), max_size=6)), dtype=np.int64)
        )
        candidates = np.setdiff1d(np.arange(n), frontier)
        flags = np.zeros(n, dtype=bool)
        flags[frontier] = True

        backward = backward_visit(csr, candidates, flags)
        fwd = forward_visit(csr, frontier)
        expected = np.intersect1d(np.unique(fwd.discovered), candidates)
        np.testing.assert_array_equal(np.sort(backward.discovered), expected)
        # Early-exit workload can never exceed the full parent-list scan.
        assert backward.edges_examined <= csr.frontier_workload(candidates)
