"""Property-based end-to-end test: the distributed engine equals the oracle.

For arbitrary random graphs, cluster shapes, thresholds and option
combinations, the distributed degree-separated (DO)BFS must return exactly the
hop distances of a serial reference BFS.  This is the single most important
invariant in the library.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.serial_bfs import serial_bfs
from repro.core.engine import DistributedBFS
from repro.core.options import BFSOptions
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.partition.layout import ClusterLayout
from repro.partition.subgraphs import build_partitions
from repro.validate.graph500 import validate_distances


@st.composite
def random_symmetric_graph(draw):
    n = draw(st.integers(min_value=2, max_value=64))
    num_edges = draw(st.integers(min_value=0, max_value=4 * n))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=num_edges)
    dst = rng.integers(0, n, size=num_edges)
    edges = EdgeList(src, dst, n).prepared(hash_seed=None)
    return edges


@st.composite
def cluster_layouts(draw):
    prank = draw(st.integers(min_value=1, max_value=4))
    pgpu = draw(st.integers(min_value=1, max_value=3))
    return ClusterLayout(num_ranks=prank, gpus_per_rank=pgpu)


@given(
    edges=random_symmetric_graph(),
    layout=cluster_layouts(),
    threshold=st.integers(min_value=0, max_value=12),
    source_pick=st.integers(min_value=0, max_value=10**6),
    direction_optimized=st.booleans(),
    local_all2all=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_distributed_bfs_matches_serial_oracle(
    edges, layout, threshold, source_pick, direction_optimized, local_all2all
):
    source = source_pick % edges.num_vertices
    options = BFSOptions(
        direction_optimized=direction_optimized,
        local_all2all=local_all2all,
        uniquify=local_all2all,
    )
    graph = build_partitions(edges, layout, threshold)
    result = DistributedBFS(graph, options=options).run(source)

    reference = serial_bfs(CSRGraph.from_edgelist(edges), source)
    np.testing.assert_array_equal(result.distances, reference)

    report = validate_distances(edges, source, result.distances, reference=reference)
    assert report.valid, report.errors

    # Workload sanity: a traversal can never examine more edges than the
    # graph holds times the iteration count, and the visited count matches.
    assert result.num_visited == int(np.count_nonzero(reference >= 0))
    assert result.total_edges_examined <= edges.num_edges * max(result.iterations, 1)


@given(
    edges=random_symmetric_graph(),
    layout=cluster_layouts(),
    threshold=st.integers(min_value=0, max_value=12),
)
@settings(max_examples=30, deadline=None)
def test_partitioning_preserves_every_edge(edges, layout, threshold):
    graph = build_partitions(edges, layout, threshold)
    assert graph.total_stored_edges() == edges.num_edges
    per_gpu = graph.edges_per_gpu()
    assert per_gpu.sum() == edges.num_edges
    assert (per_gpu >= 0).all()
