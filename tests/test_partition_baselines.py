"""Tests for the baseline 1D and 2D partitioners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.partition.layout import ClusterLayout
from repro.partition.partition_1d import partition_1d
from repro.partition.partition_2d import grid_shape_for, partition_2d


class TestOneD:
    def test_edges_conserved(self, rmat_small, small_layout):
        part = partition_1d(rmat_small, small_layout)
        assert part.edges_per_gpu().sum() == rmat_small.num_edges

    def test_rows_follow_ownership(self, rmat_small, small_layout):
        part = partition_1d(rmat_small, small_layout)
        owner = small_layout.flat_gpu_of(rmat_small.src)
        for g in range(small_layout.num_gpus):
            assert part.adjacency[g].num_edges == int(np.count_nonzero(owner == g))

    def test_reconstruction(self, rmat_small, small_layout):
        part = partition_1d(rmat_small, small_layout)
        recovered = set()
        for g in range(small_layout.num_gpus):
            owned = small_layout.owned_vertices(g, rmat_small.num_vertices)
            csr = part.adjacency[g]
            s, d = csr.gather_neighbors(np.arange(csr.num_rows))
            for u, v in zip(owned[s], np.asarray(d, dtype=np.int64)):
                recovered.add((int(u), int(v)))
        expected = {(int(u), int(v)) for u, v in zip(rmat_small.src, rmat_small.dst)}
        assert recovered == expected

    def test_balance_on_scale_free_graph(self, rmat_small):
        layout = ClusterLayout(4, 2)
        part = partition_1d(rmat_small, layout)
        per_gpu = part.edges_per_gpu()
        # 1D by hashed vertex is reasonably balanced but a single high-degree
        # hub can skew it; just assert nothing is empty and nothing holds more
        # than half the edges.
        assert per_gpu.min() > 0
        assert per_gpu.max() < rmat_small.num_edges // 2

    def test_total_bytes_is_conventional_csr(self, rmat_small, small_layout):
        part = partition_1d(rmat_small, small_layout)
        assert part.total_nbytes() > 8 * rmat_small.num_edges


class TestGridShape:
    def test_perfect_squares(self):
        assert grid_shape_for(16) == (4, 4)
        assert grid_shape_for(1) == (1, 1)

    def test_non_squares_most_square_factorisation(self):
        assert grid_shape_for(8) == (2, 4)
        assert grid_shape_for(12) == (3, 4)
        assert grid_shape_for(7) == (1, 7)

    def test_invalid(self):
        with pytest.raises(ValueError):
            grid_shape_for(0)


class TestTwoD:
    def test_edges_conserved(self, rmat_small, small_layout):
        part = partition_2d(rmat_small, small_layout)
        assert part.edges_per_gpu().sum() == rmat_small.num_edges

    def test_block_membership(self, rmat_small):
        layout = ClusterLayout(4, 1)
        part = partition_2d(rmat_small, layout)
        # Every edge must sit in the block addressed by (src % rows, dst % cols).
        src_block = rmat_small.src % part.grid_rows
        dst_block = rmat_small.dst % part.grid_cols
        for i in range(part.grid_rows):
            for j in range(part.grid_cols):
                expected = int(np.count_nonzero((src_block == i) & (dst_block == j)))
                assert part.blocks[i][j].num_edges == expected

    def test_local_index_round_trip(self, rmat_small, small_layout):
        part = partition_2d(rmat_small, small_layout)
        v = np.arange(rmat_small.num_vertices)
        rb, rl = part.row_block_of(v), part.row_local_of(v)
        np.testing.assert_array_equal(rl * part.grid_rows + rb, v)
        cb, cl = part.col_block_of(v), part.col_local_of(v)
        np.testing.assert_array_equal(cl * part.grid_cols + cb, v)

    def test_num_locals_partition_vertex_set(self, rmat_small, small_layout):
        part = partition_2d(rmat_small, small_layout)
        assert (
            sum(part.num_row_local(i) for i in range(part.grid_rows))
            == rmat_small.num_vertices
        )
        assert (
            sum(part.num_col_local(j) for j in range(part.grid_cols))
            == rmat_small.num_vertices
        )
