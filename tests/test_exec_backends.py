"""Tests for the pluggable execution-backend layer (:mod:`repro.exec`).

The load-bearing property is *backend equivalence*: the inline backend, the
process-pool backend and the thread-pool backend must produce bit-identical
results, workload counters and modeled times for every program, option set
and delegate threshold — only wall-clock may differ.  The sweep below runs
the BFS option grid (DO on/off, BR/IR) across the delegate-threshold
extremes (1 = almost everything is a delegate, auto, effectively-infinite =
no delegates) over all four shipped programs plus the batched MS-BFS path,
on both non-inline backends.

Also covered: backend selection (engine / session / environment / CLI),
engine-owned backend lifecycle, and the ``run_many`` batch-routing edge
cases (1-lane batches must never be built).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.engine import TraversalEngine
from repro.core.options import BFSOptions
from repro.core.programs import (
    BatchedBFSLevels,
    BatchedReachability,
    BFSLevels,
    BFSParents,
    ConnectedComponents,
    KHopReachability,
)
from repro.exec import (
    BACKEND_NAMES,
    InlineBackend,
    ProcessBackend,
    ThreadBackend,
    default_backend_name,
    resolve_backend,
)
from repro.exec.backend import BACKEND_ENV_VAR
from repro.graph.rmat import generate_rmat
from repro.partition.delegates import suggest_threshold
from repro.partition.layout import ClusterLayout
from repro.partition.subgraphs import build_partitions

LAYOUT = ClusterLayout(num_ranks=2, gpus_per_rank=2)

#: Delegate-threshold axis: almost-all-delegates, the paper's suggestion,
#: and no-delegates-at-all (every vertex stays normal).
THRESHOLDS = ("one", "auto", "inf")

#: BFS option grid of the equivalence sweep.
OPTION_GRID = {
    "DO+BR": BFSOptions(),
    "DO+IR": BFSOptions(blocking_reduce=False),
    "plain+BR": BFSOptions(direction_optimized=False),
}


@pytest.fixture(scope="module")
def edges():
    return generate_rmat(9, rng=5)


@pytest.fixture(scope="module")
def graphs(edges):
    resolved = {
        "one": 1,
        "auto": suggest_threshold(edges, LAYOUT.num_gpus),
        "inf": 1 << 30,
    }
    return {key: build_partitions(edges, LAYOUT, th) for key, th in resolved.items()}


@pytest.fixture(scope="module")
def process_backends(graphs):
    """One shared ProcessBackend per graph (pool + shared memory reused)."""
    backends = {key: ProcessBackend(graph, workers=2) for key, graph in graphs.items()}
    yield backends
    for backend in backends.values():
        backend.close()


@pytest.fixture(scope="module")
def thread_backends(graphs):
    """One shared ThreadBackend per graph (executor is process-global anyway)."""
    return {key: ThreadBackend(graph, workers=2) for key, graph in graphs.items()}


@pytest.fixture(params=["process", "thread"])
def remote_backends(request, process_backends, thread_backends):
    """The non-inline backends, so every equivalence case covers both."""
    return process_backends if request.param == "process" else thread_backends


def assert_results_identical(a, b) -> None:
    """Two traversal results must match bit for bit, wall-clock excepted."""
    for attr in ("distances", "parents", "labels"):
        va, vb = getattr(a, attr, None), getattr(b, attr, None)
        assert (va is None) == (vb is None)
        if va is not None:
            np.testing.assert_array_equal(va, vb)
    assert a.iterations == b.iterations
    assert a.total_edges_examined == b.total_edges_examined
    assert a.workload_by_kernel() == b.workload_by_kernel()
    assert a.comm_stats.as_dict() == b.comm_stats.as_dict()
    assert a.timing.elapsed_ms == b.timing.elapsed_ms
    assert a.timing.as_dict() == b.timing.as_dict()
    for ra, rb in zip(a.records, b.records):
        assert ra.edges_examined == rb.edges_examined
        assert ra.directions == rb.directions
        assert ra.discovered == rb.discovered


# --------------------------------------------------------------------------- #
# The equivalence sweep (satellite: backend-equivalence test coverage)
# --------------------------------------------------------------------------- #
class TestBackendEquivalence:
    @pytest.mark.parametrize("threshold", THRESHOLDS)
    @pytest.mark.parametrize("label", sorted(OPTION_GRID))
    @pytest.mark.parametrize("program_name", ["levels", "parents", "components", "khop"])
    def test_sequential_programs(
        self, graphs, remote_backends, threshold, label, program_name
    ):
        graph = graphs[threshold]
        make = {
            "levels": lambda: BFSLevels(source=3),
            "parents": lambda: BFSParents(source=3),
            "components": lambda: ConnectedComponents(),
            "khop": lambda: KHopReachability(source=3, max_hops=3),
        }[program_name]
        options = OPTION_GRID[label]
        inline = TraversalEngine(graph, options=options)
        remote = TraversalEngine(
            graph, options=options, backend=remote_backends[threshold]
        )
        assert_results_identical(inline.run(make()), remote.run(make()))

    @pytest.mark.parametrize("threshold", THRESHOLDS)
    def test_batched_sweeps(self, graphs, remote_backends, threshold):
        graph = graphs[threshold]
        # 70 lanes forces multi-word lane bitsets through the shared-memory
        # dense scratch; the reachability batch exercises the hop cap.
        factories = (
            lambda: BatchedBFSLevels(list(range(70))),
            lambda: BatchedReachability([5, 9, 11], max_hops=2),
        )
        for make in factories:
            inline = TraversalEngine(graph)
            remote = TraversalEngine(graph, backend=remote_backends[threshold])
            a = inline.run_batch(make())
            b = remote.run_batch(make())
            np.testing.assert_array_equal(a.distances, b.distances)
            assert a.comm_stats.as_dict() == b.comm_stats.as_dict()
            assert a.timing.elapsed_ms == b.timing.elapsed_ms
            assert a.workload_by_kernel() == b.workload_by_kernel()

    def test_run_many_with_dedup_and_batches(self, graphs, remote_backends):
        graph = graphs["auto"]
        programs = [BFSLevels(source=s) for s in [2, 7, 2, 9, 13, 7, 21]]
        inline = TraversalEngine(graph).run_many(list(programs), batch_size=4)
        remote = TraversalEngine(
            graph, backend=remote_backends["auto"]
        ).run_many(list(programs), batch_size=4)
        assert inline.saved_traversals == remote.saved_traversals == 2
        for a, b in zip(inline, remote):
            np.testing.assert_array_equal(a.distances, b.distances)

    def test_option_label_axis_is_complete(self):
        # The sweep's labels really are the configurations they claim.
        assert OPTION_GRID["DO+BR"].label() == "DO+BR"
        assert OPTION_GRID["DO+IR"].label() == "DO+IR"
        assert OPTION_GRID["plain+BR"].label() == "plain+BR"


# --------------------------------------------------------------------------- #
# Backend selection and lifecycle
# --------------------------------------------------------------------------- #
class TestBackendSelection:
    def test_registry_names(self):
        assert BACKEND_NAMES == ("inline", "process", "thread")

    def test_default_is_inline(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert default_backend_name() == "inline"

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        assert default_backend_name() == "process"
        monkeypatch.setenv(BACKEND_ENV_VAR, "teleport")
        with pytest.raises(ValueError, match="teleport"):
            default_backend_name()

    def test_resolve_backend_ownership(self, graphs):
        graph = graphs["auto"]
        backend, owned = resolve_backend("inline", graph)
        assert isinstance(backend, InlineBackend) and owned
        shared = InlineBackend(graph)
        backend, owned = resolve_backend(shared, graph)
        assert backend is shared and not owned
        with pytest.raises(ValueError, match="unknown execution backend"):
            resolve_backend("teleport", graph)

    def test_engine_owns_named_backend_but_not_instances(self, graphs, process_backends):
        graph = graphs["auto"]
        engine = TraversalEngine(graph, backend="inline")
        assert engine.backend_name == "inline"
        engine.close()

        shared = process_backends["auto"]
        engine = TraversalEngine(graph, backend=shared)
        engine.run(BFSLevels(source=0))
        engine.close()  # must NOT close the shared backend
        assert not shared._closed
        # ... the shared pool still works afterwards.
        TraversalEngine(graph, backend=shared).run(BFSLevels(source=1))

    def test_use_backend_switches_in_place(self, graphs):
        graph = graphs["auto"]
        engine = TraversalEngine(graph)
        a = engine.run(BFSLevels(source=3))
        engine.use_backend("inline")
        b = engine.run(BFSLevels(source=3))
        assert_results_identical(a, b)

    def test_process_backend_rejects_bad_workers(self, graphs):
        with pytest.raises(ValueError, match="workers"):
            ProcessBackend(graphs["auto"], workers=0)

    def test_resolve_thread_backend_by_name(self, graphs):
        backend, owned = resolve_backend("thread", graphs["auto"])
        assert isinstance(backend, ThreadBackend) and owned
        assert backend.name == "thread"

    def test_thread_backend_survives_close(self, graphs):
        # close() is deliberately a no-op (the executor is process-global and
        # shared); a closed-then-reused backend must keep working.
        backend = ThreadBackend(graphs["auto"], workers=2)
        engine = TraversalEngine(graphs["auto"], backend=backend)
        a = engine.run(BFSLevels(source=3))
        engine.close()
        b = TraversalEngine(graphs["auto"], backend=backend).run(BFSLevels(source=3))
        assert_results_identical(a, b)

    def test_thread_backend_rejects_bad_workers(self, graphs):
        with pytest.raises(ValueError, match="workers"):
            ThreadBackend(graphs["auto"], workers=0)

    def test_closed_process_backend_refuses_work(self, graphs):
        backend = ProcessBackend(graphs["auto"], workers=1)
        engine = TraversalEngine(graphs["auto"], backend=backend)
        engine.run(BFSLevels(source=0))
        backend.close()
        backend.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            engine.run(BFSLevels(source=0))

    def test_session_threads_backend_through(self, graphs, process_backends):
        import repro

        result = (
            repro.session(layout="2x1x2")
            .generate(scale=9, seed=5)
            .backend(process_backends["auto"])
            .bfs(3)
        )
        reference = repro.session(layout="2x1x2").generate(scale=9, seed=5).bfs(3)
        np.testing.assert_array_equal(result.distances, reference.distances)

    def test_graph_session_backend_switch_and_name(self):
        import repro

        graph_session = (
            repro.session(layout="2x1x2", backend="inline")
            .generate(scale=9, seed=5)
            .build()
        )
        assert graph_session.backend_name == "inline"
        graph_session.backend("inline")
        assert graph_session.engine.backend_name == "inline"
        graph_session.close()


# --------------------------------------------------------------------------- #
# run_many batch routing (satellite: no 1-lane batches, ever)
# --------------------------------------------------------------------------- #
class TestRunManyBatchRouting:
    @pytest.fixture()
    def engine(self, graphs):
        return TraversalEngine(graphs["auto"])

    def _trap_run_batch(self, engine, monkeypatch):
        calls = []
        original = engine.run_batch

        def spy(program, overlay=None):
            calls.append(program.width)
            assert program.width >= 2, "a 1-lane batch must never be built"
            return original(program, overlay=overlay)

        monkeypatch.setattr(engine, "run_batch", spy)
        return calls

    def test_batch_size_one_routes_sequential(self, engine, monkeypatch):
        calls = self._trap_run_batch(engine, monkeypatch)
        campaign = engine.run_many(
            [BFSLevels(source=s) for s in (1, 2, 3)], batch_size=1
        )
        assert calls == []
        assert len(campaign) == 3

    def test_single_program_list_routes_sequential(self, engine, monkeypatch):
        calls = self._trap_run_batch(engine, monkeypatch)
        campaign = engine.run_many([BFSLevels(source=4)], batch_size=32)
        assert calls == []
        assert len(campaign) == 1

    def test_duplicates_collapsing_to_one_route_sequential(self, engine, monkeypatch):
        calls = self._trap_run_batch(engine, monkeypatch)
        campaign = engine.run_many(
            [BFSLevels(source=6), BFSLevels(source=6), BFSLevels(source=6)],
            batch_size=32,
        )
        assert calls == []
        assert campaign.saved_traversals == 2

    def test_remainder_chunk_of_one_routes_sequential(self, engine, monkeypatch):
        calls = self._trap_run_batch(engine, monkeypatch)
        sources = [1, 2, 3, 4, 5]  # batch_size 4 -> one 4-lane batch + 1 leftover
        campaign = engine.run_many(
            [BFSLevels(source=s) for s in sources], batch_size=4
        )
        assert calls == [4]
        assert len(campaign) == 5

    def test_query_service_batch_size_one_is_sequential(self, graphs):
        from repro.serve import Query, QueryService

        service = QueryService(TraversalEngine(graphs["auto"]), batch_size=1)
        assert not service.batched
        service.serve([Query("levels", source=1), Query("levels", source=2)])
        assert service.stats.batches == 0
        assert service.stats.sequential_sources == 2


# --------------------------------------------------------------------------- #
# Serving and benching on a chosen backend
# --------------------------------------------------------------------------- #
class TestBackendIntegration:
    def test_query_service_accepts_backend(self, graphs, process_backends):
        from repro.serve import Query, QueryService

        engine = TraversalEngine(graphs["auto"])
        service = QueryService(
            engine, batch_size=4, backend=process_backends["auto"]
        )
        assert engine.backend_name == "process"
        results = service.serve([Query("levels", source=s) for s in (1, 2, 3, 4)])
        reference = TraversalEngine(graphs["auto"]).run(BFSLevels(source=2))
        np.testing.assert_array_equal(results[1].distances, reference.distances)
        assert service.stats_snapshot()["backend"] == "process"

    def test_run_scenario_records_backend_outside_spec(self):
        from repro.bench.runner import run_scenario
        from repro.bench.scenarios import Scenario

        spec = Scenario("tiny-process", "rmat", 9, "levels", sources=1, backend="process")
        record = run_scenario(spec, repeats=2)
        assert record["backend"] == "process"
        assert "backend" not in record["spec"]

        inline_record = run_scenario(
            Scenario("tiny-inline", "rmat", 9, "levels", sources=1), repeats=2
        )
        assert inline_record["backend"] == "inline"
        # Backend-invariant counters: the whole point of the axis.
        assert inline_record["counters"] == record["counters"]
        assert inline_record["modeled_ms"] == record["modeled_ms"]

    def test_scenario_rejects_unknown_backend(self):
        from repro.bench.scenarios import Scenario

        with pytest.raises(ValueError, match="backend"):
            Scenario("bad", "rmat", 9, "levels", backend="teleport")

    def test_cli_bfs_backend_json(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "bfs",
                    "--scale",
                    "9",
                    "--layout",
                    "2x1x2",
                    "--source",
                    "3",
                    "--backend",
                    "process",
                    "--json",
                ]
            )
            == 0
        )
        process_out = json.loads(capsys.readouterr().out)
        assert process_out["backend"] == "process"

        assert (
            main(
                [
                    "bfs",
                    "--scale",
                    "9",
                    "--layout",
                    "2x1x2",
                    "--source",
                    "3",
                    "--backend",
                    "inline",
                    "--json",
                ]
            )
            == 0
        )
        inline_out = json.loads(capsys.readouterr().out)
        assert inline_out["backend"] == "inline"
        assert inline_out["runs"] == process_out["runs"]

    def test_cli_serve_bench_json_reports_backend_and_qps(self, capsys):
        from repro.cli import main

        code = main(
            [
                "serve",
                "bench",
                "--scale",
                "9",
                "--layout",
                "2x1x2",
                "--queries",
                "24",
                "--batch-size",
                "4",
                "--pool",
                "16",
                "--backend",
                "inline",
                "--json",
            ]
        )
        assert code == 0
        out = json.loads(capsys.readouterr().out)
        assert out["backend"] == "inline"
        assert out["batched"]["backend"] == "inline"
        assert out["batched"]["service"]["queries"] == 24
        assert out["batched"]["service"]["queries_per_sec"] >= 0.0
        assert out["sequential"]["service"]["queries_per_sec"] >= 0.0
        assert "speedup" in out
