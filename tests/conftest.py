"""Shared fixtures for the test suite.

Graph fixtures are module-scoped (they are deterministic and read-only), so
expensive generation happens once per session even though many test modules
use them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.graph.generators import grid_edges, path_edges, star_edges
from repro.graph.rmat import generate_rmat
from repro.partition.layout import ClusterLayout


@pytest.fixture(scope="session")
def rmat_small() -> EdgeList:
    """A prepared scale-11 RMAT graph (2048 vertices, ~50k directed edges)."""
    return generate_rmat(11, rng=1)


@pytest.fixture(scope="session")
def rmat_medium() -> EdgeList:
    """A prepared scale-13 RMAT graph used by the heavier integration tests."""
    return generate_rmat(13, rng=2)


@pytest.fixture(scope="session")
def rmat_small_csr(rmat_small: EdgeList) -> CSRGraph:
    """Square CSR over the scale-11 RMAT fixture."""
    return CSRGraph.from_edgelist(rmat_small)


@pytest.fixture(scope="session")
def star_graph() -> EdgeList:
    """A symmetric star with one obvious delegate (hub degree 40)."""
    return star_edges(40).prepared(hash_seed=None)


@pytest.fixture(scope="session")
def path_graph() -> EdgeList:
    """A symmetric 50-vertex path (long diameter, no delegates at TH >= 2)."""
    return path_edges(50).prepared(hash_seed=None)


@pytest.fixture(scope="session")
def grid_graph() -> EdgeList:
    """A symmetric 10x8 grid."""
    return grid_edges(10, 8).prepared(hash_seed=None)


@pytest.fixture(
    params=["1x1x1", "1x1x4", "1x2x2", "3x1x2", "2x2x2"],
    scope="session",
)
def any_layout(request) -> ClusterLayout:
    """A representative sweep of cluster shapes (1 to 8 virtual GPUs)."""
    return ClusterLayout.from_notation(request.param)


@pytest.fixture(scope="session")
def small_layout() -> ClusterLayout:
    """The default 4-GPU, 2-rank layout used by most unit tests."""
    return ClusterLayout(num_ranks=2, gpus_per_rank=2)


def assert_valid_permutation(perm: np.ndarray, n: int) -> None:
    """Helper: assert ``perm`` is a bijection on [0, n)."""
    assert perm.shape == (n,)
    seen = np.zeros(n, dtype=bool)
    seen[perm] = True
    assert seen.all()
