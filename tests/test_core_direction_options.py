"""Tests for direction-optimization state and BFS options."""

from __future__ import annotations

import math

import pytest

from repro.core.direction import DirectionState, estimate_backward_workload
from repro.core.options import BFSOptions, DirectionFactors


class TestBackwardEstimate:
    def test_formula(self):
        # |U| (q + s) / q
        assert estimate_backward_workload(10, q=5, s=15) == pytest.approx(40.0)
        assert estimate_backward_workload(0, q=5, s=5) == 0.0

    def test_empty_frontier_gives_infinite_estimate(self):
        assert math.isinf(estimate_backward_workload(10, q=0, s=5))

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            estimate_backward_workload(-1, 1, 1)
        with pytest.raises(ValueError):
            estimate_backward_workload(1, -1, 1)


class TestDirectionFactors:
    def test_valid_factors(self):
        f = DirectionFactors(0.5, 0.1)
        assert f.factor0 == 0.5

    def test_invalid_factors(self):
        with pytest.raises(ValueError):
            DirectionFactors(0.0, 0.1)
        with pytest.raises(ValueError):
            DirectionFactors(0.5, -1.0)
        with pytest.raises(ValueError):
            DirectionFactors(0.1, 0.5)  # factor1 > factor0


class TestDirectionState:
    def test_switches_to_backward_when_forward_expensive(self):
        state = DirectionState(DirectionFactors(0.5, 0.01))
        assert state.decide(forward_workload=100, backward_workload=10) is True
        assert state.switches == 1

    def test_stays_forward_when_cheap(self):
        state = DirectionState(DirectionFactors(0.5, 0.01))
        assert state.decide(10, 1000) is False
        assert state.switches == 0

    def test_hysteresis_switch_back(self):
        state = DirectionState(DirectionFactors(0.5, 0.1))
        state.decide(100, 10)  # -> backward
        assert state.decide(5, 1000) is False  # FV < 0.1 * BV -> forward again
        assert state.switches == 2

    def test_stays_backward_in_between(self):
        state = DirectionState(DirectionFactors(0.5, 0.01))
        state.decide(100, 10)
        assert state.decide(50, 100) is True  # between the two thresholds

    def test_disabled_always_forward(self):
        state = DirectionState(DirectionFactors(0.5, 0.01), enabled=False)
        assert state.decide(1e9, 1.0) is False
        assert state.history == [False]

    def test_negative_workloads_rejected(self):
        state = DirectionState(DirectionFactors(0.5, 0.01))
        with pytest.raises(ValueError):
            state.decide(-1, 1)

    def test_reset(self):
        state = DirectionState(DirectionFactors(0.5, 0.01))
        state.decide(100, 10)
        state.reset()
        assert not state.backward
        assert state.switches == 0
        assert state.history == []


class TestBFSOptions:
    def test_defaults_match_paper_configuration(self):
        opts = BFSOptions()
        assert opts.direction_optimized
        assert opts.blocking_reduce
        assert not opts.local_all2all and not opts.uniquify
        assert opts.dd_factors.factor0 == pytest.approx(0.5)
        assert opts.dn_factors.factor0 == pytest.approx(0.05)
        assert opts.nd_factors.factor0 == pytest.approx(1e-7)

    def test_uniquify_requires_local_all2all(self):
        with pytest.raises(ValueError):
            BFSOptions(uniquify=True, local_all2all=False)

    def test_overlap_bounds(self):
        with pytest.raises(ValueError):
            BFSOptions(overlap_efficiency=1.5)
        with pytest.raises(ValueError):
            BFSOptions(max_iterations=0)

    def test_label(self):
        assert BFSOptions().label() == "DO+BR"
        assert (
            BFSOptions(local_all2all=True, uniquify=True).label() == "DO+L+U+BR"
        )

    def test_label_renders_plain_when_all_optimizations_off(self):
        """With DO/L/U all off the label must still name the configuration."""
        assert BFSOptions(direction_optimized=False).label() == "plain+BR"
        assert (
            BFSOptions(direction_optimized=False, blocking_reduce=False).label()
            == "plain+IR"
        )
