"""Tests for the CSR adjacency structure and its traversal helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList


class TestConstruction:
    def test_from_edges_basic(self):
        csr = CSRGraph.from_edges([0, 0, 2], [1, 2, 0], num_rows=3, num_cols=3)
        assert csr.num_edges == 3
        np.testing.assert_array_equal(csr.out_degrees(), [2, 0, 1])
        np.testing.assert_array_equal(csr.neighbors(0), [1, 2])
        np.testing.assert_array_equal(csr.neighbors(1), [])

    def test_rectangular_csr(self):
        csr = CSRGraph.from_edges([0, 1], [5, 9], num_rows=2, num_cols=10)
        assert csr.num_rows == 2 and csr.num_cols == 10

    def test_empty(self):
        csr = CSRGraph.empty(4, 7)
        assert csr.num_edges == 0
        assert csr.out_degrees().sum() == 0

    def test_column_dtype_preserved(self):
        csr32 = CSRGraph.from_edges([0], [1], 2, 2, column_dtype=np.int32)
        csr64 = CSRGraph.from_edges([0], [1], 2, 2, column_dtype=np.int64)
        assert csr32.column_dtype == np.int32
        assert csr64.column_dtype == np.int64

    def test_nbytes_accounting(self):
        csr32 = CSRGraph.from_edges([0, 1], [1, 0], 2, 2, column_dtype=np.int32)
        csr64 = CSRGraph.from_edges([0, 1], [1, 0], 2, 2, column_dtype=np.int64)
        assert csr32.nbytes() == 4 * 3 + 4 * 2
        assert csr64.nbytes() == 8 * 3 + 8 * 2

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges([0], [5], num_rows=1, num_cols=3)
        with pytest.raises(ValueError):
            CSRGraph.from_edges([5], [0], num_rows=1, num_cols=3)
        with pytest.raises(ValueError):
            CSRGraph(np.asarray([0, 1]), np.asarray([0]), num_rows=2, num_cols=1)
        with pytest.raises(ValueError):
            CSRGraph(np.asarray([0, 2, 1]), np.asarray([0, 0]), num_rows=2, num_cols=1)

    def test_from_edgelist_square(self):
        edges = EdgeList([0, 1, 2], [1, 2, 0], 3)
        csr = CSRGraph.from_edgelist(edges)
        assert csr.num_rows == csr.num_cols == 3
        assert csr.num_edges == 3

    def test_neighbors_out_of_range(self):
        csr = CSRGraph.empty(2, 2)
        with pytest.raises(IndexError):
            csr.neighbors(5)


class TestGatherNeighbors:
    def test_gather_concatenates_neighbor_lists(self):
        csr = CSRGraph.from_edges([0, 0, 1, 3], [1, 2, 3, 0], 4, 4)
        rows, cols = csr.gather_neighbors(np.asarray([0, 3]))
        np.testing.assert_array_equal(rows, [0, 0, 3])
        np.testing.assert_array_equal(cols, [1, 2, 0])

    def test_gather_empty_frontier(self):
        csr = CSRGraph.from_edges([0], [1], 2, 2)
        rows, cols = csr.gather_neighbors(np.zeros(0, dtype=np.int64))
        assert rows.size == 0 and cols.size == 0

    def test_gather_rows_with_no_neighbors(self):
        csr = CSRGraph.from_edges([0], [1], 3, 3)
        rows, cols = csr.gather_neighbors(np.asarray([1, 2]))
        assert cols.size == 0

    def test_gather_duplicated_rows_counts_twice(self):
        csr = CSRGraph.from_edges([0, 0], [1, 2], 2, 3)
        _, cols = csr.gather_neighbors(np.asarray([0, 0]))
        assert cols.size == 4

    def test_gather_out_of_range_raises(self):
        csr = CSRGraph.empty(2, 2)
        with pytest.raises(IndexError):
            csr.gather_neighbors(np.asarray([5]))

    def test_frontier_workload(self):
        csr = CSRGraph.from_edges([0, 0, 1], [1, 2, 2], 3, 3)
        assert csr.frontier_workload(np.asarray([0])) == 2
        assert csr.frontier_workload(np.asarray([0, 1])) == 3
        assert csr.frontier_workload(np.zeros(0, dtype=np.int64)) == 0

    @given(
        n=st.integers(min_value=1, max_value=25),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_gather_matches_per_row_lists(self, n, data):
        pairs = data.draw(
            st.lists(st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)), max_size=80)
        )
        src = np.asarray([p[0] for p in pairs], dtype=np.int64)
        dst = np.asarray([p[1] for p in pairs], dtype=np.int64)
        csr = CSRGraph.from_edges(src, dst, n, n)
        frontier = data.draw(
            st.lists(st.integers(0, n - 1), max_size=10).map(np.asarray)
        )
        frontier = np.asarray(frontier, dtype=np.int64)
        rows, cols = csr.gather_neighbors(frontier)
        expected_cols = np.concatenate(
            [csr.neighbors(int(r)) for r in frontier]
        ) if frontier.size else np.zeros(0, dtype=np.int64)
        np.testing.assert_array_equal(np.asarray(cols, dtype=np.int64), expected_cols)
        assert rows.size == cols.size


class TestReverseAndScipy:
    def test_reversed_transposes(self):
        csr = CSRGraph.from_edges([0, 1], [2, 0], 3, 3)
        rev = csr.reversed()
        assert rev.num_edges == 2
        np.testing.assert_array_equal(rev.neighbors(2), [0])
        np.testing.assert_array_equal(rev.neighbors(0), [1])

    def test_to_scipy_shape_and_count(self):
        csr = CSRGraph.from_edges([0, 1, 1], [1, 0, 2], 2, 3)
        mat = csr.to_scipy()
        assert mat.shape == (2, 3)
        assert mat.nnz == 3
