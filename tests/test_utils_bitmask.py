"""Unit and property tests for the packed bitmask."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.bitmask import Bitmask


class TestBasics:
    def test_empty_mask_has_no_bits_set(self):
        mask = Bitmask(100)
        assert mask.count() == 0
        assert not mask.any()
        assert len(mask) == 100

    def test_zero_size_mask(self):
        mask = Bitmask(0)
        assert mask.count() == 0
        assert mask.to_indices().size == 0
        assert mask.nbytes == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Bitmask(-1)

    def test_set_and_test_single_bits(self):
        mask = Bitmask(20)
        mask.set(0)
        mask.set(7)
        mask.set(19)
        assert mask.test(0) and mask.test(7) and mask.test(19)
        assert not mask.test(1)
        assert mask.count() == 3

    def test_clear_single_bit(self):
        mask = Bitmask(16)
        mask.set(5)
        mask.clear(5)
        assert not mask.test(5)
        assert mask.count() == 0

    def test_out_of_range_set_raises(self):
        mask = Bitmask(8)
        with pytest.raises(IndexError):
            mask.set(8)
        with pytest.raises(IndexError):
            mask.set_many(np.asarray([-1]))

    def test_nbytes_is_ceil_of_size_over_8(self):
        assert Bitmask(1).nbytes == 1
        assert Bitmask(8).nbytes == 1
        assert Bitmask(9).nbytes == 2
        assert Bitmask(64).nbytes == 8

    def test_buffer_wrapping_requires_matching_length(self):
        with pytest.raises(ValueError):
            Bitmask(16, buffer=np.zeros(1, dtype=np.uint8))

    def test_repr_and_equality(self):
        a = Bitmask.from_indices(10, [1, 3])
        b = Bitmask.from_indices(10, [1, 3])
        c = Bitmask.from_indices(10, [1, 4])
        assert a == b
        assert a != c
        assert a != Bitmask(11)

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Bitmask(4))


class TestBulkOperations:
    def test_set_many_and_to_indices_roundtrip(self):
        idx = np.asarray([0, 5, 5, 31, 17])
        mask = Bitmask(32)
        mask.set_many(idx)
        np.testing.assert_array_equal(mask.to_indices(), np.unique(idx))

    def test_test_many(self):
        mask = Bitmask.from_indices(64, [2, 40, 63])
        flags = mask.test_many(np.asarray([0, 2, 40, 62, 63]))
        np.testing.assert_array_equal(flags, [False, True, True, False, True])

    def test_or_with_merges(self):
        a = Bitmask.from_indices(30, [1, 2])
        b = Bitmask.from_indices(30, [2, 25])
        a.or_with(b)
        np.testing.assert_array_equal(a.to_indices(), [1, 2, 25])

    def test_or_with_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            Bitmask(8).or_with(Bitmask(16))

    def test_and_not_difference(self):
        new = Bitmask.from_indices(40, [3, 9, 22])
        old = Bitmask.from_indices(40, [9])
        np.testing.assert_array_equal(new.difference_indices(old), [3, 22])

    def test_fill_all_respects_logical_size(self):
        mask = Bitmask(13)
        mask.fill_all()
        assert mask.count() == 13
        np.testing.assert_array_equal(mask.to_indices(), np.arange(13))

    def test_clear_all(self):
        mask = Bitmask.from_indices(24, [0, 10, 23])
        mask.clear_all()
        assert mask.count() == 0

    def test_from_bool_array_roundtrip(self):
        flags = np.zeros(19, dtype=bool)
        flags[[0, 7, 18]] = True
        mask = Bitmask.from_bool_array(flags)
        np.testing.assert_array_equal(mask.to_bool_array(), flags)

    def test_or_buffer(self):
        a = Bitmask.from_indices(16, [1])
        b = Bitmask.from_indices(16, [9])
        a.or_buffer(b.buffer)
        assert a.test(1) and a.test(9)

    def test_copy_is_independent(self):
        a = Bitmask.from_indices(8, [1])
        b = a.copy()
        b.set(2)
        assert not a.test(2)


class TestProperties:
    @given(
        size=st.integers(min_value=1, max_value=300),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_set_many_matches_python_set_semantics(self, size, data):
        indices = data.draw(
            st.lists(st.integers(min_value=0, max_value=size - 1), max_size=80)
        )
        mask = Bitmask(size)
        mask.set_many(np.asarray(indices, dtype=np.int64))
        expected = np.asarray(sorted(set(indices)), dtype=np.int64)
        np.testing.assert_array_equal(mask.to_indices(), expected)
        assert mask.count() == len(set(indices))

    @given(
        size=st.integers(min_value=1, max_value=200),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_or_is_set_union(self, size, data):
        a_idx = data.draw(st.lists(st.integers(0, size - 1), max_size=50))
        b_idx = data.draw(st.lists(st.integers(0, size - 1), max_size=50))
        a = Bitmask.from_indices(size, a_idx)
        b = Bitmask.from_indices(size, b_idx)
        a.or_with(b)
        expected = np.asarray(sorted(set(a_idx) | set(b_idx)), dtype=np.int64)
        np.testing.assert_array_equal(a.to_indices(), expected)

    @given(
        size=st.integers(min_value=1, max_value=200),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_and_not_is_set_difference(self, size, data):
        a_idx = data.draw(st.lists(st.integers(0, size - 1), max_size=50))
        b_idx = data.draw(st.lists(st.integers(0, size - 1), max_size=50))
        a = Bitmask.from_indices(size, a_idx)
        b = Bitmask.from_indices(size, b_idx)
        expected = np.asarray(sorted(set(a_idx) - set(b_idx)), dtype=np.int64)
        np.testing.assert_array_equal(a.difference_indices(b), expected)
