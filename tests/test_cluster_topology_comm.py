"""Tests for cluster topology and the buffer-moving communicator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.comm import Communicator
from repro.cluster.netmodel import NetworkModel
from repro.cluster.topology import ClusterTopology
from repro.partition.layout import ClusterLayout
from repro.utils.bitmask import Bitmask


@pytest.fixture()
def topo_2x2():
    return ClusterTopology(ClusterLayout(num_ranks=2, gpus_per_rank=2))


@pytest.fixture()
def comm_2x2(topo_2x2):
    return Communicator(topo_2x2, NetworkModel())


class TestTopology:
    def test_rank_and_node_of_gpu(self):
        topo = ClusterTopology(ClusterLayout(num_ranks=4, gpus_per_rank=2, num_nodes=2))
        np.testing.assert_array_equal(topo.rank_of_gpu(np.arange(8)), [0, 0, 1, 1, 2, 2, 3, 3])
        np.testing.assert_array_equal(topo.node_of_gpu(np.arange(8)), [0, 0, 0, 0, 1, 1, 1, 1])

    def test_same_rank_and_same_node(self):
        topo = ClusterTopology(ClusterLayout(num_ranks=4, gpus_per_rank=2, num_nodes=2))
        assert topo.same_rank(0, 1)
        assert not topo.same_rank(1, 2)
        assert topo.same_node(1, 2)
        assert not topo.same_node(3, 4)

    def test_gpus_in_rank_and_root(self, topo_2x2):
        np.testing.assert_array_equal(topo_2x2.gpus_in_rank(1), [2, 3])
        assert topo_2x2.root_gpu_of_rank(1) == 2
        with pytest.raises(ValueError):
            topo_2x2.gpus_in_rank(5)

    def test_peer_group(self, topo_2x2):
        np.testing.assert_array_equal(topo_2x2.peer_group_of_gpu(0), [0, 2])
        np.testing.assert_array_equal(topo_2x2.peer_group_of_gpu(3), [1, 3])


class TestDelegateMaskReduce:
    def test_merged_mask_is_union(self, comm_2x2):
        masks = [
            Bitmask.from_indices(20, [1]),
            Bitmask.from_indices(20, [2, 3]),
            Bitmask.from_indices(20, []),
            Bitmask.from_indices(20, [3, 19]),
        ]
        result = comm_2x2.allreduce_delegate_masks(masks)
        np.testing.assert_array_equal(result.merged.to_indices(), [1, 2, 3, 19])
        assert result.global_bytes > 0
        assert comm_2x2.stats.delegate_reductions == 1

    def test_wrong_mask_count_rejected(self, comm_2x2):
        with pytest.raises(ValueError):
            comm_2x2.allreduce_delegate_masks([Bitmask(8)])

    def test_size_mismatch_rejected(self, comm_2x2):
        with pytest.raises(ValueError):
            comm_2x2.allreduce_delegate_masks(
                [Bitmask(8), Bitmask(8), Bitmask(8), Bitmask(16)]
            )

    def test_single_rank_has_no_global_bytes(self):
        topo = ClusterTopology(ClusterLayout(num_ranks=1, gpus_per_rank=4))
        comm = Communicator(topo, NetworkModel())
        result = comm.allreduce_delegate_masks([Bitmask.from_indices(8, [1])] * 4)
        assert result.global_bytes == 0
        assert result.global_time_s == 0.0
        assert result.local_time_s > 0.0

    def test_blocking_faster_than_nonblocking(self, comm_2x2):
        masks = [Bitmask.from_indices(1 << 16, [5])] * 4
        blocking = comm_2x2.allreduce_delegate_masks(masks, blocking=True)
        nonblocking = comm_2x2.allreduce_delegate_masks(masks, blocking=False)
        assert nonblocking.global_time_s > blocking.global_time_s


class TestNormalExchange:
    def test_vertices_arrive_at_owner_as_local_slots(self, comm_2x2, topo_2x2):
        layout = topo_2x2.layout
        # GPU 0 discovered global vertices 0..7; they must be routed to their
        # owners and converted to local slots (v // p).
        outboxes = [np.arange(8, dtype=np.int64)] + [np.zeros(0, dtype=np.int64)] * 3
        result = comm_2x2.exchange_normals(outboxes)
        for dst in range(4):
            expected_globals = np.asarray(
                [v for v in range(8) if layout.flat_gpu_of(v) == dst], dtype=np.int64
            )
            np.testing.assert_array_equal(
                np.sort(result.inboxes[dst]), np.sort(layout.local_index_of(expected_globals))
            )

    def test_self_delivery_costs_no_remote_bytes(self, comm_2x2, topo_2x2):
        layout = topo_2x2.layout
        own = layout.owned_vertices(2, 100)[:5]
        outboxes = [np.zeros(0, dtype=np.int64)] * 4
        outboxes[2] = own
        result = comm_2x2.exchange_normals(outboxes)
        assert result.remote_bytes == 0
        assert result.inboxes[2].size == 5

    def test_duplicates_kept_without_uniquify(self, comm_2x2):
        outboxes = [np.asarray([1, 1, 1, 1], dtype=np.int64)] + [np.zeros(0, dtype=np.int64)] * 3
        result = comm_2x2.exchange_normals(outboxes, local_all2all=False, uniquify=False)
        total = sum(box.size for box in result.inboxes)
        assert total == 4

    def test_uniquify_removes_duplicates(self, comm_2x2):
        outboxes = [np.asarray([1, 1, 1, 1], dtype=np.int64)] + [np.zeros(0, dtype=np.int64)] * 3
        result = comm_2x2.exchange_normals(outboxes, local_all2all=True, uniquify=True)
        total = sum(box.size for box in result.inboxes)
        assert total == 1
        assert comm_2x2.stats.normal_vertices_deduplicated == 3

    def test_local_all2all_reduces_remote_pairs(self):
        """With local-all2all, remote messages only flow between same-index GPUs."""
        layout = ClusterLayout(num_ranks=2, gpus_per_rank=2)
        topo = ClusterTopology(layout)
        rng = np.random.default_rng(0)
        outboxes = [rng.integers(0, 1000, size=200).astype(np.int64) for _ in range(4)]

        plain = Communicator(topo, NetworkModel())
        plain.exchange_normals([o.copy() for o in outboxes], local_all2all=False)
        grouped = Communicator(topo, NetworkModel())
        grouped.exchange_normals([o.copy() for o in outboxes], local_all2all=True)
        # The same remote payload flows either way...
        assert grouped.stats.normal_bytes_remote == plain.stats.normal_bytes_remote
        # ...but local-all2all sends strictly fewer remote messages and moves
        # some bytes over NVLink instead.
        assert grouped.stats.normal_messages <= plain.stats.normal_messages
        assert grouped.stats.normal_bytes_local >= plain.stats.normal_bytes_local

    def test_delivery_identical_with_and_without_local_all2all(self):
        layout = ClusterLayout(num_ranks=3, gpus_per_rank=2)
        topo = ClusterTopology(layout)
        rng = np.random.default_rng(1)
        outboxes = [rng.integers(0, 500, size=100).astype(np.int64) for _ in range(6)]
        a = Communicator(topo, NetworkModel()).exchange_normals(
            [o.copy() for o in outboxes], local_all2all=False
        )
        b = Communicator(topo, NetworkModel()).exchange_normals(
            [o.copy() for o in outboxes], local_all2all=True
        )
        for x, y in zip(a.inboxes, b.inboxes):
            np.testing.assert_array_equal(np.sort(x), np.sort(y))

    def test_wrong_outbox_count_rejected(self, comm_2x2):
        with pytest.raises(ValueError):
            comm_2x2.exchange_normals([np.zeros(0, dtype=np.int64)] * 3)

    def test_stats_accumulate_bytes(self, comm_2x2):
        outboxes = [np.arange(50, dtype=np.int64) for _ in range(4)]
        comm_2x2.exchange_normals(outboxes)
        stats = comm_2x2.stats.as_dict()
        assert stats["normal_vertices_sent"] > 0
        assert stats["normal_bytes_remote"] > 0
        assert comm_2x2.stats.total_bytes() >= stats["normal_bytes_remote"]
