"""Tests for the fluent session facade and the campaign aggregation."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.baselines.serial_bfs import serial_bfs
from repro.core.campaign import Campaign, run_campaign
from repro.core.engine import DistributedBFS, TraversalEngine
from repro.core.programs import BFSLevels, BFSParents
from repro.graph.csr import CSRGraph
from repro.partition.subgraphs import build_partitions


class TestSessionBuilder:
    def test_issue_style_one_liner(self, rmat_small):
        result = (
            repro.session(layout="4x1x2")
            .load(rmat_small)
            .threshold(repro.auto)
            .run(BFSLevels(source=0))
        )
        reference = serial_bfs(CSRGraph.from_edgelist(rmat_small), 0)
        np.testing.assert_array_equal(result.distances, reference)

    def test_generate_and_build(self):
        graph = repro.session(layout="2x1x2").generate(scale=9, seed=3).build()
        assert graph.graph.num_vertices == 512
        assert graph.engine.graph is graph.graph

    def test_load_from_npz_path(self, rmat_small, tmp_path):
        from repro.graph.io import save_npz

        path = tmp_path / "g.npz"
        save_npz(path, rmat_small)
        graph = repro.session(layout="2x1x2").load(path).threshold(32).build()
        assert graph.graph.num_vertices == rmat_small.num_vertices

    def test_explicit_threshold_respected(self, rmat_small):
        graph = repro.session(layout="2x1x2").load(rmat_small).threshold(17).build()
        assert graph.graph.threshold == 17

    def test_build_is_cached_and_invalidated(self, rmat_small):
        sess = repro.session(layout="2x1x2").load(rmat_small).threshold(32)
        first = sess.build()
        assert sess.build() is first
        sess.threshold(64)
        second = sess.build()
        assert second is not first
        assert second.graph.threshold == 64

    def test_options_keywords(self, rmat_small):
        sess = repro.session(layout="2x1x2").load(rmat_small).options(uniquify=True, local_all2all=True)
        assert sess.build().engine.options.uniquify

    def test_options_object_and_keywords_conflict(self, rmat_small):
        from repro.core.options import BFSOptions

        with pytest.raises(ValueError):
            repro.session().options(BFSOptions(), uniquify=True)

    def test_run_without_graph_raises(self):
        with pytest.raises(RuntimeError):
            repro.session().run(BFSLevels(source=0))

    def test_bad_load_type_raises(self):
        with pytest.raises(TypeError):
            repro.session().load(42)

    def test_bad_threshold_raises(self):
        with pytest.raises(ValueError):
            repro.session().threshold(0)


class TestGraphSessionShorthands:
    @pytest.fixture(scope="class")
    def graph(self, rmat_small):
        return repro.session(layout="2x1x2").load(rmat_small).threshold(32).build()

    def test_bfs_shorthand(self, graph, rmat_small):
        result = graph.bfs(source=3)
        reference = serial_bfs(CSRGraph.from_edgelist(rmat_small), 3)
        np.testing.assert_array_equal(result.distances, reference)

    def test_parents_shorthand(self, graph, rmat_small):
        from repro.validate.graph500 import validate_parent_tree

        reference = serial_bfs(CSRGraph.from_edgelist(rmat_small), 3)
        result = graph.parents(source=3)
        validate_parent_tree(rmat_small, 3, result.parents, reference).raise_if_invalid()

    def test_components_shorthand(self, graph, rmat_small):
        from repro.baselines.union_find import serial_components

        result = graph.components()
        np.testing.assert_array_equal(result.labels, serial_components(rmat_small))

    def test_khop_shorthand(self, graph, rmat_small):
        reference = serial_bfs(CSRGraph.from_edgelist(rmat_small), 3)
        result = graph.khop(source=3, max_hops=2)
        expected = np.where((reference >= 0) & (reference <= 2), reference, -1)
        np.testing.assert_array_equal(result.distances, expected)

    def test_session_level_shorthands_build_implicitly(self, rmat_small):
        sess = repro.session(layout="2x1x2").load(rmat_small).threshold(32)
        assert sess.bfs(source=3).num_visited > 1
        assert sess.components().num_components >= 1
        assert sess.parents(source=3).parents[3] == 3
        assert sess.khop(source=3, max_hops=1).num_reached >= 1
        assert len(sess.campaign(sources=[0, 3])) == 2

    def test_campaign_with_random_sources(self, graph):
        campaign = graph.campaign(sources=4, seed=7)
        assert len(campaign) == 4
        assert len(campaign.reported) + len(campaign.skipped) == 4

    def test_campaign_with_program_factory(self, graph):
        campaign = graph.campaign(
            sources=[0, 3], program_factory=lambda s: BFSParents(source=s)
        )
        assert all(r.algorithm == "bfs-parents" for r in campaign)


class TestCampaign:
    @pytest.fixture(scope="class")
    def engine(self, rmat_small, small_layout):
        return TraversalEngine(build_partitions(rmat_small, small_layout, 32))

    def test_sequence_protocol(self, engine):
        campaign = run_campaign(engine, [0, 1, 2])
        assert len(campaign) == 3
        assert [r.source for r in campaign] == [0, 1, 2]
        assert campaign[1].source == 1
        assert isinstance(campaign[:2], list)

    def test_run_many_returns_campaign(self, rmat_small, small_layout):
        graph = build_partitions(rmat_small, small_layout, 32)
        campaign = DistributedBFS(graph).run_many([0, 1, 2])
        assert isinstance(campaign, Campaign)
        assert len(campaign) == 3

    def test_skips_single_iteration_runs(self, rmat_small, small_layout):
        from repro.graph.degree import out_degrees

        isolated = np.flatnonzero(out_degrees(rmat_small) == 0)
        if isolated.size == 0:
            pytest.skip("fixture graph has no isolated vertices")
        graph = build_partitions(rmat_small, small_layout, 32)
        campaign = DistributedBFS(graph).run_many([int(isolated[0]), 3])
        assert len(campaign.skipped) == 1
        assert len(campaign.reported) == 1
        assert campaign.summary()["skipped"] == 1

    def test_geo_mean_matches_manual(self, engine):
        from repro.utils.stats import geometric_mean

        campaign = run_campaign(engine, [0, 3, 7])
        expected = geometric_mean([r.gteps() for r in campaign.reported])
        assert campaign.geo_mean_gteps() == pytest.approx(expected)
        assert campaign.geo_mean_elapsed_ms() > 0

    def test_geo_mean_raises_when_all_skipped(self, rmat_small, small_layout):
        from repro.graph.degree import out_degrees

        isolated = np.flatnonzero(out_degrees(rmat_small) == 0)
        if isolated.size == 0:
            pytest.skip("fixture graph has no isolated vertices")
        graph = build_partitions(rmat_small, small_layout, 32)
        campaign = DistributedBFS(graph).run_many([int(isolated[0])])
        with pytest.raises(ValueError):
            campaign.geo_mean_gteps()
        assert "geo_mean_gteps" not in campaign.summary()

    def test_validate_callback_aborts(self, engine):
        def explode(result):
            raise AssertionError("boom")

        with pytest.raises(AssertionError):
            run_campaign(engine, [3], validate=explode)

    def test_on_result_callback_sees_every_run(self, engine):
        seen = []
        run_campaign(engine, [0, 3], on_result=lambda r: seen.append(r.source))
        assert seen == [0, 3]


class TestEngineRunMany:
    def test_run_many_programs(self, rmat_small, small_layout):
        engine = TraversalEngine(build_partitions(rmat_small, small_layout, 32))
        campaign = engine.run_many([BFSLevels(source=0), BFSParents(source=0)])
        assert len(campaign) == 2
        assert campaign[0].algorithm == "bfs"
        assert campaign[1].algorithm == "bfs-parents"
