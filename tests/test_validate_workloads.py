"""Tests for the Graph500-style validator and the workload registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.serial_bfs import serial_bfs
from repro.graph.csr import CSRGraph
from repro.graph.generators import path_edges
from repro.validate.graph500 import validate_distances
from repro.workloads.specs import (
    EXPERIMENTS,
    SCALE_OFFSET,
    WorkloadSpec,
    build_workload,
    scaled_down_scale,
)


class TestValidator:
    def test_accepts_correct_distances(self, rmat_small, rmat_small_csr):
        dist = serial_bfs(rmat_small_csr, 4)
        report = validate_distances(rmat_small, 4, dist)
        assert report.valid
        assert report.num_visited == int(np.count_nonzero(dist >= 0))
        report.raise_if_invalid()  # must not raise

    def test_rejects_wrong_source_level(self, rmat_small, rmat_small_csr):
        dist = serial_bfs(rmat_small_csr, 4).copy()
        dist[4] = 1
        report = validate_distances(rmat_small, 4, dist)
        assert not report.valid
        with pytest.raises(AssertionError):
            report.raise_if_invalid()

    def test_rejects_level_skip(self, path_graph):
        dist = serial_bfs(CSRGraph.from_edgelist(path_graph), 0).copy()
        dist[10] = 99  # breaks the edge condition around vertex 10
        report = validate_distances(path_graph, 0, dist)
        assert not report.valid
        assert any("spans levels" in e or "in-neighbour" in e for e in report.errors)

    def test_rejects_missing_parent(self, rmat_small, rmat_small_csr):
        dist = serial_bfs(rmat_small_csr, 4).copy()
        visited = np.flatnonzero(dist > 0)
        dist[visited[0]] = dist.max() + 1
        report = validate_distances(rmat_small, 4, dist)
        assert not report.valid

    def test_rejects_unvisited_neighbor_of_visited(self, path_graph):
        dist = serial_bfs(CSRGraph.from_edgelist(path_graph), 0).copy()
        dist[dist >= 25] = -1  # truncate the traversal artificially
        report = validate_distances(path_graph, 0, dist)
        assert not report.valid
        assert any("connects visited and unvisited" in e for e in report.errors)

    def test_rejects_reference_mismatch(self, rmat_small, rmat_small_csr):
        dist = serial_bfs(rmat_small_csr, 4)
        ref = dist.copy()
        ref[ref >= 0] += 0  # identical
        ok = validate_distances(rmat_small, 4, dist, reference=ref)
        assert ok.valid
        ref2 = dist.copy()
        changed = np.flatnonzero(ref2 > 0)[0]
        ref2[changed] += 1
        bad = validate_distances(rmat_small, 4, dist, reference=ref2)
        assert not bad.valid

    def test_rejects_wrong_shape(self, rmat_small):
        report = validate_distances(rmat_small, 0, np.zeros(3, dtype=np.int64))
        assert not report.valid

    def test_multiple_zero_distances_rejected(self, path_graph):
        dist = serial_bfs(CSRGraph.from_edgelist(path_graph), 0).copy()
        dist[1] = 0
        report = validate_distances(path_graph, 0, dist)
        assert not report.valid


class TestWorkloads:
    def test_scaled_down_scale(self):
        assert scaled_down_scale(26) == 26 - SCALE_OFFSET
        assert scaled_down_scale(5) == 10  # floor at 10

    def test_registry_covers_all_paper_experiments(self):
        expected = {
            "fig1",
            "table1",
            "network",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "table2",
            "fig12",
            "fig13",
            "wdc",
            "factors",
            "commmodel",
        }
        assert expected == set(EXPERIMENTS)
        for spec in EXPERIMENTS.values():
            assert spec.bench_module.startswith("benchmarks/")
            assert spec.paper_reference

    def test_workload_layouts_parse(self):
        for spec in EXPERIMENTS.values():
            for workload in spec.workloads:
                layout = workload.layout()
                assert layout.num_gpus >= 1

    def test_build_workload_rmat(self):
        edges = build_workload(WorkloadSpec("t", "rmat", 10, "1x1x2"))
        assert edges.num_vertices == 1024
        assert edges.is_symmetric()

    def test_build_workload_friendster_and_wdc(self):
        fr = build_workload(WorkloadSpec("t", "friendster", 11, "1x1x2"))
        assert fr.num_vertices == 2048
        wdc = build_workload(WorkloadSpec("t", "wdc", 11, "1x1x2"))
        assert wdc.num_vertices == 2048

    def test_build_workload_unknown_kind(self):
        with pytest.raises(ValueError):
            build_workload(WorkloadSpec("t", "mystery", 10, "1x1x1"))
