"""Tests for the replicated serving tier (repro.serve.cluster)."""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.bench import Scenario, run_scenario
from repro.core.engine import TraversalEngine
from repro.core.programs import BFSLevels
from repro.dynamic import DynamicGraph
from repro.dynamic.delta import update_stream
from repro.graph.degree import out_degrees
from repro.partition.subgraphs import build_partitions
from repro.serve import Query, ZipfWorkload
from repro.serve.cluster import (
    BurstyArrivals,
    ClusterConfig,
    ClusterDispatcher,
    DiurnalArrivals,
    LatencyHistogram,
    OpenLoopWorkload,
    PoissonArrivals,
    ReplicaPool,
    TimedQuery,
    TimedUpdate,
    make_arrivals,
    run_on_virtual_clock,
)
from repro.serve.cluster.virtualtime import VirtualClockEventLoop, virtual_sleep


# --------------------------------------------------------------------------- #
# Latency histogram
# --------------------------------------------------------------------------- #
class TestLatencyHistogram:
    def test_empty_snapshot_is_all_zero(self):
        snap = LatencyHistogram().snapshot()
        assert snap["count"] == 0 and snap["mean_ms"] == 0.0
        assert snap["p50_ms"] == 0.0 and snap["p99_ms"] == 0.0
        assert snap["buckets"] == {}

    def test_nearest_rank_quantiles_are_observed_samples(self):
        hist = LatencyHistogram()
        samples = [5.0, 1.0, 3.0, 2.0, 4.0]
        for s in samples:
            hist.record(s)
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(0.5) == 3.0
        assert hist.quantile(1.0) == 5.0
        # Every quantile is one of the recorded values, never interpolated.
        for q in np.linspace(0, 1, 21):
            assert hist.quantile(float(q)) in samples

    def test_slo_violations_counted_strictly_above(self):
        hist = LatencyHistogram(slo_ms=10.0)
        for s in (9.0, 10.0, 10.1, 50.0):
            hist.record(s)
        assert hist.slo_violations == 2
        assert LatencyHistogram().slo_violations == 0

    def test_mean_max_and_bucket_totals(self):
        hist = LatencyHistogram()
        for s in (0.05, 1.0, 2.0, 9.0):
            hist.record(s)
        assert hist.mean == pytest.approx(3.0125)
        assert hist.max == 9.0
        assert sum(hist.buckets().values()) == 4

    def test_validation(self):
        with pytest.raises(ValueError, match="slo_ms"):
            LatencyHistogram(slo_ms=0.0)
        hist = LatencyHistogram()
        with pytest.raises(ValueError, match="non-negative"):
            hist.record(-1.0)
        with pytest.raises(ValueError, match="quantile"):
            hist.quantile(1.5)

    def test_snapshot_json_stable(self):
        hist = LatencyHistogram(slo_ms=5.0)
        for s in (0.2, 3.0, 7.0):
            hist.record(s)
        assert json.loads(json.dumps(hist.snapshot())) == hist.snapshot()


# --------------------------------------------------------------------------- #
# Virtual clock
# --------------------------------------------------------------------------- #
class TestVirtualClock:
    def test_sleeps_advance_time_without_waiting(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            start = loop.time()
            await virtual_sleep(60_000.0)  # one simulated minute
            return loop.time() - start

        assert run_on_virtual_clock(scenario()) == pytest.approx(60_000.0)

    def test_concurrent_timers_fire_in_timestamp_order(self):
        order: list[str] = []

        async def tick(name: str, delay: float):
            await virtual_sleep(delay)
            order.append(name)

        async def scenario():
            await asyncio.gather(tick("c", 30), tick("a", 10), tick("b", 20))

        run_on_virtual_clock(scenario())
        assert order == ["a", "b", "c"]

    def test_deadlock_raises_instead_of_hanging(self):
        async def scenario():
            await asyncio.get_running_loop().create_future()  # never resolves

        with pytest.raises(RuntimeError, match="virtual clock deadlock"):
            run_on_virtual_clock(scenario())

    def test_cancelled_timer_does_not_steer_the_clock(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            task = loop.create_task(virtual_sleep(5_000.0))
            await virtual_sleep(1.0)
            task.cancel()
            await virtual_sleep(2.0)
            return loop.time()

        assert run_on_virtual_clock(scenario()) == pytest.approx(3.0)

    def test_clock_never_moves_backwards(self):
        loop = VirtualClockEventLoop()
        try:
            loop.advance_to(10.0)
            loop.advance_to(5.0)
            assert loop.time() == 10.0
        finally:
            loop.close()


# --------------------------------------------------------------------------- #
# Arrival processes
# --------------------------------------------------------------------------- #
class TestArrivals:
    def test_streams_deterministic_and_monotone(self):
        for proc in (
            PoissonArrivals(rate_qps=800.0, seed=5),
            BurstyArrivals(rate_qps=800.0, period_ms=100.0, duty=0.5, seed=5),
            DiurnalArrivals(rate_qps=800.0, period_ms=400.0, amplitude=0.9, seed=5),
        ):
            first, second = proc.times(256), proc.times(256)
            np.testing.assert_array_equal(first, second)
            assert np.all(np.diff(first) >= 0)
            assert first[0] >= 0

    def test_poisson_long_run_rate_matches_offered(self):
        times = PoissonArrivals(rate_qps=1000.0, seed=3).times(4096)
        achieved = 4096 / (times[-1] / 1000.0)
        assert achieved == pytest.approx(1000.0, rel=0.1)

    def test_bursty_arrivals_confined_to_on_window(self):
        proc = BurstyArrivals(rate_qps=500.0, period_ms=200.0, duty=0.25, seed=7)
        phase = proc.times(2048) % 200.0
        # All mass lands inside the first duty fraction of each cycle.
        assert np.all(phase <= 200.0 * 0.25 + 1e-9)

    def test_diurnal_inverse_is_exact(self):
        proc = DiurnalArrivals(rate_qps=500.0, period_ms=300.0, amplitude=0.8, seed=9)
        times = proc.times(512)
        # Λ(Λ⁻¹(T)) == T: the bisected inverse round-trips the unit stream.
        rate_per_ms = 0.5
        from repro.serve.cluster.openloop import _unit_poisson

        np.testing.assert_allclose(
            proc._integrated(times, rate_per_ms), _unit_poisson(512, 9), rtol=1e-9
        )

    def test_make_arrivals_dispatch_and_validation(self):
        assert isinstance(make_arrivals("poisson", 100.0), PoissonArrivals)
        assert make_arrivals("bursty", 100.0, period_ms=50.0).period_ms == 50.0
        assert make_arrivals("diurnal", 100.0).period_ms == 1000.0
        with pytest.raises(ValueError, match="unknown arrival kind"):
            make_arrivals("lognormal", 100.0)
        with pytest.raises(ValueError, match="rate must be positive"):
            PoissonArrivals(rate_qps=0.0)
        with pytest.raises(ValueError, match="duty"):
            BurstyArrivals(duty=0.0)
        with pytest.raises(ValueError, match="amplitude"):
            DiurnalArrivals(amplitude=1.5)


# --------------------------------------------------------------------------- #
# Open-loop workload
# --------------------------------------------------------------------------- #
class TestOpenLoopWorkload:
    def test_stream_pinned_and_replay_ordered(self):
        spec = OpenLoopWorkload(
            queries=ZipfWorkload(num_queries=64, skew=1.0, pool=16, seed=7),
            arrivals=PoissonArrivals(rate_qps=500.0, seed=13),
        )
        first, second = spec.generate(1024), spec.generate(1024)
        assert first == second
        assert all(isinstance(item, TimedQuery) for item in first)
        at = [item.at_ms for item in first]
        assert at == sorted(at)
        assert [item.index for item in first] == list(range(64))

    def test_updates_spliced_evenly_and_timed_at_next_query(self, rmat_small):
        spec = OpenLoopWorkload(
            queries=ZipfWorkload(num_queries=40, pool=8, seed=3),
            arrivals=PoissonArrivals(rate_qps=500.0, seed=3),
            num_updates=3,
            edges_per_update=32,
        )
        stream = spec.generate(rmat_small.num_vertices, edges=rmat_small)
        updates = [item for item in stream if isinstance(item, TimedUpdate)]
        assert len(updates) == 3
        assert [u.index for u in updates] == [0, 1, 2]
        at = [item.at_ms for item in stream]
        assert at == sorted(at)  # still one totally ordered replay
        for pos, item in enumerate(stream):
            if isinstance(item, TimedUpdate):
                follower = stream[pos + 1]
                assert isinstance(follower, (TimedQuery, TimedUpdate))
                assert item.at_ms == follower.at_ms

    def test_updates_require_edges(self):
        spec = OpenLoopWorkload(num_updates=1)
        with pytest.raises(ValueError, match="requires the prepared edge list"):
            spec.generate(64)

    def test_validation_and_describe(self):
        with pytest.raises(ValueError, match="num_updates"):
            OpenLoopWorkload(num_updates=-1)
        with pytest.raises(ValueError, match="edges_per_update"):
            OpenLoopWorkload(edges_per_update=0)
        desc = OpenLoopWorkload().describe()
        assert json.loads(json.dumps(desc)) == desc
        assert desc["arrivals"]["kind"] == "poisson"


# --------------------------------------------------------------------------- #
# Replica pool
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def cluster_graph(rmat_small, small_layout):
    return build_partitions(rmat_small, small_layout, threshold=16)


def open_stream(rmat_small, n=96, rate=2000.0, **kwargs):
    spec = OpenLoopWorkload(
        queries=ZipfWorkload(num_queries=n, skew=1.0, pool=24, seed=11),
        arrivals=BurstyArrivals(rate_qps=rate, period_ms=50.0, duty=0.25, seed=17),
        **kwargs,
    )
    return spec.generate(
        rmat_small.num_vertices,
        degrees=out_degrees(rmat_small),
        edges=rmat_small if kwargs.get("num_updates") else None,
    )


class TestReplicaPool:
    def test_frozen_replicas_share_one_backend(self, cluster_graph):
        with ReplicaPool(cluster_graph, 3) as pool:
            assert len(pool) == 3
            backends = {id(r.service.engine.backend) for r in pool}
            assert len(backends) == 1
            assert pool.backend_name == pool[0].service.engine.backend_name
            assert pool.graph_version() == 0

    def test_frozen_pool_rejects_deltas(self, cluster_graph, rmat_small):
        delta = update_stream(rmat_small, num_batches=1, edges_per_batch=8, seed=5)[0]
        with ReplicaPool(cluster_graph, 2) as pool:
            with pytest.raises(TypeError, match="frozen"):
                pool.apply_delta(delta)

    def test_dynamic_fanout_converges_all_replicas(
        self, rmat_small, small_layout, cluster_graph
    ):
        dyn = DynamicGraph(rmat_small, small_layout, 16, partitioned=cluster_graph)
        delta = update_stream(rmat_small, num_batches=1, edges_per_batch=16, seed=5)[0]
        with ReplicaPool(dyn, 3) as pool:
            for replica in pool:  # warm every per-replica cache
                replica.service.query(Query("levels", 0))
            pool.apply_delta(delta)
            assert pool.graph_version() == 1
            for replica in pool:
                stats = replica.service.stats
                assert stats.epoch_bumps == 1
                assert stats.entries_invalidated == 1
            # Exactly one replica applied; the rest only bumped their epoch.
            assert sum(r.service.stats.updates for r in pool) == 1

    def test_replica_count_validated(self, cluster_graph):
        with pytest.raises(ValueError, match="num_replicas"):
            ReplicaPool(cluster_graph, 0)

    def test_hedge_probe_bypasses_cache(self, cluster_graph):
        with ReplicaPool(cluster_graph, 2) as pool:
            replica = pool[0]
            result, service_ms = replica.probe_hedge(Query("levels", 5))
            assert service_ms > 0
            assert replica.service.cache.stats.lookups == 0
            assert replica.service.stats.queries == 0
            np.testing.assert_array_equal(
                result.distances,
                replica.service.engine.run(BFSLevels(source=5)).distances,
            )


# --------------------------------------------------------------------------- #
# Cluster dispatcher
# --------------------------------------------------------------------------- #
class TestClusterDispatcher:
    def test_replay_bit_deterministic(self, cluster_graph, rmat_small):
        stream = open_stream(rmat_small)
        snaps = []
        for _ in range(2):
            with ReplicaPool(cluster_graph, 3, cache_size=32) as pool:
                snaps.append(
                    ClusterDispatcher(pool, ClusterConfig(queue_limit=16)).run(stream)
                )
        assert snaps[0] == snaps[1]

    def test_gated_counters_mode_independent(self, cluster_graph, rmat_small):
        stream = open_stream(rmat_small)

        def replay(**config):
            with ReplicaPool(cluster_graph, 3, cache_size=32) as pool:
                cfg = ClusterConfig(queue_limit=16, hedge_min_samples=8, **config)
                return ClusterDispatcher(pool, cfg).run(stream)

        hedged = replay(hedge=True)
        unhedged = replay(hedge=False)
        assert hedged["counters"] == unhedged["counters"]
        assert hedged["counters"]["arrivals"] == 96
        assert hedged["counters"]["answers_checksum"] != 0
        assert unhedged["cluster"]["hedges_issued"] == 0

    def test_answers_independent_of_replica_count_and_router(
        self, cluster_graph, rmat_small
    ):
        stream = open_stream(rmat_small)
        checksums = set()
        for replicas, router in ((1, "affinity"), (3, "affinity"), (3, "least-queue")):
            with ReplicaPool(cluster_graph, replicas, cache_size=32) as pool:
                cfg = ClusterConfig(queue_limit=0, hedge=False, router=router)
                snap = ClusterDispatcher(pool, cfg).run(stream)
            assert snap["counters"]["shed"] == 0  # unbounded queue admits all
            checksums.add(snap["counters"]["answers_checksum"])
        assert len(checksums) == 1

    def test_answers_match_direct_engine(self, cluster_graph, rmat_small):
        stream = open_stream(rmat_small, n=24)
        engine = TraversalEngine(cluster_graph)
        answered: dict[int, object] = {}
        with ReplicaPool(cluster_graph, 2, cache_size=16) as pool:
            cfg = ClusterConfig(queue_limit=0, hedge_min_samples=4)
            ClusterDispatcher(pool, cfg).run(
                stream, on_answer=lambda index, result: answered.setdefault(index, result)
            )
        assert sorted(answered) == list(range(24))
        for item in stream:
            expected = engine.run(BFSLevels(source=item.query.source))
            np.testing.assert_array_equal(
                answered[item.index].distances, expected.distances
            )

    def test_bounded_queue_sheds_and_counts(self, cluster_graph, rmat_small):
        stream = open_stream(rmat_small, rate=20000.0)  # far past capacity
        with ReplicaPool(cluster_graph, 2, cache_size=8) as pool:
            snap = ClusterDispatcher(pool, ClusterConfig(queue_limit=4)).run(stream)
        counters = snap["counters"]
        assert counters["shed"] > 0
        assert counters["admitted"] + counters["shed"] == counters["arrivals"]
        assert counters["inflight_peak"] <= 4
        assert snap["cluster"]["latency"]["count"] == counters["admitted"]

    def test_update_fanout_during_replay(self, cluster_graph, rmat_small, small_layout):
        stream = open_stream(rmat_small, num_updates=2, edges_per_update=16)
        dyn = DynamicGraph(rmat_small, small_layout, 16, partitioned=cluster_graph)
        with ReplicaPool(dyn, 3, cache_size=32) as pool:
            snap = ClusterDispatcher(pool, ClusterConfig(queue_limit=16)).run(stream)
            assert pool.graph_version() == 2
        counters = snap["counters"]
        assert counters["updates"] == 2
        assert counters["final_graph_version"] == 2

    def test_hedging_requires_two_replicas(self, cluster_graph):
        with ReplicaPool(cluster_graph, 1) as pool:
            with pytest.raises(ValueError, match="hedg"):
                ClusterDispatcher(pool, ClusterConfig(hedge=True))
            ClusterDispatcher(pool, ClusterConfig(hedge=False))  # fine

    def test_dispatcher_is_single_use(self, cluster_graph, rmat_small):
        stream = open_stream(rmat_small, n=8)
        with ReplicaPool(cluster_graph, 2) as pool:
            dispatcher = ClusterDispatcher(pool, ClusterConfig(hedge=False))
            dispatcher.run(stream)
            with pytest.raises(RuntimeError, match="exactly one stream"):
                dispatcher.run(stream)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="queue_limit"):
            ClusterConfig(queue_limit=-1)
        with pytest.raises(ValueError, match="hedge_quantile"):
            ClusterConfig(hedge_quantile=1.0)
        with pytest.raises(ValueError, match="router"):
            ClusterConfig(router="random")
        with pytest.raises(ValueError, match="slo_ms"):
            ClusterConfig(slo_ms=-5.0)

    def test_snapshot_json_stable(self, cluster_graph, rmat_small):
        stream = open_stream(rmat_small, n=32)
        with ReplicaPool(cluster_graph, 2, cache_size=16) as pool:
            snap = ClusterDispatcher(pool, ClusterConfig(slo_ms=10.0)).run(stream)
        assert json.loads(json.dumps(snap)) == snap
        lat = snap["cluster"]["latency"]
        assert {"p50_ms", "p95_ms", "p99_ms", "slo_violations"} <= set(lat)
        assert snap["cluster"]["virtual_makespan_ms"] > 0
        assert snap["cluster"]["achieved_qps"] > 0


# --------------------------------------------------------------------------- #
# Session facade
# --------------------------------------------------------------------------- #
class TestSessionFacade:
    def test_serve_cluster_round_trip(self, rmat_small):
        import repro

        sess = repro.session(layout="2x1x2").load(rmat_small).threshold(16)
        pool, dispatcher = sess.serve_cluster(2, slo_ms=25.0, queue_limit=0)
        stream = OpenLoopWorkload(
            queries=ZipfWorkload(num_queries=16, pool=8, seed=3)
        ).generate(rmat_small.num_vertices)
        with pool:
            snap = dispatcher.run(stream)
        assert snap["counters"]["admitted"] == 16
        assert snap["cluster"]["latency"]["slo_ms"] == 25.0

    def test_single_replica_never_hedges(self, rmat_small):
        import repro

        sess = repro.session(layout="2x1x2").load(rmat_small).threshold(16)
        pool, dispatcher = sess.serve_cluster(1)
        with pool:
            assert dispatcher.config.hedge is False


# --------------------------------------------------------------------------- #
# Bench scenarios
# --------------------------------------------------------------------------- #
def tiny_cluster_scenario(**overrides) -> Scenario:
    kwargs = dict(
        name="tiny-cluster",
        kind="rmat",
        scale=8,
        program="serve_cluster",
        layout="2x1x2",
        threshold=8,
        batch_size=8,
        zipf_skew=1.0,
        num_queries=48,
        pool=24,
        cache_size=16,
        arrivals="bursty",
        arrival_rate_qps=4000.0,
        burst_period_ms=50.0,
        num_replicas=2,
        queue_limit=8,
        hedge_min_samples=8,
        hedge_quantile=0.9,
        slo_ms=20.0,
        quick=True,
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


class TestClusterScenarios:
    def test_record_structure(self):
        record = run_scenario(tiny_cluster_scenario(), repeats=2)
        assert record["spec"]["program"] == "serve_cluster"
        assert record["spec"]["num_replicas"] == 2
        assert record["wall_s"]["traversal"] > 0
        assert record["modeled_ms"]["elapsed_ms"] > 0
        assert record["counters"]["answers_checksum"] != 0
        assert record["cluster"]["latency"]["count"] == record["counters"]["admitted"]
        assert json.loads(json.dumps(record)) == record

    def test_counters_mode_independent_and_spec_identical(self):
        hedged = run_scenario(tiny_cluster_scenario(), repeats=1)
        unhedged = run_scenario(
            tiny_cluster_scenario(), repeats=1, cluster_hedging=False
        )
        assert hedged["counters"] == unhedged["counters"]
        assert hedged["spec"] == unhedged["spec"]
        assert unhedged["cluster"]["hedges_issued"] == 0

    def test_counters_backend_independent(self):
        inline = run_scenario(tiny_cluster_scenario(), repeats=1)
        process = run_scenario(tiny_cluster_scenario(), repeats=1, backend="process")
        assert inline["counters"] == process["counters"]
        assert process["backend"] == "process"

    def test_update_scenario_converges_graph_version(self):
        record = run_scenario(
            tiny_cluster_scenario(cluster_updates=2, update_edges=32), repeats=1
        )
        assert record["counters"]["updates"] == 2
        assert record["counters"]["final_graph_version"] == 2
        assert record["spec"]["cluster_updates"] == 2

    def test_scenario_validation(self):
        with pytest.raises(ValueError, match="arrival kind"):
            tiny_cluster_scenario(arrivals="steady")
        with pytest.raises(ValueError, match="arrival_rate_qps"):
            tiny_cluster_scenario(arrival_rate_qps=0.0)
        with pytest.raises(ValueError, match="num_replicas"):
            tiny_cluster_scenario(num_replicas=0)
        with pytest.raises(ValueError, match="cluster_updates"):
            tiny_cluster_scenario(cluster_updates=-1)
        with pytest.raises(ValueError, match="not a cluster scenario"):
            Scenario("x", "rmat", 8, "levels").cluster_config()
