"""Tests for deterministic RNG and hashing helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.rng import (
    deterministic_hash_permutation,
    hash64,
    make_rng,
    random_sources,
    splitmix64,
)


class TestMakeRng:
    def test_none_seed_is_deterministic(self):
        a = make_rng(None).integers(0, 1000, 10)
        b = make_rng(None).integers(0, 1000, 10)
        np.testing.assert_array_equal(a, b)

    def test_same_seed_same_stream(self):
        np.testing.assert_array_equal(
            make_rng(42).integers(0, 1 << 30, 16), make_rng(42).integers(0, 1 << 30, 16)
        )

    def test_generator_passthrough(self):
        gen = np.random.default_rng(5)
        assert make_rng(gen) is gen


class TestHashing:
    def test_splitmix64_is_deterministic_and_spread(self):
        x = np.arange(1000, dtype=np.uint64)
        h1 = splitmix64(x)
        h2 = splitmix64(x)
        np.testing.assert_array_equal(h1, h2)
        # Consecutive integers should hash to well-spread values.
        assert np.unique(h1).size == 1000

    def test_hash64_seed_changes_output(self):
        x = np.arange(100, dtype=np.uint64)
        assert not np.array_equal(hash64(x, seed=1), hash64(x, seed=2))


class TestHashPermutation:
    def test_permutation_is_bijection(self):
        for n in [0, 1, 2, 17, 256, 1000]:
            perm = deterministic_hash_permutation(n, seed=3)
            assert perm.shape == (n,)
            if n:
                seen = np.zeros(n, dtype=bool)
                seen[perm] = True
                assert seen.all()

    def test_permutation_is_deterministic(self):
        np.testing.assert_array_equal(
            deterministic_hash_permutation(500, seed=7),
            deterministic_hash_permutation(500, seed=7),
        )

    def test_different_seeds_differ(self):
        assert not np.array_equal(
            deterministic_hash_permutation(500, seed=1),
            deterministic_hash_permutation(500, seed=2),
        )

    def test_permutation_actually_shuffles(self):
        perm = deterministic_hash_permutation(1000, seed=1)
        # Identity would have all fixed points; a hash permutation should not.
        assert np.count_nonzero(perm == np.arange(1000)) < 50

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            deterministic_hash_permutation(-1)

    @given(n=st.integers(min_value=1, max_value=2000), seed=st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_property_bijection(self, n, seed):
        perm = deterministic_hash_permutation(n, seed=seed)
        assert np.unique(perm).size == n
        assert perm.min() == 0 and perm.max() == n - 1


class TestRandomSources:
    def test_sources_in_range(self):
        src = random_sources(100, 50, rng=1)
        assert src.shape == (50,)
        assert src.min() >= 0 and src.max() < 100

    def test_degree_filter_excludes_isolated(self):
        degrees = np.zeros(100, dtype=np.int64)
        degrees[[3, 50, 99]] = 5
        src = random_sources(100, 200, rng=2, degrees=degrees)
        assert set(np.unique(src)).issubset({3, 50, 99})

    def test_all_isolated_raises(self):
        with pytest.raises(ValueError):
            random_sources(10, 5, degrees=np.zeros(10, dtype=np.int64))

    def test_empty_graph_raises(self):
        with pytest.raises(ValueError):
            random_sources(0, 5)

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            random_sources(10, -1)
