"""Tests for the EdgeList container and graph-preparation operations."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.edgelist import EdgeList
from repro.utils.rng import deterministic_hash_permutation


def small_edgelists():
    """Hypothesis strategy for small random edge lists."""
    return st.integers(min_value=1, max_value=40).flatmap(
        lambda n: st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=120,
        ).map(
            lambda pairs: EdgeList(
                np.asarray([p[0] for p in pairs], dtype=np.int64),
                np.asarray([p[1] for p in pairs], dtype=np.int64),
                n,
            )
        )
    )


class TestConstruction:
    def test_basic_fields(self):
        e = EdgeList([0, 1], [1, 2], 3)
        assert e.num_edges == 2
        assert e.num_vertices == 3
        assert e.nbytes_edge_list() == 32

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            EdgeList([0, 1], [1], 3)

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(ValueError):
            EdgeList([0], [5], 3)
        with pytest.raises(ValueError):
            EdgeList([-1], [0], 3)

    def test_isolated_vertices_allowed(self):
        e = EdgeList([0], [1], 10)
        assert e.num_vertices == 10

    def test_copy_is_deep(self):
        e = EdgeList([0, 1], [1, 0], 2)
        c = e.copy()
        c.src[0] = 1
        assert e.src[0] == 0


class TestSymmetrize:
    def test_symmetrized_doubles_edges(self):
        e = EdgeList([0, 1], [1, 2], 3)
        sym = e.symmetrized()
        assert sym.num_edges == 4
        assert sym.is_symmetric()

    def test_is_symmetric_detects_asymmetry(self):
        assert not EdgeList([0], [1], 2).is_symmetric()
        assert EdgeList([0, 1], [1, 0], 2).is_symmetric()

    @given(small_edgelists())
    @settings(max_examples=60, deadline=None)
    def test_property_symmetrized_is_symmetric(self, edges):
        assert edges.symmetrized().is_symmetric()


class TestDeduplicate:
    def test_removes_duplicates(self):
        e = EdgeList([0, 0, 0], [1, 1, 2], 3).deduplicated()
        assert e.num_edges == 2

    def test_preserves_distinct_edges(self):
        e = EdgeList([0, 1, 2], [1, 2, 0], 3).deduplicated()
        assert e.num_edges == 3

    @given(small_edgelists())
    @settings(max_examples=60, deadline=None)
    def test_property_dedup_matches_python_set(self, edges):
        dedup = edges.deduplicated()
        expected = {(int(s), int(d)) for s, d in zip(edges.src, edges.dst)}
        got = {(int(s), int(d)) for s, d in zip(dedup.src, dedup.dst)}
        assert got == expected
        assert dedup.num_edges == len(expected)


class TestSelfLoopsAndRelabel:
    def test_without_self_loops(self):
        e = EdgeList([0, 1, 2], [0, 2, 2], 3).without_self_loops()
        assert e.num_edges == 1
        assert (e.src[0], e.dst[0]) == (1, 2)

    def test_relabel_applies_permutation(self):
        e = EdgeList([0, 1], [1, 2], 3)
        perm = np.asarray([2, 0, 1])
        r = e.relabeled(perm)
        assert (r.src[0], r.dst[0]) == (2, 0)
        assert (r.src[1], r.dst[1]) == (0, 1)

    def test_relabel_rejects_non_bijection(self):
        e = EdgeList([0], [1], 3)
        with pytest.raises(ValueError):
            e.relabeled(np.asarray([0, 0, 1]))
        with pytest.raises(ValueError):
            e.relabeled(np.asarray([0, 1]))

    @given(small_edgelists(), st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_property_relabel_preserves_edge_count_and_degrees(self, edges, seed):
        perm = deterministic_hash_permutation(edges.num_vertices, seed=seed)
        r = edges.relabeled(perm)
        assert r.num_edges == edges.num_edges
        deg_before = np.bincount(edges.src, minlength=edges.num_vertices)
        deg_after = np.bincount(r.src, minlength=edges.num_vertices)
        np.testing.assert_array_equal(np.sort(deg_before), np.sort(deg_after))


class TestPrepared:
    def test_prepared_is_symmetric_dedup_no_loops(self):
        e = EdgeList([0, 0, 1, 2, 2], [0, 1, 2, 2, 1], 4)
        p = e.prepared(hash_seed=5)
        assert p.is_symmetric()
        assert np.all(p.src != p.dst)
        # no duplicates
        pairs = {(int(s), int(d)) for s, d in zip(p.src, p.dst)}
        assert len(pairs) == p.num_edges

    def test_prepared_without_hash_keeps_ids(self):
        e = EdgeList([0], [1], 5)
        p = e.prepared(hash_seed=None)
        assert {(int(s), int(d)) for s, d in zip(p.src, p.dst)} == {(0, 1), (1, 0)}

    @given(small_edgelists())
    @settings(max_examples=40, deadline=None)
    def test_property_prepared_invariants(self, edges):
        p = edges.prepared(hash_seed=3)
        assert p.is_symmetric()
        assert np.all(p.src != p.dst) or p.num_edges == 0
        pairs = {(int(s), int(d)) for s, d in zip(p.src, p.dst)}
        assert len(pairs) == p.num_edges
