"""Tests for the weighted program zoo (repro.weighted) and its integrations.

Covers the oracle property sweeps (delta-stepping vs Dijkstra, fixed-point
PageRank vs its serial replica), the cross-backend / cross-provider /
cross-storage invariance of every weighted answer, weight validation at the
data layer and the CLI, the weighted (v2) store manifest with its
backward-compatibility guarantees, incremental SSSP maintenance over
dynamic graphs, and the weighted bench scenarios.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.weighted import (
    dijkstra_sssp,
    pagerank_power,
    pagerank_reference_fixed,
    triangle_count_serial,
)
from repro.bench import Scenario, run_scenario
from repro.bench.runner import values_checksum
from repro.cli import main
from repro.core.engine import TraversalEngine
from repro.core.programs import ConnectedComponents
from repro.dynamic import DynamicEngine, DynamicGraph, EdgeDelta, MaintainedSSSP
from repro.graph.edgelist import EdgeList
from repro.graph.rmat import generate_rmat
from repro.graph.weights import edge_keyed_weights, validate_weights
from repro.partition.layout import ClusterLayout
from repro.partition.subgraphs import build_partitions
from repro.storage.segments import (
    SCHEMA_VERSION,
    SCHEMA_VERSION_WEIGHTED,
    load_graph_store,
    save_graph_store,
)
from repro.weighted import (
    BellmanFordSSSP,
    ComponentsHooking,
    DeltaSteppingSSSP,
    PageRank,
    TriangleCount,
)


def _has_numba() -> bool:
    try:
        import numba  # noqa: F401

        return True
    except ImportError:
        return False


PROVIDERS = ["numpy"] + (["numba"] if _has_numba() else [])


@pytest.fixture(scope="module")
def wedges() -> EdgeList:
    """A prepared scale-11 RMAT graph carrying deterministic edge weights."""
    return generate_rmat(11, rng=1, weights_seed=5)


@pytest.fixture(scope="module")
def wgraph(wedges):
    return build_partitions(wedges, ClusterLayout.from_notation("1x2x2"), 32)


SOURCE = 11


# --------------------------------------------------------------------------- #
# Oracle property sweeps
# --------------------------------------------------------------------------- #
class TestSSSPOracle:
    @pytest.mark.parametrize("delta", [1.0, "auto", float("inf")])
    @pytest.mark.parametrize("do", [True, False])
    def test_matches_dijkstra_across_delta_and_direction(self, wedges, wgraph, delta, do):
        from repro.core.options import BFSOptions

        engine = TraversalEngine(wgraph, options=BFSOptions(direction_optimized=do))
        result = engine.run(DeltaSteppingSSSP(SOURCE, delta=delta))
        reference = dijkstra_sssp(
            wedges.src, wedges.dst, wedges.weights, wedges.num_vertices, SOURCE
        )
        # Bit-identical, not approximately equal: both sides fold the same
        # float64 additions in nondecreasing-distance order.
        np.testing.assert_array_equal(result.distances, reference)

    def test_bellman_ford_same_bits_more_relaxations(self, wgraph):
        engine = TraversalEngine(wgraph)
        delta = engine.run(DeltaSteppingSSSP(SOURCE, delta="auto"))
        bf = engine.run(BellmanFordSSSP(SOURCE))
        np.testing.assert_array_equal(delta.dist_bits, bf.dist_bits)
        assert delta.total_edges_examined < bf.total_edges_examined

    @pytest.mark.parametrize("backend", ["inline", "thread", "process"])
    @pytest.mark.parametrize("kernels", PROVIDERS)
    def test_bits_invariant_across_backends_and_providers(
        self, wgraph, backend, kernels
    ):
        engine = TraversalEngine(wgraph, backend=backend, kernels=kernels)
        try:
            result = engine.run(DeltaSteppingSSSP(SOURCE, delta="auto"))
        finally:
            engine.close()
        baseline = TraversalEngine(wgraph).run(DeltaSteppingSSSP(SOURCE, delta="auto"))
        np.testing.assert_array_equal(result.dist_bits, baseline.dist_bits)
        assert result.total_edges_examined == baseline.total_edges_examined

    def test_unreached_vertices_hold_inf(self, wgraph):
        result = TraversalEngine(wgraph).run(DeltaSteppingSSSP(SOURCE))
        unreached = result.dist_bits == -1
        assert np.isinf(result.distances[unreached]).all()
        assert result.num_reached == int((~unreached).sum())

    def test_rejects_unweighted_graph(self, rmat_small, small_layout):
        graph = build_partitions(rmat_small, small_layout, 32)
        engine = TraversalEngine(graph)
        with pytest.raises(ValueError, match="weight"):
            engine.run(DeltaSteppingSSSP(0))

    def test_rejects_bad_delta(self):
        for bad in (0, -1.0, float("nan"), "fast"):
            with pytest.raises(ValueError, match="delta"):
                DeltaSteppingSSSP(0, delta=bad)


class TestPageRankOracle:
    def test_fixed_mode_is_integer_exact(self, wedges, wgraph):
        result = TraversalEngine(wgraph).run(PageRank(iterations=12))
        reference = pagerank_reference_fixed(
            wedges.src, wedges.dst, wedges.num_vertices, iterations=12
        )
        np.testing.assert_array_equal(result.ranks, reference)

    def test_push_mode_tracks_power_iteration(self, wedges, wgraph):
        result = TraversalEngine(wgraph).run(PageRank(mode="push"))
        reference = pagerank_power(
            wedges.src, wedges.dst, wedges.num_vertices, iterations=100
        )
        assert np.abs(result.ranks_float - reference).max() <= 1e-3

    def test_rank_mass_conserved(self, wgraph):
        result = TraversalEngine(wgraph).run(PageRank())
        # Fixed-point truncation sheds a little mass each iteration; the
        # answer is still exact (integer), just not a true probability sum.
        assert result.ranks_float.sum() == pytest.approx(1.0, abs=1e-4)

    @pytest.mark.parametrize("backend", ["inline", "thread", "process"])
    @pytest.mark.parametrize("kernels", PROVIDERS)
    def test_ranks_invariant_across_backends_and_providers(
        self, wgraph, backend, kernels
    ):
        engine = TraversalEngine(wgraph, backend=backend, kernels=kernels)
        try:
            result = engine.run(PageRank(iterations=8))
        finally:
            engine.close()
        baseline = TraversalEngine(wgraph).run(PageRank(iterations=8))
        np.testing.assert_array_equal(result.ranks, baseline.ranks)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="damping"):
            PageRank(damping=1.5)
        with pytest.raises(ValueError, match="iterations"):
            PageRank(iterations=0)
        with pytest.raises(ValueError, match="mode"):
            PageRank(mode="approx")


class TestHookingAndTriangles:
    def test_hooking_matches_frontier_components(self, wgraph):
        engine = TraversalEngine(wgraph)
        hooked = engine.run(ComponentsHooking())
        frontier = engine.run(ConnectedComponents())
        np.testing.assert_array_equal(hooked.labels, frontier.labels)
        assert hooked.num_components == frontier.num_components

    def test_triangles_match_serial_oracle(self, wedges, wgraph):
        result = TraversalEngine(wgraph).run(TriangleCount())
        total, per_vertex = triangle_count_serial(
            wedges.src, wedges.dst, wedges.num_vertices
        )
        assert result.triangles == total
        np.testing.assert_array_equal(result.per_vertex, per_vertex)


# --------------------------------------------------------------------------- #
# Cross-storage invariance of the whole weighted zoo
# --------------------------------------------------------------------------- #
def _weighted_fingerprint(graph, backend):
    engine = TraversalEngine(graph, backend=backend)
    out = {}
    try:
        for name, program in (
            ("sssp", DeltaSteppingSSSP(SOURCE, delta="auto")),
            ("pagerank", PageRank(iterations=8)),
            ("wcc_hook", ComponentsHooking()),
            ("triangles", TriangleCount()),
        ):
            result = engine.run(program)
            out[name] = (
                int(result.total_edges_examined),
                int(result.iterations),
                values_checksum(result),
            )
    finally:
        engine.close()
    return out


class TestWeightedStorageInvariance:
    @pytest.mark.parametrize("backend", ["inline", "thread", "process"])
    def test_zoo_counters_identical_across_storage(
        self, wedges, tmp_path, backend
    ):
        layout = ClusterLayout.from_notation("1x2x2")
        base = build_partitions(wedges, layout, 32)
        expected = _weighted_fingerprint(base, backend)
        for storage in ("mmap", "compressed"):
            save_graph_store(base, tmp_path / storage, storage=storage)
            graph = load_graph_store(tmp_path / storage)
            assert _weighted_fingerprint(graph, backend) == expected, (
                storage,
                backend,
            )


# --------------------------------------------------------------------------- #
# Weight validation: data layer + CLI exit codes
# --------------------------------------------------------------------------- #
class TestWeightValidation:
    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            validate_weights(np.asarray([0.5, -0.1]), num_edges=2)
        with pytest.raises(ValueError, match="non-negative"):
            EdgeList(
                src=np.asarray([0, 1]),
                dst=np.asarray([1, 0]),
                num_vertices=2,
                weights=np.asarray([1.0, -2.0]),
            )

    def test_non_finite_weights_rejected(self):
        for bad in (np.nan, np.inf, -np.inf):
            with pytest.raises(ValueError, match="finite"):
                validate_weights(np.asarray([0.5, bad]), num_edges=2)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            validate_weights(np.asarray([0.5]), num_edges=2)

    def test_weights_deterministic_by_key(self):
        src = np.asarray([0, 3, 0], dtype=np.int64)
        dst = np.asarray([1, 2, 1], dtype=np.int64)
        a = edge_keyed_weights(src, dst, 4, seed=9)
        b = edge_keyed_weights(src, dst, 4, seed=9)
        np.testing.assert_array_equal(a, b)
        assert a[0] == a[2]  # same (src, dst) key, same weight
        assert (a >= 0).all() and np.isfinite(a).all()

    def test_cli_sssp_on_unweighted_graph_exits_2(self, capsys):
        assert main(["sssp", "--scale", "8", "--source", "0"]) == 2
        assert "no edge weights" in capsys.readouterr().err

    def test_cli_bad_delta_exits_2(self, capsys):
        code = main(
            ["sssp", "--scale", "8", "--weights", "3", "--source", "0", "--delta", "-1"]
        )
        assert code == 2
        assert "delta" in capsys.readouterr().err

    def test_cli_bad_damping_exits_2(self, capsys):
        code = main(["pagerank", "--scale", "8", "--damping", "1.5"])
        assert code == 2
        assert "damping" in capsys.readouterr().err

    def test_cli_weights_conflicts_with_npz_exit_2(self, tmp_path, capsys):
        npz = tmp_path / "g.npz"
        assert main(["generate", "--scale", "8", "--output", str(npz)]) == 0
        code = main(["sssp", "--npz", str(npz), "--weights", "3", "--source", "0"])
        assert code == 2
        assert "--weights" in capsys.readouterr().err


class TestCLIWeighted:
    def test_sssp_validates_against_dijkstra(self, capsys):
        code = main(
            ["sssp", "--scale", "9", "--weights", "3", "--sources", "2", "--validate"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "validated" in out

    def test_pagerank_fixed_validates(self, capsys):
        code = main(["pagerank", "--scale", "9", "--weights", "3", "--validate"])
        assert code == 0
        assert "validated" in capsys.readouterr().out


# --------------------------------------------------------------------------- #
# Weighted stores: manifest v2 + backward compatibility
# --------------------------------------------------------------------------- #
class TestWeightedStoreManifest:
    def test_unweighted_store_stays_version_1(self, rmat_small, small_layout, tmp_path):
        import json

        graph = build_partitions(rmat_small, small_layout, 32)
        save_graph_store(graph, tmp_path / "s", storage="mmap")
        manifest = json.loads((tmp_path / "s" / "manifest.json").read_text())
        assert manifest["version"] == SCHEMA_VERSION

    def test_weighted_store_round_trips_as_version_2(self, wedges, tmp_path):
        import json

        layout = ClusterLayout.from_notation("1x2x2")
        graph = build_partitions(wedges, layout, 32)
        save_graph_store(graph, tmp_path / "s", storage="mmap")
        manifest = json.loads((tmp_path / "s" / "manifest.json").read_text())
        assert manifest["version"] == SCHEMA_VERSION_WEIGHTED

        loaded = load_graph_store(tmp_path / "s")
        assert loaded.is_weighted
        for mem, disk in zip(graph.gpus, loaded.gpus):
            for key in ("nn", "nd", "dn", "dd"):
                mw = getattr(mem, key).edge_weights
                dw = getattr(disk, key).edge_weights
                if mw is None:
                    assert dw is None
                else:
                    np.testing.assert_array_equal(np.asarray(mw), np.asarray(dw))

    def test_unknown_version_fails_with_versioned_error(
        self, rmat_small, small_layout, tmp_path
    ):
        import json

        graph = build_partitions(rmat_small, small_layout, 32)
        save_graph_store(graph, tmp_path / "s", storage="mmap")
        path = tmp_path / "s" / "manifest.json"
        manifest = json.loads(path.read_text())
        manifest["version"] = 99
        path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="unsupported store version"):
            load_graph_store(tmp_path / "s")


# --------------------------------------------------------------------------- #
# Incremental SSSP maintenance over dynamic graphs
# --------------------------------------------------------------------------- #
class TestMaintainedSSSP:
    @pytest.fixture()
    def dyn_engine(self, wedges):
        dyn = DynamicGraph(wedges, "1x2x2", 32, weights_seed=5)
        return DynamicEngine(dyn)

    def test_insert_repair_is_bit_identical(self, dyn_engine):
        sssp = MaintainedSSSP(dyn_engine, SOURCE)
        before = sssp.values.copy()
        applied = dyn_engine.apply_delta(
            EdgeDelta.inserts([[SOURCE, 1500], [1500, 77], [77, 900]])
        )
        sssp.update(applied)
        sssp.verify()  # raises on any divergence from a fresh run
        assert sssp.stats.repairs >= 1 or sssp.stats.skipped >= 1
        # The maintained answer can only improve (weights are non-negative
        # and the delta inserted edges): distances never get worse.
        after = sssp.values
        improved = after != before
        if improved.any():
            old = np.where(before == -1, np.inf, before.view(np.float64))
            new = np.where(after == -1, np.inf, after.view(np.float64))
            assert (new[improved] < old[improved]).all()

    def test_delete_falls_back_to_recompute(self, dyn_engine, wedges):
        sssp = MaintainedSSSP(dyn_engine, SOURCE)
        recomputes_before = sssp.stats.recomputes
        pair = [[int(wedges.src[0]), int(wedges.dst[0])]]
        applied = dyn_engine.apply_delta(EdgeDelta.deletes(pair))
        sssp.update(applied)
        assert sssp.stats.recomputes == recomputes_before + 1
        sssp.verify()

    def test_unweighted_dynamic_graph_rejected(self, rmat_small):
        dyn = DynamicGraph(rmat_small, "1x2x2", 32)
        engine = DynamicEngine(dyn)
        with pytest.raises(ValueError, match="weights"):
            MaintainedSSSP(engine, 0)


# --------------------------------------------------------------------------- #
# Bench integration: weighted scenarios + answer checksums
# --------------------------------------------------------------------------- #
class TestWeightedBench:
    def test_sssp_scenario_records_bf_pair(self):
        spec = Scenario(
            "t-sssp", "rmat", 9, "sssp", weights=3, delta=0.25, sources=1
        )
        record = run_scenario(spec, repeats=1, check_determinism=False)
        assert record["spec"]["weights"] == 3
        assert record["spec"]["delta"] == 0.25
        section = record["sssp"]
        assert section["edges_bellman_ford"] >= section["edges_delta"]
        assert section["wall_bellman_ford_s"] > 0
        assert record["counters"]["values_checksum"] != 0

    def test_pagerank_scenario_runs_once(self):
        spec = Scenario("t-pr", "rmat", 9, "pagerank", weights=3, iterations=4)
        record = run_scenario(spec, repeats=1, check_determinism=False)
        assert record["spec"]["sources"] == 1
        assert record["counters"]["runs"] == 1
        assert record["counters"]["iterations"] == 4

    def test_sssp_scenario_requires_weights(self):
        with pytest.raises(ValueError, match="weights"):
            Scenario("t-bad", "rmat", 9, "sssp")

    def test_checksum_distinguishes_weighted_answers(self, wgraph):
        engine = TraversalEngine(wgraph)
        sssp = engine.run(DeltaSteppingSSSP(SOURCE))
        ranks = engine.run(PageRank(iterations=4))
        tri = engine.run(TriangleCount())
        sums = {values_checksum(r) for r in (sssp, ranks, tri)}
        assert len(sums) == 3 and 0 not in sums
