"""Tests for the batched (MS-BFS style) traversal path.

The load-bearing property is *batched-vs-sequential equivalence*: every lane
of a batched run must be bit-identical to a sequential single-source run from
that lane's source, for every delegate threshold (including the all-normal
and almost-all-delegate extremes), every layout, and both the plain and the
hop-capped program.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import DistributedBFS, TraversalEngine
from repro.core.kernels import (
    batched_backward_visit,
    batched_filter_frontier,
    batched_forward_visit,
)
from repro.core.programs import (
    BatchedBFSLevels,
    BatchedReachability,
    BFSLevels,
    BFSParents,
    ConnectedComponents,
    KHopReachability,
)
from repro.graph.csr import CSRGraph
from repro.partition.subgraphs import build_partitions
from repro.utils.bitmask import BatchBitmask


# --------------------------------------------------------------------------- #
# BatchBitmask
# --------------------------------------------------------------------------- #
class TestBatchBitmask:
    def test_set_and_read_lanes(self):
        mask = BatchBitmask(rows=10, width=5)
        mask.set_lanes(np.array([3, 3, 7]), np.array([0, 4, 2]))
        assert mask.count() == 3
        assert sorted(mask.nonzero_rows().tolist()) == [3, 7]
        assert mask.lane_rows(4).tolist() == [3]
        assert mask.lane_rows(1).tolist() == []
        assert mask.rows_any().tolist() == [
            False, False, False, True, False, False, False, True, False, False,
        ]

    def test_wide_masks_span_words(self):
        mask = BatchBitmask(rows=4, width=130)
        assert mask.nwords == 3
        mask.set_lanes(np.array([1, 1, 2]), np.array([0, 129, 64]))
        assert mask.count() == 3
        assert mask.lane_rows(129).tolist() == [1]
        assert mask.lane_rows(64).tolist() == [2]

    def test_or_rows_combines_duplicates(self):
        mask = BatchBitmask(rows=3, width=8)
        words = np.array([[1], [2]], dtype=np.uint64)
        mask.or_rows(np.array([0, 0]), words)
        assert mask.get_rows(np.array([0]))[0, 0] == np.uint64(3)

    def test_or_with_and_not(self):
        a = BatchBitmask.from_lane_sets(4, 4, np.array([0, 1]), np.array([0, 1]))
        b = BatchBitmask.from_lane_sets(4, 4, np.array([1, 2]), np.array([1, 2]))
        merged = a.copy().or_with(b)
        assert merged.count() == 3
        fresh = merged.and_not(a)
        assert fresh.nonzero_rows().tolist() == [2]
        assert a != b and merged == merged.copy()

    def test_packed_nbytes_is_tight(self):
        assert BatchBitmask(10, 3).packed_nbytes == (10 * 3 + 7) // 8
        assert BatchBitmask(0, 64).packed_nbytes == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="width"):
            BatchBitmask(4, 0)
        with pytest.raises(IndexError, match="row index"):
            BatchBitmask(4, 4).set_lanes(np.array([4]), np.array([0]))
        with pytest.raises(IndexError, match="lane index"):
            BatchBitmask(4, 4).set_lanes(np.array([0]), np.array([4]))
        with pytest.raises(ValueError, match="shape mismatch"):
            BatchBitmask(4, 4).or_with(BatchBitmask(4, 5))
        with pytest.raises(TypeError):
            hash(BatchBitmask(1, 1))


# --------------------------------------------------------------------------- #
# Batched kernels
# --------------------------------------------------------------------------- #
def _tiny_csr() -> CSRGraph:
    # 0 -> {1, 2}, 1 -> {2}, 2 -> {}, 3 -> {0}
    edges = np.array([[0, 1], [0, 2], [1, 2], [3, 0]], dtype=np.int64)
    return CSRGraph.from_edges(edges[:, 0], edges[:, 1], num_rows=4, num_cols=4)


class TestBatchedKernels:
    def test_filter_drops_zero_degree_rows(self):
        rows = np.array([0, 2, 3], dtype=np.int64)
        words = np.array([[1], [2], [4]], dtype=np.uint64)
        degrees = np.array([2, 1, 0, 1], dtype=np.int64)
        kept_rows, kept_words = batched_filter_frontier(rows, words, degrees)
        assert kept_rows.tolist() == [0, 3]
        assert kept_words[:, 0].tolist() == [1, 4]

    def test_forward_or_combines_lane_words(self):
        csr = _tiny_csr()
        frontier = np.array([0, 1], dtype=np.int64)
        words = np.array([[1], [2]], dtype=np.uint64)  # lane 0 at row 0, lane 1 at row 1
        out = batched_forward_visit(csr, frontier, words)
        assert not out.backward
        assert out.edges_examined == 3
        assert out.discovered.tolist() == [1, 2]
        # Vertex 2 is reached by both rows: its word is the OR of both lanes.
        assert out.words[:, 0].tolist() == [1, 3]

    def test_backward_pull_collects_all_lanes(self):
        csr = _tiny_csr()  # rows pull from their out-neighbour lists here
        parent_words = np.zeros((4, 1), dtype=np.uint64)
        parent_words[1, 0] = 1  # lane 0 frontier at vertex 1
        parent_words[2, 0] = 2  # lane 1 frontier at vertex 2
        wanted = np.full((1, 1), np.uint64(0xFF), dtype=np.uint64)
        out = batched_backward_visit(csr, np.array([0], dtype=np.int64), parent_words, wanted)
        assert out.backward
        # Full scan: both of row 0's parents examined, both lanes collected.
        assert out.edges_examined == 2
        assert out.discovered.tolist() == [0]
        assert out.words[0, 0] == np.uint64(3)

    def test_backward_respects_wanted_lanes(self):
        csr = _tiny_csr()
        parent_words = np.zeros((4, 1), dtype=np.uint64)
        parent_words[1, 0] = 3
        wanted = np.array([[2]], dtype=np.uint64)  # lane 0 already visited
        out = batched_backward_visit(csr, np.array([0], dtype=np.int64), parent_words, wanted)
        assert out.words[0, 0] == np.uint64(2)

    def test_empty_inputs(self):
        csr = _tiny_csr()
        empty = np.zeros(0, dtype=np.int64)
        ew = np.zeros((0, 1), dtype=np.uint64)
        assert batched_forward_visit(csr, empty, ew).discovered.size == 0
        assert (
            batched_backward_visit(csr, empty, np.zeros((4, 1), dtype=np.uint64), ew)
            .discovered.size
            == 0
        )


# --------------------------------------------------------------------------- #
# Batched-vs-sequential equivalence
# --------------------------------------------------------------------------- #
def _sources_for(edges, count: int = 6) -> list[int]:
    """A spread of sources: low ids, a high id, and a repeat-friendly mix."""
    n = edges.num_vertices
    return [0, 1, n // 3, n // 2, n - 1, 5]


class TestBatchedEquivalence:
    @pytest.mark.parametrize("threshold", [1, 4, 32, 1 << 30])
    def test_levels_bit_identical_across_thresholds(self, rmat_small, small_layout, threshold):
        graph = build_partitions(rmat_small, small_layout, threshold)
        engine = TraversalEngine(graph)
        sources = _sources_for(rmat_small)
        batch = engine.run_batch(BatchedBFSLevels(sources))
        assert batch.width == len(sources)
        for lane, source in enumerate(sources):
            sequential = engine.run(BFSLevels(source=source))
            np.testing.assert_array_equal(batch.distances[lane], sequential.distances)

    @pytest.mark.parametrize("max_hops", [0, 1, 3])
    def test_khop_bit_identical(self, rmat_small, small_layout, max_hops):
        graph = build_partitions(rmat_small, small_layout, threshold=16)
        engine = TraversalEngine(graph)
        sources = _sources_for(rmat_small)
        batch = engine.run_batch(BatchedReachability(sources, max_hops=max_hops))
        for lane, source in enumerate(sources):
            sequential = engine.run(KHopReachability(source=source, max_hops=max_hops))
            np.testing.assert_array_equal(batch.distances[lane], sequential.distances)

    def test_equivalence_across_layouts(self, rmat_small, any_layout):
        graph = build_partitions(rmat_small, any_layout, threshold=16)
        engine = TraversalEngine(graph)
        sources = [0, 7, 1000]
        batch = engine.run_batch(BatchedBFSLevels(sources))
        for lane, source in enumerate(sources):
            np.testing.assert_array_equal(
                batch.distances[lane], engine.run(BFSLevels(source=source)).distances
            )

    def test_wide_batch_spanning_multiple_words(self, rmat_small, small_layout):
        graph = build_partitions(rmat_small, small_layout, threshold=16)
        engine = TraversalEngine(graph)
        rng = np.random.default_rng(5)
        sources = rng.integers(0, rmat_small.num_vertices, size=70).tolist()
        batch = engine.run_batch(BatchedBFSLevels(sources))
        # Spot-check lanes in every word (0, 63, 64, 69).
        for lane in (0, 63, 64, 69):
            np.testing.assert_array_equal(
                batch.distances[lane],
                engine.run(BFSLevels(source=sources[lane])).distances,
            )

    def test_duplicate_lanes_are_independent(self, path_graph, small_layout):
        graph = build_partitions(path_graph, small_layout, threshold=4)
        engine = TraversalEngine(graph)
        batch = engine.run_batch(BatchedBFSLevels([3, 3, 10]))
        np.testing.assert_array_equal(batch.distances[0], batch.distances[1])
        assert not np.array_equal(batch.distances[0], batch.distances[2])

    def test_per_lane_iterations_match_sequential(self, rmat_small, small_layout):
        graph = build_partitions(rmat_small, small_layout, threshold=16)
        engine = TraversalEngine(graph)
        sources = _sources_for(rmat_small)
        batch = engine.run_batch(BatchedBFSLevels(sources))
        for lane, source in enumerate(sources):
            lane_result = batch.result_for_lane(lane)
            sequential = engine.run(BFSLevels(source=source))
            assert lane_result.iterations == sequential.iterations
            assert lane_result.source == source

    def test_no_direction_optimization_still_identical(self, rmat_small, small_layout):
        from repro.core.options import BFSOptions

        graph = build_partitions(rmat_small, small_layout, threshold=16)
        engine = TraversalEngine(graph, options=BFSOptions(direction_optimized=False))
        sources = [0, 99]
        batch = engine.run_batch(BatchedBFSLevels(sources))
        for lane, source in enumerate(sources):
            np.testing.assert_array_equal(
                batch.distances[lane], engine.run(BFSLevels(source=source)).distances
            )

    def test_batch_counters_deterministic(self, rmat_small, small_layout):
        graph = build_partitions(rmat_small, small_layout, threshold=16)
        engine = TraversalEngine(graph)
        first = engine.run_batch(BatchedBFSLevels([0, 5, 9]))
        second = engine.run_batch(BatchedBFSLevels([0, 5, 9]))
        assert first.total_edges_examined == second.total_edges_examined
        assert first.iterations == second.iterations
        assert first.timing.elapsed_ms == second.timing.elapsed_ms

    def test_source_validation(self, rmat_small, small_layout):
        graph = build_partitions(rmat_small, small_layout, threshold=16)
        engine = TraversalEngine(graph)
        with pytest.raises(ValueError, match="out of range"):
            engine.run_batch(BatchedBFSLevels([rmat_small.num_vertices]))
        with pytest.raises(ValueError, match="at least one source"):
            BatchedBFSLevels([])
        with pytest.raises(ValueError, match="max_hops"):
            BatchedReachability([0], max_hops=-1)


# --------------------------------------------------------------------------- #
# run_many: dedup + batched routing
# --------------------------------------------------------------------------- #
class TestRunMany:
    def test_dedup_saves_traversals_and_fans_out(self, rmat_small, small_layout):
        graph = build_partitions(rmat_small, small_layout, threshold=16)
        campaign = DistributedBFS(graph).run_many([0, 7, 0, 7, 7])
        assert len(campaign) == 5
        assert campaign.saved_traversals == 3
        assert campaign.summary()["saved_traversals"] == 3
        # Duplicate positions share the first run's result object.
        assert campaign[0] is campaign[2]
        assert campaign[1] is campaign[4]
        assert campaign[0].source == 0 and campaign[1].source == 7

    def test_batched_routing_matches_sequential(self, rmat_small, small_layout):
        graph = build_partitions(rmat_small, small_layout, threshold=16)
        engine = TraversalEngine(graph)
        sources = [0, 3, 9, 100, 3]
        sequential = engine.run_many([BFSLevels(source=s) for s in sources])
        batched = engine.run_many(
            [BFSLevels(source=s) for s in sources], batch_size=4
        )
        assert len(sequential) == len(batched) == 5
        assert batched.saved_traversals == 1
        for a, b in zip(sequential, batched):
            assert a.source == b.source
            np.testing.assert_array_equal(a.distances, b.distances)

    def test_khop_batched_routing(self, rmat_small, small_layout):
        graph = build_partitions(rmat_small, small_layout, threshold=16)
        engine = TraversalEngine(graph)
        programs = [KHopReachability(source=s, max_hops=2) for s in (0, 5, 11)]
        batched = engine.run_many(programs, batch_size=8)
        for result, source in zip(batched, (0, 5, 11)):
            np.testing.assert_array_equal(
                result.distances,
                engine.run(KHopReachability(source=source, max_hops=2)).distances,
            )

    def test_mixed_programs_fall_back_to_sequential(self, rmat_small, small_layout):
        graph = build_partitions(rmat_small, small_layout, threshold=16)
        engine = TraversalEngine(graph)
        campaign = engine.run_many(
            [BFSLevels(source=0), BFSParents(source=0), ConnectedComponents()],
            batch_size=8,
        )
        assert len(campaign) == 3
        assert campaign.saved_traversals == 0

    def test_mixed_hop_caps_fall_back(self, rmat_small, small_layout):
        graph = build_partitions(rmat_small, small_layout, threshold=16)
        engine = TraversalEngine(graph)
        campaign = engine.run_many(
            [
                KHopReachability(source=0, max_hops=1),
                KHopReachability(source=1, max_hops=2),
            ],
            batch_size=8,
        )
        assert [r.max_hops for r in campaign] == [1, 2]

    def test_session_run_many_routes_batched(self, rmat_small):
        from repro.session import Session

        graph = Session(layout="2x1x2").load(rmat_small).threshold(16).build()
        campaign = graph.run_many([0, 4, 4, 9])
        assert campaign.saved_traversals == 1
        np.testing.assert_array_equal(
            campaign[1].distances, campaign[2].distances
        )
        with pytest.raises(ValueError, match="unknown program"):
            graph.run_many([0], program="components")
