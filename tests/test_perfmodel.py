"""Tests for the analytic cost model, TEPS accounting and comparison data."""

from __future__ import annotations

import numpy as np
import pytest

from repro.perfmodel.comparison import PAPER_RESULT, PRIOR_WORK, comparison_table
from repro.perfmodel.costs import (
    one_d_dobfs_volume_bytes,
    paper_model_time_seconds,
    paper_model_volume_bytes,
    two_d_time_seconds,
    two_d_volume_bytes,
    weak_scaling_growth,
)
from repro.perfmodel.teps import geometric_mean_gteps, gteps, rmat_counted_edges, teps


class TestTeps:
    def test_counted_edges(self):
        assert rmat_counted_edges(26) == (1 << 26) * 16
        with pytest.raises(ValueError):
            rmat_counted_edges(-1)
        with pytest.raises(ValueError):
            rmat_counted_edges(10, edge_factor=0)

    def test_teps_and_gteps(self):
        assert teps(1000, 0.5) == pytest.approx(2000)
        assert gteps(2_000_000_000, 1.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            teps(100, 0.0)
        with pytest.raises(ValueError):
            teps(-1, 1.0)

    def test_geometric_mean_gteps(self):
        value = geometric_mean_gteps(1 << 30, np.asarray([0.5, 2.0]))
        assert value == pytest.approx(gteps(1 << 30, 1.0))


class TestCostFormulas:
    def test_one_d_volume(self):
        assert one_d_dobfs_volume_bytes(10**6) == 8e6
        with pytest.raises(ValueError):
            one_d_dobfs_volume_bytes(-1)

    def test_two_d_volume_zero_for_single_gpu(self):
        assert two_d_volume_bytes(1000, 500, 3, 1) == 0.0
        assert two_d_time_seconds(1000, 500, 3, 1, 1e-10) == 0.0

    def test_two_d_grows_with_sqrt_p(self):
        # Per-processor time (total/p constant graph) should grow ~ sqrt(p)·log.
        t16 = two_d_time_seconds(1 << 20, 1 << 19, 4, 16, 1e-10)
        t64 = two_d_time_seconds(1 << 20, 1 << 19, 4, 64, 1e-10)
        assert t64 < t16  # log(sqrt p)/sqrt p decreases for a fixed graph
        v16 = two_d_volume_bytes(1 << 20, 1 << 19, 4, 16)
        v64 = two_d_volume_bytes(1 << 20, 1 << 19, 4, 64)
        assert v64 > v16  # but total volume grows

    def test_paper_model_formulas(self):
        vol = paper_model_volume_bytes(1000, 8, 10, 5000)
        assert vol == pytest.approx(1000 * 8 / 4 * 10 + 4 * 5000)
        t = paper_model_time_seconds(1000, 8, 10, 5000, 32, 1e-10)
        assert t > 0
        assert paper_model_time_seconds(1000, 1, 10, 0, 4, 1e-10) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            two_d_volume_bytes(10, 10, 1, 0)
        with pytest.raises(ValueError):
            paper_model_volume_bytes(10, 0, 1, 1)
        with pytest.raises(ValueError):
            paper_model_time_seconds(10, 0, 1, 1, 4, 1e-10)


class TestWeakScalingGrowth:
    def test_paper_model_scales_better_than_2d(self):
        """The paper's core claim: log(p) growth beats sqrt(p) growth."""
        g = 8e-11
        small = weak_scaling_growth(4, 1 << 26, 1 << 30, 20, g)
        large = weak_scaling_growth(1024, 1 << 26, 1 << 30, 20, g)
        ratio_paper = large["paper"].time_seconds / small["paper"].time_seconds
        ratio_2d = large["2d"].time_seconds / small["2d"].time_seconds
        assert ratio_paper < ratio_2d
        # And at large p the paper model is cheaper in absolute terms too.
        assert large["paper"].time_seconds < large["2d"].time_seconds
        assert large["paper"].time_seconds < large["1d"].time_seconds

    def test_growth_is_monotone_in_p(self):
        g = 8e-11
        times = [
            weak_scaling_growth(p, 1 << 26, 1 << 30, 20, g)["paper"].time_seconds
            for p in [4, 16, 64, 256]
        ]
        assert all(a <= b + 1e-12 for a, b in zip(times, times[1:]))

    def test_as_dict(self):
        costs = weak_scaling_growth(16, 1 << 20, 1 << 24, 10, 1e-10)
        row = costs["paper"].as_dict()
        assert {"scheme", "num_gpus", "volume_bytes", "time_seconds"} == set(row)

    def test_invalid(self):
        with pytest.raises(ValueError):
            weak_scaling_growth(0, 1, 1, 1, 1e-10)
        with pytest.raises(ValueError):
            weak_scaling_growth(4, 1, 1, 1, 1e-10, gpus_per_rank=0)


class TestComparisonData:
    def test_paper_headline_number(self):
        assert PAPER_RESULT.gteps == pytest.approx(259.8)
        assert PAPER_RESULT.num_processors == 124
        assert PAPER_RESULT.max_scale == 33

    def test_prior_work_has_expected_entries(self):
        assert {"pan2017", "bernaschi2015", "yasui2017", "buluc2017", "krajecki2016"} <= set(
            PRIOR_WORK
        )
        for work in PRIOR_WORK.values():
            assert work.gteps > 0
            assert work.num_processors > 0
            assert work.gteps_per_processor > 0

    def test_comparison_table_ratios_match_paper_claims(self):
        rows = {row["reference"]: row for row in comparison_table()}
        bernaschi = rows["[18] Bernaschi et al. 2015"]
        # The paper: "about 31% of their performance with only 3% the GPUs".
        assert bernaschi["paper_vs_ref"] == pytest.approx(0.31, abs=0.02)
        yasui = rows["[9] Yasui & Fujisawa 2017"]
        assert yasui["paper_vs_ref"] == pytest.approx(1.49, abs=0.02)
        krajecki = rows["[20] Krajecki et al. 2016"]
        assert krajecki["paper_vs_ref"] > 3.5

    def test_comparison_table_accepts_measured_column(self):
        rows = comparison_table({"pan2017": 1.23})
        pan = [r for r in rows if "Pan" in r["reference"]][0]
        assert pan["repro_gteps"] == 1.23

    def test_per_processor_throughput_of_this_work_beats_gpu_clusters(self):
        ours = PAPER_RESULT.gteps_per_processor
        for key in ["bernaschi2015", "krajecki2016", "fu2014", "young2016", "ueno2013", "tsubame2017"]:
            assert ours > PRIOR_WORK[key].gteps_per_processor
