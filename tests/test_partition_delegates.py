"""Tests for degree separation, the edge census and threshold suggestion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.degree import out_degrees
from repro.graph.generators import star_edges
from repro.partition.delegates import (
    census_for_thresholds,
    separate_by_degree,
    suggest_threshold,
    threshold_candidates,
)


class TestSeparation:
    def test_star_hub_is_delegate(self, star_graph):
        sep = separate_by_degree(star_graph, threshold=5)
        deg = out_degrees(star_graph)
        hub = int(np.argmax(deg))
        assert sep.is_delegate[hub]
        assert sep.num_delegates == 1
        assert sep.delegate_id_of[hub] == 0

    def test_threshold_is_strict_greater_than(self):
        # Hub of a 40-leaf symmetric star has degree 40.
        star = star_edges(40).prepared(hash_seed=None)
        assert separate_by_degree(star, threshold=40).num_delegates == 0
        assert separate_by_degree(star, threshold=39).num_delegates == 1

    def test_delegate_ids_are_dense_and_ordered(self, rmat_small):
        sep = separate_by_degree(rmat_small, threshold=16)
        assert sep.num_delegates > 0
        np.testing.assert_array_equal(
            sep.delegate_id_of[sep.delegate_vertices], np.arange(sep.num_delegates)
        )
        # Delegate vertices are listed in ascending vertex order (Fig. 2).
        assert np.all(np.diff(sep.delegate_vertices) > 0)

    def test_zero_threshold_makes_every_nonisolated_vertex_a_delegate(self, rmat_small):
        sep = separate_by_degree(rmat_small, threshold=0)
        deg = out_degrees(rmat_small)
        assert sep.num_delegates == int(np.count_nonzero(deg > 0))

    def test_huge_threshold_gives_no_delegates(self, rmat_small):
        sep = separate_by_degree(rmat_small, threshold=10**9)
        assert sep.num_delegates == 0
        assert sep.delegate_fraction == 0.0

    def test_negative_threshold_rejected(self, rmat_small):
        with pytest.raises(ValueError):
            separate_by_degree(rmat_small, threshold=-1)

    def test_delegate_degrees(self, rmat_small):
        sep = separate_by_degree(rmat_small, threshold=32)
        assert np.all(sep.delegate_degrees() > 32)


class TestCensus:
    def test_census_percentages_sum_to_100(self, rmat_small):
        for census in census_for_thresholds(rmat_small, [1, 8, 64, 512]):
            total = (
                census.nn_percentage + census.nd_dn_percentage + census.dd_percentage
            )
            assert total == pytest.approx(100.0, abs=1e-9)
            assert census.nn_edges + census.nd_edges + census.dn_edges + census.dd_edges == rmat_small.num_edges

    def test_census_is_monotone_in_threshold(self, rmat_small):
        """Raising TH moves edges from dd toward nn (Fig. 5's crossing curves)."""
        censuses = census_for_thresholds(rmat_small, [1, 4, 16, 64, 256, 4096])
        nn = [c.nn_percentage for c in censuses]
        dd = [c.dd_percentage for c in censuses]
        delegates = [c.delegate_percentage for c in censuses]
        assert all(a <= b + 1e-12 for a, b in zip(nn, nn[1:]))
        assert all(a >= b - 1e-12 for a, b in zip(dd, dd[1:]))
        assert all(a >= b - 1e-12 for a, b in zip(delegates, delegates[1:]))

    def test_census_extremes(self, rmat_small):
        everything_delegate = census_for_thresholds(rmat_small, [0])[0]
        assert everything_delegate.dd_percentage == pytest.approx(100.0)
        nothing_delegate = census_for_thresholds(rmat_small, [10**9])[0]
        assert nothing_delegate.nn_percentage == pytest.approx(100.0)

    def test_symmetric_graph_has_nd_equal_dn(self, rmat_small):
        census = census_for_thresholds(rmat_small, [32])[0]
        assert census.nd_edges == census.dn_edges

    def test_as_dict_keys(self, rmat_small):
        d = census_for_thresholds(rmat_small, [8])[0].as_dict()
        assert {"threshold", "delegates_pct", "nn_pct", "dd_pct"} <= set(d)


class TestThresholdSuggestion:
    def test_candidates_are_powers_of_two(self):
        cands = threshold_candidates(100)
        assert np.all(cands == np.sort(cands))
        assert all((int(c) & (int(c) - 1)) == 0 for c in cands)
        assert cands.max() >= 100

    def test_suggestion_satisfies_paper_constraints(self, rmat_small):
        p = 4
        th = suggest_threshold(rmat_small, num_gpus=p)
        sep = separate_by_degree(rmat_small, th)
        census = census_for_thresholds(rmat_small, [th])[0]
        assert sep.num_delegates <= 4 * rmat_small.num_vertices / p
        assert census.nn_percentage <= 10.0 + 1e-9

    def test_suggestion_grows_with_gpu_count(self, rmat_medium):
        """More GPUs -> smaller delegate budget -> the threshold cannot shrink."""
        th_small = suggest_threshold(rmat_medium, num_gpus=2)
        th_large = suggest_threshold(rmat_medium, num_gpus=64)
        assert th_large >= th_small

    def test_explicit_candidates_respected(self, rmat_small):
        th = suggest_threshold(rmat_small, num_gpus=4, candidates=[48, 96])
        assert th in (48, 96)

    def test_invalid_inputs(self, rmat_small):
        with pytest.raises(ValueError):
            suggest_threshold(rmat_small, num_gpus=0)
        with pytest.raises(ValueError):
            suggest_threshold(rmat_small, num_gpus=4, candidates=[])
