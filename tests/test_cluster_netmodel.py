"""Tests for the hardware spec and the analytic network model."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.cluster.hardware import HardwareSpec
from repro.cluster.netmodel import NetworkModel


class TestHardwareSpec:
    def test_defaults_describe_ray(self):
        hw = HardwareSpec()
        assert hw.nvlink_bandwidth_Bps == pytest.approx(40e9)
        assert hw.nic_bandwidth_Bps == pytest.approx(12.5e9)
        assert hw.staging_copies == 2  # no NIC-GPU RDMA on Ray

    def test_inverse_bandwidth_g(self):
        hw = HardwareSpec()
        assert hw.inverse_bandwidth_g == pytest.approx(1.0 / 12.5e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            HardwareSpec(gpu_forward_edges_per_s=0)
        with pytest.raises(ValueError):
            HardwareSpec(nic_latency_s=-1)
        with pytest.raises(ValueError):
            HardwareSpec(min_efficiency=0.0)
        with pytest.raises(ValueError):
            HardwareSpec(allreduce_software_factor=0.5)
        with pytest.raises(ValueError):
            HardwareSpec(staging_copies=-1)

    def test_replace_builds_hypothetical_machines(self):
        hw = replace(HardwareSpec(), staging_copies=0)
        assert hw.staging_copies == 0


class TestMessageEfficiency:
    def test_efficiency_grows_with_message_size(self):
        model = NetworkModel()
        sizes = [1 << k for k in range(10, 25)]
        effs = [model.message_efficiency(s) for s in sizes]
        assert all(a <= b + 1e-12 for a, b in zip(effs, effs[1:]))

    def test_peak_near_optimal_size(self):
        """The paper's §VI-A1 sweep: ~4 MB messages reach (near) full bandwidth."""
        model = NetworkModel()
        assert model.message_efficiency(4e6) > 0.95
        assert model.message_efficiency(16e6) > 0.99
        assert model.message_efficiency(128e3) < 0.5

    def test_floor_for_tiny_messages(self):
        model = NetworkModel()
        assert model.message_efficiency(1) >= model.hardware.min_efficiency
        assert model.message_efficiency(0) == model.hardware.min_efficiency

    def test_effective_bandwidth_bounded_by_peak(self):
        model = NetworkModel()
        assert model.effective_nic_bandwidth(1 << 22) <= model.hardware.nic_bandwidth_Bps


class TestTransfers:
    def test_zero_bytes_cost_nothing(self):
        model = NetworkModel()
        assert model.intra_node_time(0) == 0.0
        assert model.inter_node_time(0) == 0.0

    def test_inter_node_slower_than_intra_node(self):
        model = NetworkModel()
        for nbytes in [1 << 12, 1 << 20, 1 << 24]:
            assert model.inter_node_time(nbytes) > model.intra_node_time(nbytes)

    def test_p2p_dispatches_on_locality(self):
        model = NetworkModel()
        assert model.p2p_time(1 << 20, same_rank=True) == model.intra_node_time(1 << 20)
        assert model.p2p_time(1 << 20, same_rank=False) == model.inter_node_time(1 << 20)

    def test_staging_copies_increase_cost(self):
        with_staging = NetworkModel(HardwareSpec(staging_copies=2))
        rdma = NetworkModel(HardwareSpec(staging_copies=0))
        assert with_staging.inter_node_time(1 << 22) > rdma.inter_node_time(1 << 22)

    def test_time_scales_roughly_linearly_for_large_messages(self):
        model = NetworkModel()
        t1 = model.inter_node_time(8e6)
        t2 = model.inter_node_time(16e6)
        assert 1.8 < t2 / t1 < 2.2


class TestCollectivesAndKernels:
    def test_allreduce_zero_for_single_rank(self):
        model = NetworkModel()
        assert model.global_allreduce_time(1 << 20, num_ranks=1) == 0.0

    def test_allreduce_grows_logarithmically(self):
        model = NetworkModel()
        t2 = model.global_allreduce_time(1 << 20, 2)
        t4 = model.global_allreduce_time(1 << 20, 4)
        t16 = model.global_allreduce_time(1 << 20, 16)
        assert t4 == pytest.approx(2 * t2)
        assert t16 == pytest.approx(4 * t2)

    def test_nonblocking_reduce_penalty(self):
        """Fig. 8: blocking reduction is faster on Ray's unoptimized Iallreduce."""
        model = NetworkModel()
        blocking = model.global_allreduce_time(1 << 20, 8, blocking=True)
        nonblocking = model.global_allreduce_time(1 << 20, 8, blocking=False)
        assert nonblocking > blocking

    def test_local_reduce_zero_for_single_gpu_rank(self):
        model = NetworkModel()
        assert model.local_reduce_time(1 << 20, gpus_per_rank=1) == 0.0
        assert model.local_broadcast_time(1 << 20, gpus_per_rank=1) == 0.0

    def test_local_reduce_grows_with_gpus(self):
        model = NetworkModel()
        assert model.local_reduce_time(1 << 20, 4) > model.local_reduce_time(1 << 20, 2)

    def test_traversal_time_uses_direction_rate(self):
        model = NetworkModel()
        fwd = model.traversal_time(1_000_000, backward=False)
        bwd = model.traversal_time(1_000_000, backward=True)
        assert bwd < fwd

    def test_traversal_and_filter_reject_negative(self):
        model = NetworkModel()
        with pytest.raises(ValueError):
            model.traversal_time(-1)
        with pytest.raises(ValueError):
            model.filter_time(-1)

    def test_kernel_overhead_floor(self):
        model = NetworkModel()
        assert model.traversal_time(0) == pytest.approx(model.hardware.kernel_overhead_s)

    def test_alltoall_sums_pairs(self):
        import numpy as np

        model = NetworkModel()
        t = model.alltoall_time(np.asarray([1000.0, 1000.0]), np.asarray([True, False]))
        expected = model.intra_node_time(1000.0) + model.inter_node_time(1000.0)
        assert t == pytest.approx(expected)
