"""Tests for the query-serving subsystem (repro.serve) and its CLI/bench glue."""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro
from repro.bench import Scenario, run_scenario
from repro.cli import main
from repro.core.engine import TraversalEngine
from repro.core.programs import BFSLevels, KHopReachability
from repro.partition.subgraphs import build_partitions
from repro.serve import LRUCache, Query, QueryService, ZipfWorkload, zipf_ranks, zipf_weights


# --------------------------------------------------------------------------- #
# LRU cache
# --------------------------------------------------------------------------- #
class TestLRUCache:
    def test_hit_miss_counters(self):
        cache = LRUCache(2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == 0.5 and stats.lookups == 2

    def test_lru_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a": "b" is now LRU
        cache.put("c", 3)
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.stats.evictions == 1
        assert cache.stats.size == 2

    def test_put_refreshes_recency_without_eviction(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert
        cache.put("c", 3)
        assert cache.get("a") == 10 and "b" not in cache
        assert cache.stats.evictions == 1

    def test_contains_does_not_touch_counters(self):
        cache = LRUCache(1)
        cache.put("a", 1)
        assert "a" in cache and "b" not in cache
        assert cache.stats.lookups == 0

    def test_clear_keeps_cumulative_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0 and cache.stats.hits == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            LRUCache(0)

    def test_stats_as_dict_round_trips(self):
        cache = LRUCache(3)
        cache.put("a", 1)
        assert json.loads(json.dumps(cache.stats.as_dict())) == cache.stats.as_dict()


# --------------------------------------------------------------------------- #
# Zipf workload
# --------------------------------------------------------------------------- #
class TestZipfWorkload:
    def test_deterministic_stream(self):
        spec = ZipfWorkload(num_queries=64, skew=1.0, pool=16, seed=7)
        assert spec.generate(1000) == spec.generate(1000)

    def test_skew_concentrates_sources(self):
        hot = ZipfWorkload(num_queries=256, skew=2.0, pool=64, seed=3).sources(4096)
        cold = ZipfWorkload(num_queries=256, skew=0.0, pool=64, seed=3).sources(4096)
        assert np.unique(hot).size < np.unique(cold).size

    def test_degree_filter_excludes_isolated(self):
        degrees = np.array([0, 3, 0, 2, 1])
        stream = ZipfWorkload(num_queries=32, pool=8, seed=1).sources(5, degrees=degrees)
        assert set(stream.tolist()) <= {1, 3, 4}

    def test_pool_caps_at_candidates(self):
        degrees = np.array([1, 1, 0, 0])
        stream = ZipfWorkload(num_queries=16, pool=100, seed=1).sources(4, degrees=degrees)
        assert set(stream.tolist()) <= {0, 1}

    def test_validation(self):
        with pytest.raises(ValueError, match="num_queries"):
            ZipfWorkload(num_queries=0)
        with pytest.raises(ValueError, match="skew"):
            ZipfWorkload(skew=-1.0)
        with pytest.raises(ValueError, match="max_hops"):
            ZipfWorkload(program="khop")
        with pytest.raises(ValueError, match="unknown query program"):
            Query("components", source=0)
        with pytest.raises(ValueError, match="pool"):
            zipf_ranks(4, 0, 1.0, rng=1)
        with pytest.raises(ValueError, match="all vertices are isolated"):
            ZipfWorkload().sources(4, degrees=np.zeros(4))

    def test_describe_json_stable(self):
        spec = ZipfWorkload(num_queries=8, skew=0.5, pool=4, seed=2)
        assert json.loads(json.dumps(spec.describe())) == spec.describe()


# --------------------------------------------------------------------------- #
# Zipf weight vector: computed once per (pool, skew), bit-identical streams
# --------------------------------------------------------------------------- #
class TestZipfWeights:
    def test_weights_match_direct_computation(self):
        weights = zipf_weights(64, 1.25)
        expected = np.power(np.arange(1, 65, dtype=np.float64), -1.25)
        np.testing.assert_array_equal(weights, expected / expected.sum())
        assert weights.sum() == pytest.approx(1.0)

    def test_cache_returns_the_same_immutable_vector(self):
        first = zipf_weights(48, 1.0)
        second = zipf_weights(48, 1.0)
        assert first is second  # the O(pool) power/normalise ran once
        assert not first.flags.writeable
        with pytest.raises(ValueError):
            first[0] = 0.0

    def test_streams_bit_identical_through_the_cache(self):
        # Regression for the per-call recompute: the ranks drawn through the
        # cached vector must be bit-identical to drawing through a freshly
        # computed one — same rng consumption, same choice() input.
        fresh = np.power(np.arange(1, 33, dtype=np.float64), -1.5)
        fresh /= fresh.sum()
        from repro.utils.rng import make_rng

        expected = make_rng(9).choice(32, size=128, p=fresh)
        np.testing.assert_array_equal(zipf_ranks(128, 32, 1.5, rng=9), expected)
        np.testing.assert_array_equal(
            zipf_ranks(128, 32, 1.5, rng=9), zipf_ranks(128, 32, 1.5, rng=9)
        )

    def test_uniform_skew_zero(self):
        np.testing.assert_allclose(zipf_weights(10, 0.0), np.full(10, 0.1))

    def test_validation(self):
        with pytest.raises(ValueError, match="pool"):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError, match="skew"):
            zipf_weights(4, -0.5)


# --------------------------------------------------------------------------- #
# QueryService
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def engine(rmat_small, small_layout):
    graph = build_partitions(rmat_small, small_layout, threshold=16)
    return TraversalEngine(graph)


class TestQueryService:
    def test_answers_match_direct_engine_runs(self, engine):
        service = QueryService(engine, batch_size=4, cache_size=16)
        queries = [Query("levels", s) for s in (0, 5, 9, 100, 255)]
        results = service.serve(queries)
        for query, result in zip(queries, results):
            np.testing.assert_array_equal(
                result.distances, engine.run(BFSLevels(source=query.source)).distances
            )

    def test_khop_queries_served(self, engine):
        service = QueryService(engine, batch_size=4, cache_size=16)
        result = service.query(Query("khop", source=3, max_hops=2))
        np.testing.assert_array_equal(
            result.distances,
            engine.run(KHopReachability(source=3, max_hops=2)).distances,
        )

    def test_query_returns_own_result_with_pending_queue(self, engine):
        service = QueryService(engine, batch_size=4, cache_size=16)
        service.submit(Query("levels", 1))
        result = service.query(Query("levels", 2))
        np.testing.assert_array_equal(
            result.distances, engine.run(BFSLevels(source=2)).distances
        )
        assert service.pending == 0  # the earlier submission was flushed too
        assert service.cache.stats.misses == 2

    def test_cache_hits_across_flushes(self, engine):
        service = QueryService(engine, batch_size=4, cache_size=16)
        first = service.query(Query("levels", 7))
        second = service.query(Query("levels", 7))
        assert first is second  # served from cache, not re-traversed
        assert service.cache.stats.hits == 1
        assert service.stats.traversals == 1

    def test_coalescing_within_one_flush(self, engine):
        service = QueryService(engine, batch_size=8, cache_size=16)
        for _ in range(4):
            service.submit(Query("levels", 11))
        assert service.pending == 4
        results = service.flush()
        assert len(results) == 4
        assert all(r is results[0] for r in results)
        assert service.stats.coalesced == 3
        assert service.stats.traversals == 1
        assert service.pending == 0

    def test_eviction_forces_retraversal(self, engine):
        service = QueryService(engine, batch_size=1, cache_size=1)
        service.query(Query("levels", 0))
        service.query(Query("levels", 1))  # evicts source 0
        assert service.cache.stats.evictions == 1
        service.query(Query("levels", 0))  # miss again
        assert service.cache.stats.misses == 3
        assert service.stats.traversals == 3

    def test_batched_and_sequential_modes_agree(self, engine, rmat_small):
        from repro.graph.degree import out_degrees

        stream = ZipfWorkload(num_queries=48, skew=1.0, pool=12, seed=5).generate(
            rmat_small.num_vertices, degrees=out_degrees(rmat_small)
        )
        batched = QueryService(engine, batch_size=8, cache_size=8, batched=True)
        sequential = QueryService(engine, batch_size=8, cache_size=8, batched=False)
        results_b = batched.serve(stream)
        results_s = sequential.serve(stream)
        for a, b in zip(results_b, results_s):
            np.testing.assert_array_equal(a.distances, b.distances)
        assert batched.stats.batches > 0 and sequential.stats.batches == 0
        # Everything except the execution-mode split is identical.
        assert batched.stats.queries == sequential.stats.queries
        assert batched.stats.coalesced == sequential.stats.coalesced
        assert batched.cache.stats.as_dict() == sequential.cache.stats.as_dict()

    def test_wave_size_controls_admission(self, engine):
        service = QueryService(engine, batch_size=4, cache_size=16)
        service.serve([Query("levels", s) for s in range(6)], wave_size=2)
        assert service.stats.flushes == 3
        with pytest.raises(ValueError, match="wave_size"):
            service.serve([], wave_size=0)

    def test_mixed_families_batch_separately(self, engine):
        service = QueryService(engine, batch_size=8, cache_size=16)
        results = service.serve(
            [Query("levels", 0), Query("khop", 0, max_hops=1), Query("levels", 2)],
            wave_size=3,
        )
        assert results[0].distances[0] == 0
        assert results[1].max_hops == 1

    def test_two_identical_graphs_never_share_cache_keys(self, rmat_small, small_layout):
        # Regression: the key must include graph identity, not just
        # (options, program, source) — two separately-built graphs with
        # identical parameters must never collide, even sharing one cache.
        engine_a = TraversalEngine(build_partitions(rmat_small, small_layout, threshold=16))
        engine_b = TraversalEngine(build_partitions(rmat_small, small_layout, threshold=16))
        service_a = QueryService(engine_a, batch_size=2, cache_size=8)
        service_b = QueryService(engine_b, batch_size=2, cache_size=8)
        query = Query("levels", 7)
        assert service_a.key_of(query) != service_b.key_of(query)
        service_b.cache = service_a.cache  # worst case: a literally shared cache
        service_a.query(query)
        service_b.query(query)
        assert service_a.cache.stats.hits == 0  # b could not reuse a's entry
        assert service_a.cache.stats.misses == 2

    def test_graph_token_survives_id_recycling(self, rmat_small, small_layout):
        from repro.serve import graph_token

        tokens = set()
        for _ in range(3):
            graph = build_partitions(rmat_small, small_layout, threshold=16)
            tokens.add(graph_token(graph))
            del graph  # allow id() reuse; tokens must still be distinct
        assert len(tokens) == 3

    def test_stats_snapshot_json_stable(self, engine):
        service = QueryService(engine, batch_size=2, cache_size=4)
        service.query(Query("levels", 0))
        snapshot = service.stats_snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["service"]["queries"] == 1
        assert snapshot["service"]["queries_per_sec"] > 0

    def test_batch_size_validation(self, engine):
        with pytest.raises(ValueError, match="batch_size"):
            QueryService(engine, batch_size=0)

    def test_session_facade(self, rmat_small):
        service = (
            repro.session(layout="2x1x2").load(rmat_small).threshold(16).serve(batch_size=4)
        )
        result = service.query(Query("levels", 0))
        assert int(result.distances[0]) == 0

    # Cache capacities at/above the source pool keep the comparison
    # eviction-free (a coalesced duplicate refreshes LRU recency differently
    # from a per-query cache hit); the batch_size=1 case flushes per query,
    # so even its thrashing cache sees the identical lookup sequence.
    @pytest.mark.parametrize("batch_size,cache_size,batched", [
        (1, 1, True),
        (4, 16, True),
        (16, 64, True),
        (4, 16, False),
    ])
    def test_serve_equals_per_query_loop(self, engine, rmat_small, batch_size, cache_size, batched):
        from repro.graph.degree import out_degrees

        stream = ZipfWorkload(num_queries=32, skew=1.0, pool=10, seed=9).generate(
            rmat_small.num_vertices, degrees=out_degrees(rmat_small)
        )
        bulk = QueryService(
            engine, batch_size=batch_size, cache_size=cache_size, batched=batched
        )
        loop = QueryService(
            engine, batch_size=batch_size, cache_size=cache_size, batched=batched
        )
        bulk_results = bulk.serve(stream)
        loop_results = [loop.query(q) for q in stream]
        for a, b in zip(bulk_results, loop_results):
            np.testing.assert_array_equal(a.distances, b.distances)
        # The cache sees the same unique-miss sequence either way.
        assert bulk.cache.stats.misses == loop.cache.stats.misses

    def test_apply_delta_retains_pending_for_post_mutation_graph(
        self, rmat_small, small_layout
    ):
        from repro.dynamic import DynamicEngine, DynamicGraph
        from repro.dynamic.delta import update_stream

        def fresh_service():
            dyn = DynamicGraph(rmat_small, small_layout, 16)
            return QueryService(DynamicEngine(dyn), batch_size=4, cache_size=8)

        delta = update_stream(rmat_small, num_batches=1, edges_per_batch=64, seed=5)[0]
        service = fresh_service()
        tickets = [service.submit(Query("levels", s)) for s in (0, 3, 7)]
        service.apply_delta(delta, flush_pending=False)
        assert service.pending == 3  # retained, not flushed pre-mutation
        results = service.flush()

        # Ground truth: the same delta applied *before* any query.
        oracle = fresh_service()
        oracle.apply_delta(delta)
        for ticket, source in zip(tickets, (0, 3, 7)):
            np.testing.assert_array_equal(
                results[ticket].distances,
                oracle.query(Query("levels", source)).distances,
            )
        assert service.stats_snapshot()["graph_version"] == 1

    def test_stats_snapshot_schema(self, engine):
        service = QueryService(engine, batch_size=4, cache_size=8)
        service.query(Query("levels", 0))
        service.query(Query("levels", 0))  # one hit
        snapshot = service.stats_snapshot()
        assert snapshot["cache_hit_rate"] == pytest.approx(0.5)
        flush_wall = snapshot["flush_wall"]
        assert flush_wall["count"] == 2
        assert flush_wall["max_s"] >= flush_wall["mean_s"] > 0
        assert flush_wall["max_s"] == service.stats.flush_wall_max_s
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_flush_wall_zero_before_any_flush(self, engine):
        snapshot = QueryService(engine, batch_size=4, cache_size=8).stats_snapshot()
        assert snapshot["flush_wall"] == {"count": 0, "mean_s": 0.0, "max_s": 0.0}
        assert snapshot["cache_hit_rate"] == 0.0


# --------------------------------------------------------------------------- #
# Serving bench scenarios
# --------------------------------------------------------------------------- #
def tiny_serve_scenario(**overrides) -> Scenario:
    kwargs = dict(
        name="tiny-serve",
        kind="rmat",
        scale=8,
        program="serve",
        layout="2x1x2",
        threshold=8,
        batch_size=8,
        zipf_skew=1.0,
        num_queries=40,
        pool=24,
        cache_size=16,
        quick=True,
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


class TestServeScenarios:
    def test_record_structure(self):
        record = run_scenario(tiny_serve_scenario(), repeats=2)
        assert record["spec"]["program"] == "serve"
        assert record["spec"]["batch_size"] == 8
        assert record["wall_s"]["traversal"] > 0
        assert record["throughput"]["queries"] == 40
        assert record["throughput"]["queries_per_sec"] > 0
        assert record["throughput"]["batched"] is True
        assert record["counters"]["answers_checksum"] != 0
        assert json.loads(json.dumps(record)) == record

    def test_counters_mode_independent(self):
        batched = run_scenario(tiny_serve_scenario(), repeats=1, serve_batched=True)
        sequential = run_scenario(tiny_serve_scenario(), repeats=1, serve_batched=False)
        assert batched["counters"] == sequential["counters"]
        assert batched["throughput"]["batched"] is True
        assert sequential["throughput"]["batched"] is False
        assert batched["spec"] == sequential["spec"]

    def test_deterministic_across_runs(self):
        first = run_scenario(tiny_serve_scenario(), repeats=2)
        second = run_scenario(tiny_serve_scenario(), repeats=2)
        assert first["counters"] == second["counters"]

    def test_workload_accessor_guards(self):
        with pytest.raises(ValueError, match="not a serving scenario"):
            Scenario("x", "rmat", 8, "levels").workload()
        with pytest.raises(ValueError, match="no single frontier program"):
            tiny_serve_scenario().make_program(0)

    def test_cli_bench_run_includes_serve(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = main(
            [
                "bench", "run",
                "--scenario", "serve-rmat14-b16-zipf1.0",
                "--repeats", "1",
                "--output", str(out),
            ]
        )
        assert code == 0
        artifact = json.loads(out.read_text())
        record = artifact["scenarios"]["serve-rmat14-b16-zipf1.0"]
        assert record["throughput"]["queries_per_sec"] > 0
        assert "q/s" in capsys.readouterr().out


# --------------------------------------------------------------------------- #
# CLI: serve bench, --version, compare --fail-on
# --------------------------------------------------------------------------- #
class TestCLI:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert repro.__version__ in out

    def test_dunder_version_matches_pyproject(self):
        from pathlib import Path

        pyproject = Path(__file__).resolve().parents[1] / "pyproject.toml"
        assert f'version = "{repro.__version__}"' in pyproject.read_text()

    def test_serve_bench_json(self, capsys):
        code = main(
            [
                "serve", "bench",
                "--scale", "9",
                "--queries", "24",
                "--pool", "12",
                "--batch-size", "4",
                "--cache-size", "8",
                "--layout", "2x1x2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "q/s" in out and "speedup" in out

        code = main(
            [
                "serve", "bench",
                "--scale", "9",
                "--queries", "24",
                "--pool", "12",
                "--batch-size", "4",
                "--cache-size", "8",
                "--layout", "2x1x2",
                "--no-baseline",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["batched"]["service"]["queries"] == 24
        assert "sequential" not in payload
        # Satellite schema guard: the snapshot stays machine-consumable and
        # carries the derived cache_hit_rate and per-flush wall summary.
        snapshot = payload["batched"]
        assert 0.0 <= snapshot["cache_hit_rate"] <= 1.0
        assert snapshot["flush_wall"]["count"] > 0
        assert snapshot["flush_wall"]["max_s"] >= snapshot["flush_wall"]["mean_s"]

    @pytest.mark.parametrize("argv,message", [
        (["--rate", "100"], "only applies to open-loop"),
        (["--replicas", "3", "--slo-ms", "20"], "open-loop"),
        (["--arrivals", "poisson", "--rate", "-5"], "rate must be positive"),
        (["--arrivals", "poisson", "--replicas", "0"], "--replicas must be >= 1"),
        (["--arrivals", "bursty", "--queue-limit", "-1"], "--queue-limit must be >= 0"),
        (
            ["--arrivals", "poisson", "--replicas", "1", "--hedge-quantile", "0.9"],
            "needs --replicas >= 2",
        ),
        (
            ["--arrivals", "poisson", "--hedge-quantile", "1.5"],
            "must be in \\(0, 1\\)",
        ),
        (
            ["--arrivals", "poisson", "--no-hedge", "--hedge-quantile", "0.9"],
            "contradicts --no-hedge",
        ),
        (["--arrivals", "diurnal", "--slo-ms", "0"], "--slo-ms must be positive"),
    ])
    def test_serve_bench_rejects_nonsense_knobs(self, capsys, argv, message):
        import re

        code = main(["serve", "bench", "--scale", "9", *argv])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: ")
        assert re.search(message, captured.err)
        assert captured.out == ""  # nothing ran

    def test_serve_bench_open_loop_json(self, capsys):
        code = main(
            [
                "serve", "bench",
                "--scale", "9",
                "--queries", "32",
                "--pool", "16",
                "--batch-size", "4",
                "--cache-size", "8",
                "--layout", "2x1x2",
                "--arrivals", "bursty",
                "--rate", "4000",
                "--replicas", "2",
                "--queue-limit", "8",
                "--slo-ms", "20",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        counters = payload["counters"]
        assert counters["arrivals"] == 32
        assert counters["admitted"] + counters["shed"] == 32
        lat = payload["cluster"]["latency"]
        assert {"p50_ms", "p95_ms", "p99_ms", "slo_violations"} <= set(lat)
        assert lat["slo_ms"] == 20.0
        assert payload["replicas"] == 2
        assert len(payload["replica_snapshots"]) == 2
        assert payload["cluster"]["config"]["queue_limit"] == 8

    def test_serve_bench_open_loop_text_with_updates(self, capsys):
        code = main(
            [
                "serve", "bench",
                "--scale", "9",
                "--queries", "32",
                "--pool", "16",
                "--layout", "2x1x2",
                "--arrivals", "poisson",
                "--rate", "2000",
                "--update-rate", "0.1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "latency p50" in out
        assert "hedging:" in out
        assert "updates: 3 applied" in out

    def test_compare_fail_on_counters(self, tmp_path, capsys):
        from repro.bench import new_artifact, save_artifact

        def record(traversal_s: float, checksum: int) -> dict:
            return {
                "spec": {"kind": "rmat", "scale": 10, "program": "levels"},
                "repeats": 2,
                "wall_s": {"traversal": traversal_s},
                "modeled_ms": {"elapsed_ms": 1.0},
                "counters": {"values_checksum": checksum},
            }

        old = tmp_path / "old.json"
        save_artifact(new_artifact({"s": record(0.1, 42)}), old)

        # Pure wall regression: blocks under --fail-on any, passes counters.
        slow = tmp_path / "slow.json"
        save_artifact(new_artifact({"s": record(10.0, 42)}), slow)
        assert main(["bench", "compare", str(old), str(slow)]) == 1
        assert (
            main(["bench", "compare", str(old), str(slow), "--fail-on", "counters"]) == 0
        )
        assert main(["bench", "compare", str(old), str(slow), "--fail-on", "none"]) == 0

        # Counter drift: blocks under both any and counters.
        drift = tmp_path / "drift.json"
        save_artifact(new_artifact({"s": record(0.1, 43)}), drift)
        assert main(["bench", "compare", str(old), str(drift)]) == 1
        assert (
            main(["bench", "compare", str(old), str(drift), "--fail-on", "counters"]) == 1
        )
        capsys.readouterr()


# --------------------------------------------------------------------------- #
# Weighted queries (sssp / pagerank) through the service
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def weighted_engine(small_layout):
    from repro.graph.rmat import generate_rmat

    edges = generate_rmat(10, rng=1, weights_seed=5)
    return TraversalEngine(build_partitions(edges, small_layout, threshold=16))


class TestWeightedQueries:
    def test_sssp_answers_match_direct_engine_runs(self, weighted_engine):
        from repro.weighted import DeltaSteppingSSSP

        service = QueryService(weighted_engine, batch_size=4, cache_size=16)
        for source in (0, 7, 200):
            result = service.query(Query("sssp", source))
            direct = weighted_engine.run(DeltaSteppingSSSP(source, delta="auto"))
            np.testing.assert_array_equal(result.dist_bits, direct.dist_bits)

    def test_pagerank_answers_match_direct_engine_runs(self, weighted_engine):
        from repro.weighted import PageRank

        service = QueryService(weighted_engine, batch_size=4, cache_size=16)
        result = service.query(Query("pagerank", 0, iterations=8))
        direct = weighted_engine.run(PageRank(iterations=8))
        np.testing.assert_array_equal(result.ranks, direct.ranks)

    def test_parameters_are_part_of_the_cache_key(self, weighted_engine):
        service = QueryService(weighted_engine, batch_size=4, cache_size=16)
        narrow = service.query(Query("sssp", 3, delta=0.25))
        wide = service.query(Query("sssp", 3, delta=float("inf")))
        assert narrow is not wide  # same source, different delta: two entries
        assert service.stats.traversals == 2
        again = service.query(Query("sssp", 3, delta=0.25))
        assert again is narrow
        assert service.cache.stats.hits == 1

    def test_pagerank_coalesces_across_sources(self, weighted_engine):
        service = QueryService(weighted_engine, batch_size=8, cache_size=16)
        for source in (0, 5, 9, 100):
            service.submit(Query("pagerank", source, iterations=6))
        results = service.flush()
        # Ranking is source-free: four queries, one traversal, one answer.
        assert all(r is results[0] for r in results)
        assert service.stats.traversals == 1
        distinct = service.query(Query("pagerank", 0, iterations=7))
        assert distinct is not results[0]
        assert service.stats.traversals == 2

    def test_sssp_queries_run_sequentially_not_batched(self, weighted_engine):
        service = QueryService(weighted_engine, batch_size=8, cache_size=16)
        for source in (1, 2, 3):
            service.submit(Query("sssp", source))
        results = service.flush()
        assert len(results) == 3
        assert service.stats.traversals == 3
        assert service.stats.sequential_sources >= 3

    def test_sssp_on_unweighted_graph_rejected(self, engine):
        service = QueryService(engine, batch_size=4, cache_size=16)
        service.submit(Query("sssp", 0))
        with pytest.raises(ValueError, match="weights"):
            service.flush()

    def test_query_parameter_validation(self):
        with pytest.raises(ValueError, match="delta"):
            Query("levels", 0, delta=0.5)
        with pytest.raises(ValueError, match="iterations"):
            Query("pagerank", 0, iterations=0)
        with pytest.raises(ValueError, match="damping|pagerank"):
            Query("khop", 0, max_hops=2, damping=0.9)
