"""Tests for the weak/strong scaling experiment drivers."""

from __future__ import annotations

import pytest

from repro.core.options import BFSOptions
from repro.partition.layout import ClusterLayout
from repro.perfmodel.scaling import run_configuration, strong_scaling_sweep, weak_scaling_sweep


class TestRunConfiguration:
    def test_returns_aggregated_point(self):
        point = run_configuration(
            scale=11, layout=ClusterLayout(2, 2), threshold=32, num_sources=4, seed=3
        )
        assert point.num_gpus == 4
        assert point.gteps_geo_mean > 0
        assert point.elapsed_ms_geo_mean > 0
        assert point.num_sources >= 1
        assert point.threshold == 32
        row = point.as_dict()
        assert {"scale", "layout", "gteps", "computation_ms"} <= set(row)

    def test_threshold_suggestion_used_when_none(self):
        point = run_configuration(scale=11, layout=ClusterLayout(1, 2), num_sources=3, seed=3)
        assert point.threshold > 0

    def test_do_off_is_slower_or_equal_in_computation(self):
        on = run_configuration(
            scale=12, layout=ClusterLayout(2, 2), threshold=32, num_sources=4, seed=5
        )
        off = run_configuration(
            scale=12,
            layout=ClusterLayout(2, 2),
            threshold=32,
            options=BFSOptions(direction_optimized=False),
            num_sources=4,
            seed=5,
        )
        assert on.breakdown.computation <= off.breakdown.computation


class TestSweeps:
    def test_weak_scaling_keeps_per_gpu_scale(self):
        points = weak_scaling_sweep(
            scale_per_gpu=10, gpu_counts=[1, 2, 4], gpus_per_rank=2, num_sources=3, seed=7
        )
        assert [p.num_gpus for p in points] == [1, 2, 4]
        assert [p.scale for p in points] == [10, 11, 12]

    def test_strong_scaling_fixes_scale(self):
        points = strong_scaling_sweep(
            scale=12, gpu_counts=[2, 4], gpus_per_rank=2, num_sources=3, seed=7
        )
        assert all(p.scale == 12 for p in points)
        assert [p.num_gpus for p in points] == [2, 4]

    def test_invalid_gpu_count_rejected(self):
        with pytest.raises(ValueError):
            weak_scaling_sweep(10, [0])
        with pytest.raises(ValueError):
            strong_scaling_sweep(10, [-1])
