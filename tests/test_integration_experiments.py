"""Integration tests exercising whole experiment pipelines at reduced size.

These mirror the benchmark harnesses but run at very small scale so the test
suite stays fast; their purpose is to assert the *qualitative* claims of the
paper that the benchmarks then report quantitatively.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import DistributedBFS
from repro.core.options import BFSOptions
from repro.graph.generators import friendster_like, wdc_like
from repro.graph.rmat import generate_rmat
from repro.partition.delegates import census_for_thresholds, suggest_threshold
from repro.partition.layout import ClusterLayout
from repro.partition.memory import memory_usage
from repro.partition.subgraphs import build_partitions
from repro.perfmodel.scaling import run_configuration
from repro.perfmodel.teps import rmat_counted_edges


@pytest.fixture(scope="module")
def rmat13():
    return generate_rmat(13, rng=4)


class TestFigure5Shape:
    def test_edge_distribution_crossover(self, rmat13):
        """Fig 5: at tiny TH everything is dd, at huge TH everything is nn,
        and the nd+dn share peaks somewhere in between."""
        censuses = census_for_thresholds(rmat13, [1, 4, 16, 64, 256, 2048, 1 << 20])
        assert censuses[0].dd_percentage > 90
        assert censuses[-1].nn_percentage > 99
        middle_nddn = max(c.nd_dn_percentage for c in censuses[1:-1])
        assert middle_nddn > censuses[0].nd_dn_percentage
        assert middle_nddn > censuses[-1].nd_dn_percentage


class TestFigure6And7Shape:
    def test_suggested_threshold_grows_with_scale(self):
        """Fig 7: along the weak-scaling curve (a fixed per-GPU scale, so the
        GPU count doubles with every scale step), the suggested TH grows."""
        ths = []
        for scale in [10, 12, 14]:
            edges = generate_rmat(scale, rng=2)
            gpus = 2 ** (scale - 10)
            ths.append(suggest_threshold(edges, num_gpus=max(1, gpus)))
        assert ths[0] <= ths[1] <= ths[2]
        assert ths[2] > ths[0]

    def test_threshold_controls_communication_tradeoff(self, rmat13):
        """Fig 6's mechanism: a tiny TH shifts traffic into delegate masks, a
        huge TH shifts it into the normal point-to-point exchange, and the
        mid-range threshold keeps both small."""
        layout = ClusterLayout(2, 2)
        counted = rmat_counted_edges(13)
        src = int(np.argmax(np.bincount(rmat13.src, minlength=rmat13.num_vertices)))
        runs = {}
        for th in [2, 64, 1 << 18]:
            graph = build_partitions(rmat13, layout, th)
            runs[th] = DistributedBFS(graph).run(src)
        # Mask traffic shrinks as TH grows; normal-exchange traffic grows.
        assert runs[2].comm_stats.delegate_mask_bytes > runs[64].comm_stats.delegate_mask_bytes
        assert runs[1 << 18].comm_stats.delegate_mask_bytes == 0
        assert runs[64].comm_stats.normal_bytes_remote < runs[1 << 18].comm_stats.normal_bytes_remote
        # All configurations produce a usable rate and identical answers.
        for result in runs.values():
            assert result.gteps(counted) > 0
            np.testing.assert_array_equal(result.distances, runs[64].distances)


class TestFigure8Shape:
    def test_do_cuts_computation_time(self, rmat13):
        """Fig 8: DO cuts the computation part of the runtime by a large factor.

        At laptop scale the fixed kernel-launch overheads would mask the
        saving, so this test uses a hardware spec with negligible overheads —
        the regime the paper's billion-edge graphs are in anyway.
        """
        from repro.cluster.hardware import HardwareSpec

        hw = HardwareSpec(kernel_overhead_s=2e-7, iteration_overhead_s=2e-7)
        layout = ClusterLayout(4, 1)
        graph = build_partitions(rmat13, layout, 64)
        src = int(np.argmax(np.bincount(rmat13.src, minlength=rmat13.num_vertices)))
        plain = DistributedBFS(
            graph, options=BFSOptions(direction_optimized=False), hardware=hw
        ).run(src)
        optimized = DistributedBFS(graph, options=BFSOptions(), hardware=hw).run(src)
        assert optimized.timing.computation < 0.6 * plain.timing.computation

    def test_blocking_reduce_faster_than_nonblocking(self, rmat13):
        """Fig 8: BR beats IR on the modeled Ray network at >= 8 ranks."""
        layout = ClusterLayout(8, 1)
        graph = build_partitions(rmat13, layout, 64)
        src = int(np.argmax(np.bincount(rmat13.src, minlength=rmat13.num_vertices)))
        br = DistributedBFS(graph, options=BFSOptions(blocking_reduce=True)).run(src)
        ir = DistributedBFS(graph, options=BFSOptions(blocking_reduce=False)).run(src)
        assert br.timing.remote_delegate_reduce < ir.timing.remote_delegate_reduce
        np.testing.assert_array_equal(br.distances, ir.distances)


class TestScalingShape:
    def test_weak_scaling_aggregate_rate_grows(self):
        """Fig 9: aggregate GTEPS increases as GPUs (and the graph) grow."""
        small = run_configuration(scale=11, layout=ClusterLayout(1, 2), threshold=32, num_sources=4, seed=9)
        large = run_configuration(scale=13, layout=ClusterLayout(4, 2), threshold=45, num_sources=4, seed=9)
        assert large.gteps_geo_mean > small.gteps_geo_mean

    def test_strong_scaling_communication_share_grows(self):
        """Fig 11: with a fixed graph, more GPUs means communication takes a
        growing share of the runtime (which eventually flattens the curve)."""
        edges = generate_rmat(13, rng=4)
        src = int(np.argmax(np.bincount(edges.src, minlength=edges.num_vertices)))
        shares = []
        for ranks in [2, 8]:
            layout = ClusterLayout(ranks, 2)
            graph = build_partitions(edges, layout, 64)
            result = DistributedBFS(graph).run(src)
            comm = (
                result.timing.remote_normal_exchange
                + result.timing.remote_delegate_reduce
                + result.timing.local_communication
            )
            shares.append(comm / result.timing.parts_sum())
        assert shares[1] > shares[0]


class TestTable1Shape:
    def test_memory_about_a_third_of_edge_list(self, rmat13):
        layout = ClusterLayout(2, 2)
        th = suggest_threshold(rmat13, layout.num_gpus)
        graph = build_partitions(rmat13, layout, th)
        analytic, measured = memory_usage(graph)
        assert 0.25 < analytic.vs_edge_list < 0.5
        assert 0.4 < analytic.vs_plain_csr < 0.8
        assert measured.partitioned_bytes == pytest.approx(analytic.partitioned_bytes, rel=0.2)


class TestGeneralGraphs:
    def test_friendster_like_pipeline(self):
        """Figs 12-13: the social-network substitute runs end to end and has a
        wide band of acceptable thresholds."""
        edges = friendster_like(num_vertices=1 << 12, rng=6).prepared()
        layout = ClusterLayout(2, 2)
        censuses = census_for_thresholds(edges, [16, 64, 128])
        assert censuses[0].delegate_percentage > censuses[-1].delegate_percentage
        graph = build_partitions(edges, layout, 32)
        deg = np.bincount(edges.src, minlength=edges.num_vertices)
        src = int(np.argmax(deg))
        result = DistributedBFS(graph).run(src)
        assert result.num_visited > edges.num_vertices * 0.25

    def test_wdc_like_long_tail_makes_do_unattractive(self):
        """§VI-D: on a long-tail graph DOBFS is not faster than plain BFS."""
        edges = wdc_like(num_vertices=1 << 12, rng=6).prepared()
        layout = ClusterLayout(2, 2)
        graph = build_partitions(edges, layout, 64)
        deg = np.bincount(edges.src, minlength=edges.num_vertices)
        src = int(np.argmax(deg))
        plain = DistributedBFS(graph, options=BFSOptions(direction_optimized=False)).run(src)
        do = DistributedBFS(graph, options=BFSOptions()).run(src)
        np.testing.assert_array_equal(plain.distances, do.distances)
        assert plain.iterations > 30  # long tail
        # The workload saving of DO is marginal here (within 40% of plain),
        # unlike the >3x saving on RMAT.
        assert do.total_edges_examined > 0.3 * plain.total_edges_examined
