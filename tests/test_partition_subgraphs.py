"""Tests for per-GPU subgraph construction and its invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.rmat import generate_rmat
from repro.partition.layout import ClusterLayout
from repro.partition.subgraphs import build_partitions


@pytest.fixture(scope="module")
def partitioned(rmat_small_module, layout_module):
    return build_partitions(rmat_small_module, layout_module, threshold=32)


@pytest.fixture(scope="module")
def rmat_small_module():
    return generate_rmat(11, rng=1)


@pytest.fixture(scope="module")
def layout_module():
    return ClusterLayout(num_ranks=2, gpus_per_rank=2)


class TestEdgeConservation:
    def test_every_edge_stored_exactly_once(self, partitioned, rmat_small_module):
        assert partitioned.total_stored_edges() == rmat_small_module.num_edges

    def test_subgraph_edge_totals_match_census(self, partitioned):
        census = partitioned.census
        totals = {"nn": 0, "nd": 0, "dn": 0, "dd": 0}
        for gpu in partitioned.gpus:
            totals["nn"] += gpu.nn.num_edges
            totals["nd"] += gpu.nd.num_edges
            totals["dn"] += gpu.dn.num_edges
            totals["dd"] += gpu.dd.num_edges
        assert totals["nn"] == census.nn_edges
        assert totals["nd"] == census.nd_edges
        assert totals["dn"] == census.dn_edges
        assert totals["dd"] == census.dd_edges

    def test_reconstructed_global_edges_match_input(self, partitioned, rmat_small_module):
        """Decoding every stored subgraph edge back to global ids recovers the input."""
        layout = partitioned.layout
        delegates = partitioned.delegate_vertices
        recovered = set()
        for gpu in partitioned.gpus:
            owned = gpu.owned_global_ids()
            # nn: local slot -> global id
            s, d = gpu.nn.gather_neighbors(np.arange(gpu.num_local))
            for u, v in zip(owned[s], np.asarray(d, dtype=np.int64)):
                recovered.add((int(u), int(v)))
            # nd: local slot -> delegate id
            s, d = gpu.nd.gather_neighbors(np.arange(gpu.num_local))
            for u, v in zip(owned[s], delegates[np.asarray(d, dtype=np.int64)]):
                recovered.add((int(u), int(v)))
            # dn: delegate id -> local slot
            if gpu.dn.num_rows:
                s, d = gpu.dn.gather_neighbors(np.arange(gpu.dn.num_rows))
                for u, v in zip(delegates[s], owned[np.asarray(d, dtype=np.int64)]):
                    recovered.add((int(u), int(v)))
            # dd: delegate id -> delegate id
            if gpu.dd.num_rows:
                s, d = gpu.dd.gather_neighbors(np.arange(gpu.dd.num_rows))
                for u, v in zip(delegates[s], delegates[np.asarray(d, dtype=np.int64)]):
                    recovered.add((int(u), int(v)))
        expected = {
            (int(u), int(v)) for u, v in zip(rmat_small_module.src, rmat_small_module.dst)
        }
        assert recovered == expected


class TestLocalStructure:
    def test_nd_and_dn_are_local_transposes(self, partitioned):
        """For a symmetric graph, nd and dn on each GPU must be each other's reverse."""
        for gpu in partitioned.gpus:
            nd_edges = set()
            s, d = gpu.nd.gather_neighbors(np.arange(gpu.num_local))
            for u, v in zip(s, np.asarray(d, dtype=np.int64)):
                nd_edges.add((int(u), int(v)))
            dn_edges = set()
            if gpu.dn.num_rows:
                s, d = gpu.dn.gather_neighbors(np.arange(gpu.dn.num_rows))
                for u, v in zip(s, np.asarray(d, dtype=np.int64)):
                    dn_edges.add((int(v), int(u)))  # reversed
            assert nd_edges == dn_edges

    def test_dd_is_locally_symmetric(self, partitioned):
        for gpu in partitioned.gpus:
            if gpu.dd.num_rows == 0:
                continue
            s, d = gpu.dd.gather_neighbors(np.arange(gpu.dd.num_rows))
            edges = {(int(u), int(v)) for u, v in zip(s, np.asarray(d, dtype=np.int64))}
            assert edges == {(v, u) for u, v in edges}

    def test_column_dtypes_follow_table1(self, partitioned):
        for gpu in partitioned.gpus:
            assert gpu.nn.column_dtype == np.int64
            assert gpu.nd.column_dtype == np.int32
            assert gpu.dn.column_dtype == np.int32
            assert gpu.dd.column_dtype == np.int32

    def test_bounded_column_ranges(self, partitioned):
        d = partitioned.num_delegates
        for gpu in partitioned.gpus:
            if gpu.nd.num_edges:
                assert gpu.nd.column_indices.max() < d
            if gpu.dn.num_edges:
                assert gpu.dn.column_indices.max() < gpu.num_local
            if gpu.dd.num_edges:
                assert gpu.dd.column_indices.max() < d

    def test_source_lists_and_masks(self, partitioned):
        for gpu in partitioned.gpus:
            np.testing.assert_array_equal(
                gpu.nd_source_list, np.flatnonzero(gpu.nd.out_degrees() > 0)
            )
            np.testing.assert_array_equal(
                gpu.dn_source_mask, gpu.dn.out_degrees() > 0
            )
            np.testing.assert_array_equal(
                gpu.dd_source_mask, gpu.dd.out_degrees() > 0
            )

    def test_local_is_normal_consistent_with_separation(self, partitioned):
        sep = partitioned.separation
        for gpu in partitioned.gpus:
            owned = gpu.owned_global_ids()
            np.testing.assert_array_equal(gpu.local_is_normal, ~sep.is_delegate[owned])


class TestEdgeCasesAndErrors:
    def test_no_delegates_configuration(self, rmat_small_module, layout_module):
        graph = build_partitions(rmat_small_module, layout_module, threshold=10**9)
        assert graph.num_delegates == 0
        for gpu in graph.gpus:
            assert gpu.nd.num_edges == 0
            assert gpu.dn.num_edges == 0
            assert gpu.dd.num_edges == 0
        assert graph.total_stored_edges() == rmat_small_module.num_edges

    def test_all_delegates_configuration(self, rmat_small_module, layout_module):
        graph = build_partitions(rmat_small_module, layout_module, threshold=0)
        assert graph.census.dd_percentage == pytest.approx(100.0)
        for gpu in graph.gpus:
            assert gpu.nn.num_edges == 0

    def test_more_gpus_than_vertices(self):
        tiny = generate_rmat(2, rng=1)
        layout = ClusterLayout(num_ranks=4, gpus_per_rank=2)
        graph = build_partitions(tiny, layout, threshold=2)
        assert graph.total_stored_edges() == tiny.num_edges

    def test_separation_threshold_mismatch_rejected(self, rmat_small_module, layout_module):
        from repro.partition.delegates import separate_by_degree

        sep = separate_by_degree(rmat_small_module, 8)
        with pytest.raises(ValueError):
            build_partitions(rmat_small_module, layout_module, threshold=16, separation=sep)

    def test_owner_and_delegate_lookup_helpers(self, partitioned):
        layout = partitioned.layout
        v = np.arange(partitioned.num_vertices)
        np.testing.assert_array_equal(
            partitioned.owner_of_vertex(v), layout.flat_gpu_of(v)
        )
        np.testing.assert_array_equal(
            partitioned.delegate_id_of_vertex(partitioned.delegate_vertices),
            np.arange(partitioned.num_delegates),
        )
