"""Correctness and behaviour tests for the distributed BFS engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.serial_bfs import serial_bfs
from repro.core.engine import DistributedBFS
from repro.core.options import BFSOptions
from repro.graph.csr import CSRGraph
from repro.graph.degree import out_degrees
from repro.partition.layout import ClusterLayout
from repro.partition.subgraphs import build_partitions
from repro.validate.graph500 import validate_distances


@pytest.fixture(scope="module")
def rmat_csr_ref(request):
    return None


def reference_distances(edges, source):
    return serial_bfs(CSRGraph.from_edgelist(edges), source)


class TestCorrectnessAcrossConfigurations:
    @pytest.mark.parametrize("threshold", [4, 32, 10**9])
    @pytest.mark.parametrize("do", [True, False])
    def test_matches_serial_oracle(self, rmat_small, any_layout, threshold, do):
        graph = build_partitions(rmat_small, any_layout, threshold)
        engine = DistributedBFS(graph, options=BFSOptions(direction_optimized=do))
        for source in [0, 7, 1234]:
            result = engine.run(source)
            ref = reference_distances(rmat_small, source)
            np.testing.assert_array_equal(result.distances, ref)

    def test_exchange_optimizations_do_not_change_answers(self, rmat_small, small_layout):
        graph = build_partitions(rmat_small, small_layout, 32)
        base = DistributedBFS(graph, options=BFSOptions()).run(3)
        tuned = DistributedBFS(
            graph,
            options=BFSOptions(local_all2all=True, uniquify=True, blocking_reduce=False),
        ).run(3)
        np.testing.assert_array_equal(base.distances, tuned.distances)

    def test_delegate_source(self, rmat_small, small_layout):
        graph = build_partitions(rmat_small, small_layout, 32)
        source = int(graph.delegate_vertices[0])
        result = DistributedBFS(graph).run(source)
        np.testing.assert_array_equal(result.distances, reference_distances(rmat_small, source))

    def test_isolated_source_terminates_after_one_iteration(self, rmat_small, small_layout):
        deg = out_degrees(rmat_small)
        isolated = np.flatnonzero(deg == 0)
        if isolated.size == 0:
            pytest.skip("fixture graph has no isolated vertices")
        graph = build_partitions(rmat_small, small_layout, 32)
        result = DistributedBFS(graph).run(int(isolated[0]))
        assert result.num_visited == 1
        assert result.iterations <= 1
        assert not result.traversed_more_than_one_iteration()

    def test_star_graph_two_levels(self, star_graph):
        layout = ClusterLayout(2, 2)
        graph = build_partitions(star_graph, layout, threshold=5)
        result = DistributedBFS(graph).run(0)
        assert result.depth == 1 if out_degrees(star_graph)[0] > 0 else 0
        np.testing.assert_array_equal(result.distances, reference_distances(star_graph, 0))

    def test_path_graph_long_diameter(self, path_graph):
        layout = ClusterLayout(2, 2)
        graph = build_partitions(path_graph, layout, threshold=4)
        result = DistributedBFS(graph).run(0)
        np.testing.assert_array_equal(result.distances, reference_distances(path_graph, 0))
        assert result.depth == 49
        # One trailing super-step discovers nothing and terminates the run.
        assert result.iterations == result.depth + 1

    def test_grid_graph(self, grid_graph, small_layout):
        graph = build_partitions(grid_graph, small_layout, threshold=3)
        result = DistributedBFS(graph).run(0)
        np.testing.assert_array_equal(result.distances, reference_distances(grid_graph, 0))

    def test_validates_against_graph500_rules(self, rmat_small, small_layout):
        graph = build_partitions(rmat_small, small_layout, 32)
        result = DistributedBFS(graph).run(42)
        report = validate_distances(rmat_small, 42, result.distances)
        report.raise_if_invalid()

    def test_out_of_range_source_rejected(self, rmat_small, small_layout):
        graph = build_partitions(rmat_small, small_layout, 32)
        with pytest.raises(ValueError):
            DistributedBFS(graph).run(rmat_small.num_vertices)


class TestResultMetrics:
    @pytest.fixture(scope="class")
    def result(self, rmat_small):
        layout = ClusterLayout(2, 2)
        graph = build_partitions(rmat_small, layout, 32)
        return DistributedBFS(graph).run(5)

    def test_iterations_equal_depth(self, result):
        assert result.iterations >= result.depth

    def test_timing_breakdown_is_positive_and_consistent(self, result):
        timing = result.timing
        assert timing.elapsed_ms > 0
        assert timing.computation > 0
        # Overlap means elapsed <= sum of parts.
        assert timing.elapsed_ms <= timing.parts_sum() + 1e-9
        assert timing.iterations == result.iterations
        assert len(timing.per_iteration) == result.iterations

    def test_teps_positive_and_scales_with_counted_edges(self, result):
        assert result.gteps() > 0
        assert result.teps(1000) == pytest.approx(result.teps(2000) / 2)

    def test_records_cover_every_iteration(self, result):
        assert len(result.records) == result.iterations
        assert [r.iteration for r in result.records] == list(range(1, result.iterations + 1))

    def test_workload_accounting(self, result):
        per_kernel = result.workload_by_kernel()
        assert sum(per_kernel.values()) == result.total_edges_examined
        assert set(per_kernel) == {"nn", "nd", "dn", "dd"}

    def test_comm_stats_present(self, result):
        stats = result.comm_stats
        assert stats.delegate_reductions > 0
        assert stats.normal_vertices_sent >= 0

    def test_summary_keys(self, result):
        summary = result.summary()
        assert {"gteps", "elapsed_ms", "iterations", "visited"} <= set(summary)

    def test_zero_elapsed_teps_raises(self, result):
        from dataclasses import replace

        from repro.utils.timing import TimingBreakdown

        broken = replace(result, timing=TimingBreakdown())
        with pytest.raises(ValueError):
            broken.teps()


class TestDirectionOptimizationBehaviour:
    def test_do_reduces_examined_edges_on_rmat(self, rmat_medium):
        """The headline claim: DO cuts traversal workload on scale-free graphs."""
        layout = ClusterLayout(2, 2)
        graph = build_partitions(rmat_medium, layout, 64)
        src = int(np.argmax(out_degrees(rmat_medium)))
        plain = DistributedBFS(graph, options=BFSOptions(direction_optimized=False)).run(src)
        optimized = DistributedBFS(graph, options=BFSOptions(direction_optimized=True)).run(src)
        np.testing.assert_array_equal(plain.distances, optimized.distances)
        assert optimized.total_edges_examined < 0.7 * plain.total_edges_examined

    def test_do_switches_some_kernel_backward(self, rmat_medium):
        layout = ClusterLayout(2, 2)
        graph = build_partitions(rmat_medium, layout, 64)
        src = int(np.argmax(out_degrees(rmat_medium)))
        result = DistributedBFS(graph, options=BFSOptions()).run(src)
        backward_events = sum(
            sum(rec.directions.values()) for rec in result.records
        )
        assert backward_events > 0

    def test_plain_bfs_never_goes_backward(self, rmat_small, small_layout):
        graph = build_partitions(rmat_small, small_layout, 32)
        result = DistributedBFS(graph, options=BFSOptions(direction_optimized=False)).run(3)
        assert all(sum(rec.directions.values()) == 0 for rec in result.records)

    def test_nn_workload_unaffected_by_do(self, rmat_small, small_layout):
        """nn visits never use DO, so their total workload must be identical."""
        graph = build_partitions(rmat_small, small_layout, 32)
        plain = DistributedBFS(graph, options=BFSOptions(direction_optimized=False)).run(3)
        opt = DistributedBFS(graph, options=BFSOptions(direction_optimized=True)).run(3)
        assert plain.workload_by_kernel()["nn"] == opt.workload_by_kernel()["nn"]


class TestEngineConfigurations:
    def test_run_many(self, rmat_small, small_layout):
        graph = build_partitions(rmat_small, small_layout, 32)
        results = DistributedBFS(graph).run_many([0, 1, 2])
        assert len(results) == 3
        assert [r.source for r in results] == [0, 1, 2]

    def test_single_gpu_layout_has_no_remote_traffic(self, rmat_small):
        graph = build_partitions(rmat_small, ClusterLayout(1, 1), 32)
        result = DistributedBFS(graph).run(3)
        assert result.comm_stats.normal_bytes_remote == 0
        assert result.comm_stats.delegate_mask_bytes == 0
        np.testing.assert_array_equal(result.distances, reference_distances(rmat_small, 3))

    def test_no_delegate_graph_runs_pure_nn_path(self, rmat_small, small_layout):
        graph = build_partitions(rmat_small, small_layout, 10**9)
        result = DistributedBFS(graph).run(3)
        np.testing.assert_array_equal(result.distances, reference_distances(rmat_small, 3))
        per_kernel = result.workload_by_kernel()
        assert per_kernel["nd"] == 0 and per_kernel["dn"] == 0 and per_kernel["dd"] == 0
        assert result.comm_stats.delegate_reductions == 0

    def test_max_iterations_guard(self, path_graph):
        graph = build_partitions(path_graph, ClusterLayout(1, 2), 4)
        engine = DistributedBFS(graph, options=BFSOptions(max_iterations=5))
        with pytest.raises(RuntimeError):
            engine.run(0)

    def test_custom_hardware_changes_modeled_time_not_answers(self, rmat_small, small_layout):
        from repro.cluster.hardware import HardwareSpec

        graph = build_partitions(rmat_small, small_layout, 32)
        fast = DistributedBFS(
            graph, hardware=HardwareSpec(nic_bandwidth_Bps=100e9, staging_copies=0)
        ).run(3)
        slow = DistributedBFS(
            graph, hardware=HardwareSpec(nic_bandwidth_Bps=1e9)
        ).run(3)
        np.testing.assert_array_equal(fast.distances, slow.distances)
        assert fast.timing.elapsed_ms < slow.timing.elapsed_ms
