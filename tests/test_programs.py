"""Tests for the frontier-program API: parents, components, k-hop, custom programs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.serial_bfs import serial_bfs
from repro.baselines.union_find import serial_components, union_find_components
from repro.core.engine import DistributedBFS, TraversalEngine
from repro.core.options import BFSOptions
from repro.core.programs import (
    BFSLevels,
    BFSParents,
    ConnectedComponents,
    FrontierProgram,
    KHopReachability,
)
from repro.core.results import (
    BFSResult,
    ComponentsResult,
    ParentTreeResult,
    ReachabilityResult,
)
from repro.graph.csr import CSRGraph
from repro.graph.degree import out_degrees
from repro.graph.rmat import generate_rmat
from repro.partition.layout import ClusterLayout
from repro.partition.subgraphs import build_partitions
from repro.validate.graph500 import validate_parent_tree


def assert_valid_parent_tree(edges, source, parents, reference):
    """Property check: the parent array is a valid BFS tree.

    * the source parents itself, unreached vertices hold -1;
    * tree membership matches the reference reachable set;
    * every tree edge exists in the graph;
    * every parent sits exactly one level closer than its child.
    """
    validate_parent_tree(edges, source, parents, reference).raise_if_invalid()


class TestBFSLevelsEquivalence:
    """The acceptance bar: the generic engine reproduces the seed BFS exactly."""

    def test_identical_to_wrapper_across_sources(self, rmat_small, small_layout):
        graph = build_partitions(rmat_small, small_layout, 32)
        engine = TraversalEngine(graph)
        wrapper = DistributedBFS(graph)
        for source in [0, 7, 1234]:
            generic = engine.run(BFSLevels(source=source))
            wrapped = wrapper.run(source)
            np.testing.assert_array_equal(generic.distances, wrapped.distances)
            assert generic.iterations == wrapped.iterations
            assert generic.timing.elapsed_ms == wrapped.timing.elapsed_ms
            assert generic.timing.computation == wrapped.timing.computation
            assert (
                generic.timing.remote_delegate_reduce
                == wrapped.timing.remote_delegate_reduce
            )
            assert generic.total_edges_examined == wrapped.total_edges_examined

    def test_levels_result_type_and_algorithm(self, rmat_small, small_layout):
        graph = build_partitions(rmat_small, small_layout, 32)
        result = TraversalEngine(graph).run(BFSLevels(source=0))
        assert isinstance(result, BFSResult)
        assert result.algorithm == "bfs"
        assert result.summary()["algorithm"] == "bfs"

    def test_out_of_range_source_rejected(self, rmat_small, small_layout):
        graph = build_partitions(rmat_small, small_layout, 32)
        engine = TraversalEngine(graph)
        with pytest.raises(ValueError):
            engine.run(BFSLevels(source=rmat_small.num_vertices))
        with pytest.raises(ValueError):
            engine.run(BFSParents(source=-1))


class TestBFSParents:
    @pytest.mark.parametrize("threshold", [4, 32, 10**9])
    @pytest.mark.parametrize("do", [True, False])
    def test_valid_tree_across_configurations(self, rmat_small, any_layout, threshold, do):
        graph = build_partitions(rmat_small, any_layout, threshold)
        engine = TraversalEngine(graph, options=BFSOptions(direction_optimized=do))
        csr = CSRGraph.from_edgelist(rmat_small)
        for source in [0, 7, 1234]:
            result = engine.run(BFSParents(source=source))
            assert isinstance(result, ParentTreeResult)
            reference = serial_bfs(csr, source)
            assert_valid_parent_tree(rmat_small, source, result.parents, reference)

    def test_property_random_rmat_graphs(self, small_layout):
        """Property sweep: random graphs, random sources, DO on (pull paths hot)."""
        rng = np.random.default_rng(5)
        for scale, seed in [(9, 3), (10, 4), (11, 5)]:
            edges = generate_rmat(scale, rng=seed)
            graph = build_partitions(edges, small_layout, 16)
            engine = TraversalEngine(graph)
            csr = CSRGraph.from_edgelist(edges)
            degrees = out_degrees(edges)
            candidates = np.flatnonzero(degrees > 0)
            for source in rng.choice(candidates, size=3, replace=False):
                source = int(source)
                result = engine.run(BFSParents(source=source))
                reference = serial_bfs(csr, source)
                assert_valid_parent_tree(edges, source, result.parents, reference)
                # Parent distance = child distance - 1, checked directly too.
                children = np.flatnonzero(result.parents >= 0)
                children = children[children != source]
                parents = result.parents[children]
                np.testing.assert_array_equal(
                    reference[parents], reference[children] - 1
                )

    def test_delegate_source(self, rmat_small, small_layout):
        graph = build_partitions(rmat_small, small_layout, 32)
        source = int(graph.delegate_vertices[0])
        result = TraversalEngine(graph).run(BFSParents(source=source))
        reference = serial_bfs(CSRGraph.from_edgelist(rmat_small), source)
        assert_valid_parent_tree(rmat_small, source, result.parents, reference)

    def test_exchange_optimizations_preserve_validity(self, rmat_small, small_layout):
        graph = build_partitions(rmat_small, small_layout, 32)
        engine = TraversalEngine(
            graph,
            options=BFSOptions(local_all2all=True, uniquify=True, blocking_reduce=False),
        )
        reference = serial_bfs(CSRGraph.from_edgelist(rmat_small), 3)
        result = engine.run(BFSParents(source=3))
        assert_valid_parent_tree(rmat_small, 3, result.parents, reference)

    def test_parents_visit_same_set_as_levels(self, rmat_small, small_layout):
        graph = build_partitions(rmat_small, small_layout, 32)
        engine = TraversalEngine(graph)
        levels = engine.run(BFSLevels(source=3))
        parents = engine.run(BFSParents(source=3))
        np.testing.assert_array_equal(parents.parents >= 0, levels.distances >= 0)
        assert parents.num_visited == levels.num_visited

    def test_parent_payloads_are_charged(self, rmat_small, small_layout):
        """The parent exchange ships real bytes the level exchange does not."""
        graph = build_partitions(rmat_small, small_layout, 32)
        engine = TraversalEngine(graph)
        levels = engine.run(BFSLevels(source=3))
        parents = engine.run(BFSParents(source=3))
        assert parents.comm_stats.normal_payload_bytes > 0
        assert levels.comm_stats.normal_payload_bytes == 0
        assert parents.comm_stats.delegate_value_bytes > 0
        assert levels.comm_stats.delegate_value_bytes == 0

    def test_tree_edges_helper(self, rmat_small, small_layout):
        graph = build_partitions(rmat_small, small_layout, 32)
        result = TraversalEngine(graph).run(BFSParents(source=3))
        tree = result.tree_edges()
        assert tree.shape == (result.num_visited - 1, 2)
        np.testing.assert_array_equal(tree[:, 0], result.parents[tree[:, 1]])


class TestConnectedComponents:
    @pytest.mark.parametrize("threshold", [4, 32, 10**9])
    def test_labels_match_union_find_oracle(self, rmat_small, any_layout, threshold):
        graph = build_partitions(rmat_small, any_layout, threshold)
        result = TraversalEngine(graph).run(ConnectedComponents())
        assert isinstance(result, ComponentsResult)
        np.testing.assert_array_equal(result.labels, serial_components(rmat_small))

    def test_property_random_rmat_graphs(self, small_layout):
        for scale, seed in [(9, 13), (10, 14), (11, 15)]:
            edges = generate_rmat(scale, rng=seed)
            graph = build_partitions(edges, small_layout, 16)
            result = TraversalEngine(graph).run(ConnectedComponents())
            np.testing.assert_array_equal(result.labels, serial_components(edges))

    def test_isolated_vertices_label_themselves(self, rmat_small, small_layout):
        degrees = out_degrees(rmat_small)
        isolated = np.flatnonzero(degrees == 0)
        if isolated.size == 0:
            pytest.skip("fixture graph has no isolated vertices")
        graph = build_partitions(rmat_small, small_layout, 32)
        result = TraversalEngine(graph).run(ConnectedComponents())
        np.testing.assert_array_equal(result.labels[isolated], isolated)

    def test_path_graph_single_component(self, path_graph):
        graph = build_partitions(path_graph, ClusterLayout(2, 2), 4)
        result = TraversalEngine(graph).run(ConnectedComponents())
        assert result.num_components == 1
        assert np.all(result.labels == 0)
        # Label propagation needs ~diameter iterations on a path.
        assert result.iterations >= 49

    def test_star_graph_single_component(self, star_graph):
        graph = build_partitions(star_graph, ClusterLayout(2, 2), 5)
        result = TraversalEngine(graph).run(ConnectedComponents())
        assert result.num_components == 1
        assert result.largest_component_size == star_graph.num_vertices

    def test_component_sizes_sum_to_vertices(self, rmat_small, small_layout):
        graph = build_partitions(rmat_small, small_layout, 32)
        result = TraversalEngine(graph).run(ConnectedComponents())
        sizes = result.component_sizes()
        assert sum(sizes.values()) == rmat_small.num_vertices
        assert result.summary()["components"] == len(sizes)


class TestKHopReachability:
    @pytest.mark.parametrize("hops", [0, 1, 2, 4])
    def test_distances_capped_at_k(self, rmat_small, small_layout, hops):
        graph = build_partitions(rmat_small, small_layout, 32)
        result = TraversalEngine(graph).run(KHopReachability(source=3, max_hops=hops))
        assert isinstance(result, ReachabilityResult)
        reference = serial_bfs(CSRGraph.from_edgelist(rmat_small), 3)
        expected = np.where((reference >= 0) & (reference <= hops), reference, -1)
        np.testing.assert_array_equal(result.distances, expected)
        assert result.iterations <= hops
        assert result.num_reached == int(np.count_nonzero(expected >= 0))

    def test_large_k_equals_full_bfs(self, rmat_small, small_layout):
        graph = build_partitions(rmat_small, small_layout, 32)
        engine = TraversalEngine(graph)
        full = engine.run(BFSLevels(source=3))
        capped = engine.run(KHopReachability(source=3, max_hops=10_000))
        np.testing.assert_array_equal(capped.distances, full.distances)

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            KHopReachability(source=0, max_hops=-1)

    def test_zero_hops_summary_does_not_crash(self, rmat_small, small_layout):
        """A zero-super-step run has no elapsed time; summary must not raise."""
        graph = build_partitions(rmat_small, small_layout, 32)
        result = TraversalEngine(graph).run(KHopReachability(source=3, max_hops=0))
        assert result.iterations == 0
        assert result.num_reached == 1
        assert result.summary()["gteps"] == 0.0


class TestCustomProgram:
    def test_third_party_program_runs(self, rmat_small, small_layout):
        """The protocol is open: a user-defined program runs unmodified."""
        from repro.core.programs.bfs_levels import BFSLevels as _Levels
        from repro.core.results import BFSResult as _BFSResult

        class EvenLevels(_Levels):
            """Levels doubled — checks visit_value output flows through."""

            name = "even-levels"

            def visit_value(self, ctx):
                return np.full(ctx.discovered.size, 2 * ctx.level, dtype=np.int64)

            def level_value(self, level):
                return 2 * level

            def make_result(self, values, base):
                return _BFSResult(source=self.source, distances=values, **base)

        graph = build_partitions(rmat_small, small_layout, 32)
        result = TraversalEngine(graph).run(EvenLevels(source=3))
        reference = serial_bfs(CSRGraph.from_edgelist(rmat_small), 3)
        expected = np.where(reference >= 0, 2 * reference, -1)
        np.testing.assert_array_equal(result.distances, expected)

    def test_program_is_abstract(self):
        with pytest.raises(TypeError):
            FrontierProgram()


class TestUnionFindOracle:
    def test_simple_components(self):
        src = np.asarray([0, 1, 3, 4])
        dst = np.asarray([1, 2, 4, 3])
        roots = union_find_components(6, src, dst)
        assert roots[0] == roots[1] == roots[2]
        assert roots[3] == roots[4]
        assert roots[5] == 5
        assert roots[0] != roots[3]

    def test_serial_components_canonical_min_labels(self, rmat_small):
        labels = serial_components(rmat_small)
        # Every label is the smallest member of its component.
        for label in np.unique(labels):
            members = np.flatnonzero(labels == label)
            assert members.min() == label
