"""Tests for the synthetic graph generators (dataset substitutes and toys)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.degree import degree_summary, out_degrees
from repro.graph.generators import (
    binary_tree_edges,
    clique_edges,
    cycle_edges,
    friendster_like,
    grid_edges,
    path_edges,
    power_law_configuration,
    random_bipartite,
    star_edges,
    uniform_random_graph,
    wdc_like,
)
from repro.graph.properties import analyze_graph, bfs_depth_estimate


class TestDeterministicGenerators:
    def test_path(self):
        e = path_edges(5)
        assert e.num_vertices == 5 and e.num_edges == 4
        np.testing.assert_array_equal(e.src, [0, 1, 2, 3])

    def test_cycle(self):
        e = cycle_edges(4)
        assert e.num_edges == 4
        assert (e.src[-1], e.dst[-1]) == (3, 0)

    def test_star_hub_degree(self):
        e = star_edges(10)
        deg = out_degrees(e)
        assert deg[0] == 10
        assert deg[1:].sum() == 0

    def test_grid_edge_count(self):
        e = grid_edges(3, 4)
        # 3*3 horizontal + 2*4 vertical = 9 + 8
        assert e.num_edges == 17
        assert e.num_vertices == 12

    def test_clique(self):
        e = clique_edges(5)
        assert e.num_edges == 20
        assert np.all(e.src != e.dst)

    def test_binary_tree(self):
        e = binary_tree_edges(3)
        assert e.num_vertices == 15
        assert e.num_edges == 14

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            path_edges(0)
        with pytest.raises(ValueError):
            grid_edges(0, 3)
        with pytest.raises(ValueError):
            clique_edges(0)
        with pytest.raises(ValueError):
            binary_tree_edges(-1)
        with pytest.raises(ValueError):
            star_edges(-1)


class TestRandomGenerators:
    def test_uniform_random_graph_shape(self):
        e = uniform_random_graph(100, 500, rng=1)
        assert e.num_vertices == 100 and e.num_edges == 500

    def test_uniform_random_deterministic(self):
        a = uniform_random_graph(50, 100, rng=3)
        b = uniform_random_graph(50, 100, rng=3)
        np.testing.assert_array_equal(a.src, b.src)

    def test_bipartite_edges_cross_sides(self):
        e = random_bipartite(10, 20, 200, rng=1)
        assert e.num_vertices == 30
        assert e.src.max() < 10
        assert e.dst.min() >= 10

    def test_bipartite_rejects_empty_side(self):
        with pytest.raises(ValueError):
            random_bipartite(0, 5, 10)

    def test_power_law_heavy_tail(self):
        e = power_law_configuration(4000, mean_degree=10.0, rng=2)
        summary = degree_summary(e)
        assert summary.max_degree > 5 * summary.mean_degree
        assert 4 < summary.mean_degree < 25

    def test_power_law_invalid_args(self):
        with pytest.raises(ValueError):
            power_law_configuration(1, 4.0)
        with pytest.raises(ValueError):
            power_law_configuration(10, -1.0)


class TestDatasetSubstitutes:
    def test_friendster_like_has_isolated_half(self):
        e = friendster_like(num_vertices=4096, rng=1)
        deg = out_degrees(e.prepared())
        isolated_fraction = np.count_nonzero(deg == 0) / e.num_vertices
        assert 0.3 < isolated_fraction < 0.7

    def test_friendster_like_is_skewed(self):
        e = friendster_like(num_vertices=4096, rng=1)
        assert degree_summary(e).gini > 0.5

    def test_friendster_invalid_isolated_fraction(self):
        with pytest.raises(ValueError):
            friendster_like(num_vertices=100, isolated_fraction=1.5)

    def test_wdc_like_has_long_tail(self):
        # The WDC substitute must have a much larger BFS depth than an RMAT
        # graph of comparable size — that is the property §VI-D relies on.
        wdc = wdc_like(num_vertices=4096, rng=3).prepared()
        depth = bfs_depth_estimate(wdc)
        assert depth > 30

    def test_wdc_like_deterministic(self):
        a = wdc_like(num_vertices=1024, rng=7)
        b = wdc_like(num_vertices=1024, rng=7)
        np.testing.assert_array_equal(a.src, b.src)

    def test_wdc_invalid_fractions(self):
        with pytest.raises(ValueError):
            wdc_like(num_vertices=100, isolated_fraction=-0.1)
        with pytest.raises(ValueError):
            wdc_like(num_vertices=100, chain_fraction=1.0)

    def test_analyze_graph_reports_isolated_and_components(self):
        e = friendster_like(num_vertices=2048, rng=5).prepared()
        props = analyze_graph(e)
        assert props.num_vertices == 2048
        assert props.num_isolated > 0
        assert props.num_components >= 1
        assert props.largest_component_size <= 2048
