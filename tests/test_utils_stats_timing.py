"""Tests for statistics helpers and the timing containers."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.stats import geometric_mean, harmonic_mean, summarize
from repro.utils.timing import PHASES, SimClock, Timer, TimingBreakdown


class TestGeometricMean:
    def test_matches_closed_form(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([5.0]) == pytest.approx(5.0)

    def test_rejects_empty_and_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -2.0])

    @given(st.lists(st.floats(min_value=1e-3, max_value=1e6), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_bounded_by_min_and_max(self, values):
        gm = geometric_mean(values)
        # Relative tolerance: the exp(mean(log)) round trip can wobble in the
        # last few ulps for values spanning many orders of magnitude.
        assert min(values) * (1 - 1e-12) <= gm <= max(values) * (1 + 1e-12)

    @given(st.lists(st.floats(min_value=1e-3, max_value=1e6), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_never_exceeds_arithmetic_mean(self, values):
        assert geometric_mean(values) <= float(np.mean(values)) * (1 + 1e-9)


class TestHarmonicMeanAndSummary:
    def test_harmonic_mean_value(self):
        assert harmonic_mean([1.0, 1.0]) == pytest.approx(1.0)
        assert harmonic_mean([2.0, 6.0]) == pytest.approx(3.0)

    def test_harmonic_rejects_bad_input(self):
        with pytest.raises(ValueError):
            harmonic_mean([])
        with pytest.raises(ValueError):
            harmonic_mean([0.0])

    def test_summary_fields(self):
        s = summarize([1.0, 2.0, 4.0])
        assert s.count == 3
        assert s.minimum == 1.0 and s.maximum == 4.0
        assert s.geo_mean == pytest.approx(2.0)
        assert set(s.as_dict()) == {"count", "geo_mean", "mean", "min", "max", "std"}

    def test_summary_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])


class TestTimer:
    def test_timer_measures_nonnegative(self):
        with Timer() as t:
            math.sqrt(12345.0)
        assert t.elapsed >= 0.0


class TestSimClock:
    def test_accumulates_per_category(self):
        clock = SimClock()
        clock.add("compute", 1.0)
        clock.add("compute", 0.5)
        clock.add("comm", 2.0)
        assert clock.get("compute") == pytest.approx(1.5)
        assert clock.get("missing") == 0.0
        assert clock.total() == pytest.approx(3.5)
        assert set(clock.categories()) == {"compute", "comm"}

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            SimClock().add("x", -1.0)

    def test_reset(self):
        clock = SimClock()
        clock.add("x", 1.0)
        clock.reset()
        assert clock.total() == 0.0


class TestTimingBreakdown:
    def test_phase_names_match_breakdown_fields(self):
        breakdown = TimingBreakdown()
        for phase in PHASES:
            assert hasattr(breakdown, phase)

    def test_parts_sum_and_add(self):
        a = TimingBreakdown(computation=1.0, local_communication=2.0, elapsed_ms=2.5)
        b = TimingBreakdown(computation=3.0, remote_normal_exchange=1.0, elapsed_ms=3.5)
        total = a + b
        assert total.computation == 4.0
        assert total.parts_sum() == pytest.approx(7.0)
        assert total.elapsed_ms == pytest.approx(6.0)

    def test_scaled(self):
        a = TimingBreakdown(computation=2.0, elapsed_ms=4.0)
        half = a.scaled(0.5)
        assert half.computation == 1.0
        assert half.elapsed_ms == 2.0

    def test_as_dict_keys(self):
        d = TimingBreakdown().as_dict()
        assert set(d) == {
            "computation",
            "local_communication",
            "remote_normal_exchange",
            "remote_delegate_reduce",
            "elapsed_ms",
        }
