"""Tests for the Graph500 RMAT generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.degree import degree_summary, out_degrees
from repro.graph.rmat import (
    RMATParameters,
    generate_rmat,
    generate_rmat_edges,
    graph500_edge_count,
)


class TestParameters:
    def test_defaults_are_graph500(self):
        p = RMATParameters()
        assert (p.a, p.b, p.c, p.d) == (0.57, 0.19, 0.19, 0.05)
        assert p.edge_factor == 16

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            RMATParameters(a=0.5, b=0.1, c=0.1, d=0.1)

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError):
            RMATParameters(a=1.2, b=-0.1, c=-0.05, d=-0.05)

    def test_edge_factor_positive(self):
        with pytest.raises(ValueError):
            RMATParameters(edge_factor=0)


class TestRawGeneration:
    def test_counts_follow_graph500(self):
        edges = generate_rmat_edges(8, rng=1)
        assert edges.num_vertices == 256
        assert edges.num_edges == 256 * 16

    def test_scale_zero(self):
        edges = generate_rmat_edges(0, rng=1)
        assert edges.num_vertices == 1
        assert np.all(edges.src == 0) and np.all(edges.dst == 0)

    def test_num_edges_override(self):
        edges = generate_rmat_edges(6, rng=1, num_edges=100)
        assert edges.num_edges == 100

    def test_deterministic_for_same_seed(self):
        a = generate_rmat_edges(9, rng=5)
        b = generate_rmat_edges(9, rng=5)
        np.testing.assert_array_equal(a.src, b.src)
        np.testing.assert_array_equal(a.dst, b.dst)

    def test_different_seeds_differ(self):
        a = generate_rmat_edges(9, rng=5)
        b = generate_rmat_edges(9, rng=6)
        assert not np.array_equal(a.src, b.src)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            generate_rmat_edges(-1)
        with pytest.raises(ValueError):
            generate_rmat_edges(60)

    def test_skew_toward_low_ids_before_hashing(self):
        # With A=0.57 the recursion biases both endpoints toward low vertex
        # ids; the first quarter of the id space should host well over a
        # quarter of the edge endpoints.
        edges = generate_rmat_edges(10, rng=3)
        frac = np.mean(edges.src < edges.num_vertices // 4)
        assert frac > 0.4


class TestPreparedGeneration:
    def test_prepared_graph_is_symmetric_and_clean(self):
        edges = generate_rmat(10, rng=2)
        assert edges.is_symmetric()
        assert np.all(edges.src != edges.dst)
        pairs = {(int(s), int(d)) for s, d in zip(edges.src, edges.dst)}
        assert len(pairs) == edges.num_edges

    def test_prepared_is_deterministic(self):
        a = generate_rmat(10, rng=4)
        b = generate_rmat(10, rng=4)
        np.testing.assert_array_equal(a.src, b.src)

    def test_hashing_changes_layout_but_not_degree_distribution(self):
        hashed = generate_rmat(10, rng=4, hash_seed=1)
        plain = generate_rmat(10, rng=4, hash_seed=None)
        assert not np.array_equal(hashed.src, plain.src)
        np.testing.assert_array_equal(
            np.sort(out_degrees(hashed)), np.sort(out_degrees(plain))
        )

    def test_power_law_like_degree_distribution(self):
        edges = generate_rmat(12, rng=1)
        summary = degree_summary(edges)
        # Heavy-tailed: the max degree vastly exceeds the mean, and the degree
        # distribution is strongly skewed.
        assert summary.max_degree > 20 * summary.mean_degree
        assert summary.gini > 0.5

    def test_unsymmetrized_option(self):
        edges = generate_rmat(9, rng=1, symmetrize=False)
        assert not edges.is_symmetric()


class TestEdgeCountHelper:
    def test_graph500_edge_count(self):
        assert graph500_edge_count(20) == (1 << 20) * 16
        assert graph500_edge_count(5, edge_factor=8) == 32 * 8

    def test_rejects_negative_scale(self):
        with pytest.raises(ValueError):
            graph500_edge_count(-1)
