"""AST mirror of the ruff pydocstyle rules the CI lint job enforces.

The lint job runs ``ruff check`` with ``D100`` (missing module docstring),
``D101`` (missing public-class docstring) and ``D104`` (missing package
docstring) enabled over ``src/`` — but ruff is a dev-only dependency, so a
contributor without it would first learn about a missing docstring from CI.
This test re-implements exactly those three checks with the standard
library, making the same failures reproducible under plain pytest.

Scope mirrors ``pyproject.toml``: every module under ``src/repro`` (D100 /
D104) and every public class defined at module level or inside a public
class (D101).  Private modules and classes (leading underscore) are exempt,
as are classes ruff skips (nested inside functions).
"""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def _modules() -> list[Path]:
    return sorted(SRC.rglob("*.py"))


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _public_classes(tree: ast.Module):
    """Yield (name, node) for classes D101 applies to: public, public parents."""
    stack = [(tree, ())]
    while stack:
        node, parents = stack.pop()
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, ast.ClassDef):
                continue
            if all(_is_public(p) for p in parents) and _is_public(child.name):
                yield ".".join(parents + (child.name,)), child
            stack.append((child, parents + (child.name,)))


def test_source_tree_exists():
    assert _modules(), f"no modules found under {SRC}"


@pytest.mark.parametrize("path", _modules(), ids=lambda p: str(p.relative_to(SRC)))
def test_module_docstrings(path: Path):
    """D100/D104: every module and package __init__ carries a docstring."""
    if path.name != "__init__.py" and path.name.startswith("_"):
        pytest.skip("private module: D100 exempts it")
    tree = ast.parse(path.read_text(encoding="utf-8"))
    rule = "D104" if path.name == "__init__.py" else "D100"
    assert ast.get_docstring(tree), f"{rule}: {path.relative_to(SRC)} lacks a module docstring"


@pytest.mark.parametrize("path", _modules(), ids=lambda p: str(p.relative_to(SRC)))
def test_public_class_docstrings(path: Path):
    """D101: every public class in every module carries a docstring."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    missing = [name for name, node in _public_classes(tree) if not ast.get_docstring(node)]
    assert not missing, (
        f"D101: {path.relative_to(SRC)} has undocumented public classes: {missing}"
    )
