"""Tests for the storage subsystem: codec, stores, out-of-core builds, wiring.

The load-bearing invariant throughout is *storage invariance*: traversal
answers and workload counters must be bit-identical whether the partitioned
graph lives in plain ndarrays, in an mmap-backed store, or in a compressed
store — on every execution backend.  The out-of-core build has its own
equivalence contract: fed the same edges, it must produce byte-identical
stores to the in-memory save path.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

import repro
from repro.bench.compare import compare_artifacts
from repro.bench.runner import run_scenario, values_checksum
from repro.bench.scenarios import Scenario
from repro.core.engine import TraversalEngine
from repro.core.programs import (
    BatchedBFSLevels,
    BFSLevels,
    ConnectedComponents,
    KHopReachability,
)
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.graph.generators import wdc_like_edge_chunks
from repro.graph.rmat import generate_rmat, generate_rmat_edge_chunks, generate_rmat_edges
from repro.partition.layout import ClusterLayout
from repro.partition.subgraphs import build_partitions
from repro.storage import (
    STORAGE_NAMES,
    apply_storage,
    chunks_from_edgelist,
    compress_csr,
    default_storage_name,
    external_build,
    iter_edge_chunks,
    load_graph_store,
    open_store,
    save_graph_store,
    store_graph_descriptor,
    varint_encode,
    varint_sizes,
    write_edge_chunks,
)
from repro.storage.codec import _varint_decode
from repro.utils.rss import max_rss_mb


# --------------------------------------------------------------------------- #
# Varint + compressed CSR codec
# --------------------------------------------------------------------------- #
class TestVarint:
    def test_roundtrip_random(self):
        gen = np.random.default_rng(7)
        values = gen.integers(0, 1 << 62, size=2000, dtype=np.int64)
        payload, sizes = varint_encode(values)
        assert payload.size == int(sizes.sum())
        np.testing.assert_array_equal(_varint_decode(payload), values)

    def test_boundary_values(self):
        # Every power-of-two boundary where the encoded size steps up.
        values = np.array(
            [0, 1, 127, 128, (1 << 14) - 1, 1 << 14, (1 << 63) - 1], dtype=np.int64
        )
        payload, sizes = varint_encode(values)
        np.testing.assert_array_equal(sizes, varint_sizes(values))
        np.testing.assert_array_equal(_varint_decode(payload), values)

    def test_empty(self):
        payload, sizes = varint_encode(np.zeros(0, dtype=np.int64))
        assert payload.size == 0 and sizes.size == 0
        assert _varint_decode(payload).size == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            varint_encode(np.array([-1], dtype=np.int64))


class TestCompressedCSR:
    def _random_csr(self, seed=3, num_rows=50, num_cols=400):
        gen = np.random.default_rng(seed)
        degrees = gen.integers(0, 12, size=num_rows)
        ro = np.zeros(num_rows + 1, dtype=np.int64)
        np.cumsum(degrees, out=ro[1:])
        cols = np.concatenate(
            [np.sort(gen.choice(num_cols, size=d, replace=False)) for d in degrees]
        ) if int(ro[-1]) else np.zeros(0, dtype=np.int64)
        return CSRGraph.unchecked(ro, cols.astype(np.int64), num_rows, num_cols)

    def test_full_decode_roundtrip(self):
        csr = self._random_csr()
        packed = compress_csr(csr)
        decoded = packed.decode()
        np.testing.assert_array_equal(decoded.row_offsets, csr.row_offsets)
        np.testing.assert_array_equal(decoded.column_indices, csr.column_indices)
        assert packed.num_edges == csr.num_edges
        assert packed.compression_ratio() > 1.0

    def test_decode_rows_subset(self):
        csr = self._random_csr(seed=5)
        packed = compress_csr(csr)
        rows = np.array([0, 7, 7, 49, 13], dtype=np.int64)
        partial = packed.decode_rows(rows)
        # The partial view keeps the full shape; requested rows are exact.
        assert partial.num_rows == csr.num_rows
        for r in rows:
            lo, hi = int(csr.row_offsets[r]), int(csr.row_offsets[r + 1])
            plo, phi = int(partial.row_offsets[r]), int(partial.row_offsets[r + 1])
            np.testing.assert_array_equal(
                partial.column_indices[plo:phi], csr.column_indices[lo:hi]
            )

    def test_empty_and_zero_degree_rows(self):
        ro = np.array([0, 0, 3, 3], dtype=np.int64)
        cols = np.array([2, 5, 9], dtype=np.int64)
        csr = CSRGraph.unchecked(ro, cols, 3, 10)
        packed = compress_csr(csr)
        decoded = packed.decode()
        np.testing.assert_array_equal(decoded.row_offsets, ro)
        np.testing.assert_array_equal(decoded.column_indices, cols)
        empty = compress_csr(CSRGraph.unchecked(np.zeros(1, np.int64), np.zeros(0, np.int64), 0, 4))
        assert empty.decode().num_edges == 0


# --------------------------------------------------------------------------- #
# Store save/load round trips
# --------------------------------------------------------------------------- #
class TestGraphStore:
    @pytest.mark.parametrize("storage", ["mmap", "compressed"])
    def test_roundtrip_preserves_everything(self, rmat_small, tmp_path, storage):
        layout = ClusterLayout.from_notation("1x2x2")
        graph = build_partitions(rmat_small, layout, 32)
        save_graph_store(graph, tmp_path / "store", storage=storage)
        loaded = load_graph_store(tmp_path / "store")

        assert loaded.storage == storage
        assert loaded.num_vertices == graph.num_vertices
        assert loaded.num_directed_edges == graph.num_directed_edges
        assert loaded.layout.notation() == graph.layout.notation()
        assert loaded.census.as_dict() == graph.census.as_dict()
        np.testing.assert_array_equal(loaded.separation.degrees, graph.separation.degrees)
        np.testing.assert_array_equal(
            loaded.separation.delegate_vertices, graph.separation.delegate_vertices
        )
        for g in range(layout.num_gpus):
            for key in ("nn", "nd", "dn", "dd"):
                ours = getattr(loaded.gpus[g], key)
                theirs = getattr(graph.gpus[g], key)
                if hasattr(ours, "decode"):
                    ours = ours.decode()
                np.testing.assert_array_equal(ours.row_offsets, theirs.row_offsets)
                np.testing.assert_array_equal(ours.column_indices, theirs.column_indices)

    def test_mmap_arrays_are_zero_copy_views(self, rmat_small, tmp_path):
        layout = ClusterLayout.from_notation("1x1x2")
        graph = build_partitions(rmat_small, layout, 64)
        save_graph_store(graph, tmp_path / "s", storage="mmap")
        loaded = load_graph_store(tmp_path / "s")
        # Views over the mapped segment own no data of their own.
        assert not loaded.gpus[0].nn.column_indices.flags["OWNDATA"]
        assert not loaded.separation.degrees.flags["OWNDATA"]

    def test_store_descriptor_lists_every_csr(self, rmat_small, tmp_path):
        layout = ClusterLayout.from_notation("1x1x2")
        graph = build_partitions(rmat_small, layout, 64)
        save_graph_store(graph, tmp_path / "s", storage="mmap")
        desc = store_graph_descriptor(tmp_path / "s")
        assert desc["segment"].startswith("file://")
        assert not desc["compressed"]
        assert set(desc["csrs"]) == {
            (g, key) for g in range(2) for key in ("nn", "nd", "dn", "dd")
        }

    def test_open_store_array_access(self, rmat_small, tmp_path):
        layout = ClusterLayout.from_notation("1x1x1")
        graph = build_partitions(rmat_small, layout, 64)
        save_graph_store(graph, tmp_path / "s", storage="mmap")
        handle = open_store(tmp_path / "s")
        try:
            np.testing.assert_array_equal(
                handle.array("sep.degrees"), graph.separation.degrees
            )
            with pytest.raises(KeyError):
                handle.array("no.such.array")
        finally:
            handle.close()


# --------------------------------------------------------------------------- #
# apply_storage guard rails
# --------------------------------------------------------------------------- #
class TestApplyStorage:
    def test_memory_is_identity(self, rmat_small):
        graph = build_partitions(rmat_small, ClusterLayout.from_notation("1x1x1"), 64)
        assert apply_storage(graph, "memory") is graph

    def test_unknown_mode_rejected(self, rmat_small):
        graph = build_partitions(rmat_small, ClusterLayout.from_notation("1x1x1"), 64)
        with pytest.raises(ValueError, match="storage must be one of"):
            apply_storage(graph, "disk")

    def test_reconversion_rejected(self, rmat_small, tmp_path):
        graph = build_partitions(rmat_small, ClusterLayout.from_notation("1x1x1"), 64)
        mapped = apply_storage(graph, "mmap", path=tmp_path / "s")
        with pytest.raises(ValueError, match="already mmap-backed"):
            apply_storage(mapped, "compressed")
        with pytest.raises(ValueError, match="cannot convert"):
            apply_storage(mapped, "memory")


# --------------------------------------------------------------------------- #
# Edge chunk streams + chunked generators
# --------------------------------------------------------------------------- #
class TestEdgeChunks:
    def test_write_iter_roundtrip(self, tmp_path):
        e = generate_rmat_edges(8, rng=4)
        write_edge_chunks(chunks_from_edgelist(e, 1000), tmp_path / "chunks", e.num_vertices)
        src = np.concatenate([s for s, _ in iter_edge_chunks(tmp_path / "chunks")])
        dst = np.concatenate([d for _, d in iter_edge_chunks(tmp_path / "chunks")])
        np.testing.assert_array_equal(src, e.src)
        np.testing.assert_array_equal(dst, e.dst)

    def test_chunks_from_edgelist_is_exact_partition(self):
        e = generate_rmat_edges(7, rng=4)
        chunks = list(chunks_from_edgelist(e, 700))
        assert all(s.size <= 700 for s, _ in chunks)
        np.testing.assert_array_equal(np.concatenate([s for s, _ in chunks]), e.src)

    @pytest.mark.parametrize("chunk_edges", [1 << 11, 1 << 13])
    def test_rmat_chunks_deterministic_and_bounded(self, chunk_edges):
        a = list(generate_rmat_edge_chunks(10, seed=5, chunk_edges=chunk_edges))
        b = list(generate_rmat_edge_chunks(10, seed=5, chunk_edges=chunk_edges))
        assert len(a) == len(b)
        total = 0
        for (sa, da), (sb, db) in zip(a, b):
            np.testing.assert_array_equal(sa, sb)
            np.testing.assert_array_equal(da, db)
            assert sa.size <= chunk_edges
            assert int(sa.max()) < 1 << 10 and int(da.max()) < 1 << 10
            total += sa.size
        assert total == 16 * (1 << 10)  # Graph500 edge factor

    def test_wdc_chunks_deterministic_and_bounded(self):
        kwargs = dict(num_vertices=1 << 11, seed=9, chunk_edges=1 << 11)
        a = list(wdc_like_edge_chunks(**kwargs))
        b = list(wdc_like_edge_chunks(**kwargs))
        assert len(a) == len(b) and len(a) > 1
        for (sa, da), (sb, db) in zip(a, b):
            np.testing.assert_array_equal(sa, sb)
            np.testing.assert_array_equal(da, db)
            assert sa.size <= 1 << 11
            assert int(max(sa.max(), da.max())) < 1 << 11
            assert int(min(sa.min(), da.min())) >= 0

    def test_chunk_size_is_part_of_the_draw(self):
        # Chunked generators draw per chunk, so a different chunking is a
        # *different* (equally valid) graph — exactly why build scenarios
        # keep chunk_edges in their spec identity.
        fine = np.concatenate(
            [s for s, _ in generate_rmat_edge_chunks(8, seed=3, chunk_edges=512)]
        )
        coarse = np.concatenate(
            [s for s, _ in generate_rmat_edge_chunks(8, seed=3, chunk_edges=4096)]
        )
        assert fine.size == coarse.size
        assert not np.array_equal(fine, coarse)


# --------------------------------------------------------------------------- #
# The out-of-core build vs the in-memory pipeline
# --------------------------------------------------------------------------- #
class TestExternalBuild:
    @pytest.mark.parametrize("storage", ["mmap", "compressed"])
    @pytest.mark.parametrize("notation", ["1x1x1", "1x2x2"])
    def test_bitwise_equivalent_to_in_memory_build(self, tmp_path, storage, notation):
        raw = generate_rmat_edges(9, rng=6)
        layout = ClusterLayout.from_notation(notation)
        prepared = raw.prepared(hash_seed=1)
        graph = build_partitions(prepared, layout, 24)
        save_graph_store(graph, tmp_path / "mem", storage=storage)

        _, report = external_build(
            chunks_from_edgelist(raw, 1500),
            raw.num_vertices,
            layout,
            tmp_path / "ext",
            threshold=24,
            storage=storage,
            block_edges=1000,
        )
        assert report["num_directed_edges"] == prepared.num_edges

        mem = load_graph_store(tmp_path / "mem")
        ext = load_graph_store(tmp_path / "ext")
        np.testing.assert_array_equal(mem.separation.degrees, ext.separation.degrees)
        assert mem.census.as_dict() == ext.census.as_dict()
        for g in range(layout.num_gpus):
            for key in ("nn", "nd", "dn", "dd"):
                a, b = getattr(mem.gpus[g], key), getattr(ext.gpus[g], key)
                if hasattr(a, "decode"):
                    a, b = a.decode(), b.decode()
                np.testing.assert_array_equal(a.row_offsets, b.row_offsets)
                np.testing.assert_array_equal(a.column_indices, b.column_indices)
            np.testing.assert_array_equal(
                mem.gpus[g].nd_source_list, ext.gpus[g].nd_source_list
            )

    def test_block_size_invariance(self, tmp_path):
        raw = generate_rmat_edges(8, rng=2)
        layout = ClusterLayout.from_notation("1x1x2")
        for label, block in (("a", 333), ("b", 1 << 20)):
            external_build(
                chunks_from_edgelist(raw, 900),
                raw.num_vertices,
                layout,
                tmp_path / label,
                storage="mmap",
                block_edges=block,
            )
        a = (tmp_path / "a" / "graph.bin").read_bytes()
        b = (tmp_path / "b" / "graph.bin").read_bytes()
        assert a == b

    def test_streamed_threshold_matches_suggestion(self, tmp_path):
        from repro.partition.delegates import suggest_threshold

        raw = generate_rmat_edges(9, rng=8)
        layout = ClusterLayout.from_notation("1x2x2")
        _, report = external_build(
            chunks_from_edgelist(raw, 2000),
            raw.num_vertices,
            layout,
            tmp_path / "s",
            threshold=None,
            storage="mmap",
            block_edges=1500,
        )
        expected = suggest_threshold(raw.prepared(hash_seed=1), layout.num_gpus)
        assert report["threshold"] == int(expected)


# --------------------------------------------------------------------------- #
# The storage-invariance contract: identical counters on every backend
# --------------------------------------------------------------------------- #
def _run_programs(graph, backend):
    """Deterministic fingerprint of four programs + one batched run."""
    engine = TraversalEngine(graph, backend=backend)
    out = {}
    try:
        for name, program in (
            ("levels", BFSLevels(source=1)),
            ("parents", ConnectedComponents()),
            ("khop", KHopReachability(source=1, max_hops=3)),
        ):
            result = engine.run(program)
            out[name] = (
                int(result.total_edges_examined),
                int(result.iterations),
                values_checksum(result),
            )
        batch = engine.run_batch(BatchedBFSLevels(sources=[1, 2, 3, 5]))
        out["batched"] = [values_checksum(r) for r in batch.per_source_results()]
    finally:
        engine.close()
    return out


class TestStorageInvariance:
    @pytest.mark.parametrize("backend", ["inline", "thread", "process"])
    def test_counters_identical_across_modes(self, rmat_small, tmp_path, backend):
        layout = ClusterLayout.from_notation("1x2x2")
        base = build_partitions(rmat_small, layout, 32)
        expected = _run_programs(base, backend)
        for storage in ("mmap", "compressed"):
            graph = load_graph_store_for(base, tmp_path / storage, storage)
            assert _run_programs(graph, backend) == expected, (storage, backend)


def load_graph_store_for(graph, path, storage):
    save_graph_store(graph, path, storage=storage)
    return load_graph_store(path)


# --------------------------------------------------------------------------- #
# Session + environment wiring
# --------------------------------------------------------------------------- #
class TestSessionStorage:
    def test_fluent_storage_is_counter_invariant(self, tmp_path):
        plain = repro.session().generate(scale=9, seed=4).build().bfs(1)
        packed = (
            repro.session()
            .generate(scale=9, seed=4)
            .storage("compressed", path=tmp_path / "s")
            .build()
            .bfs(1)
        )
        assert values_checksum(plain) == values_checksum(packed)
        assert plain.total_edges_examined == packed.total_edges_examined

    def test_storage_name_and_mutate_guard(self, tmp_path):
        gs = repro.session().generate(scale=8).storage("mmap", path=tmp_path / "s").build()
        assert gs.storage_name == "mmap"
        with pytest.raises(RuntimeError, match="stores are immutable"):
            gs.mutate()

    def test_env_var_default(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORAGE", "mmap")
        assert default_storage_name() == "mmap"
        gs = repro.session().generate(scale=8).build()
        assert gs.storage_name == "mmap"
        monkeypatch.setenv("REPRO_STORAGE", "floppy")
        with pytest.raises(ValueError, match="REPRO_STORAGE"):
            default_storage_name()

    def test_invalid_storage_rejected(self):
        with pytest.raises(ValueError, match="storage must be one of"):
            repro.session().storage("ssd")


# --------------------------------------------------------------------------- #
# Bench integration: storage axis, build scenarios, gate phase, selectors
# --------------------------------------------------------------------------- #
class TestBenchStorage:
    def test_record_carries_storage_outside_spec(self):
        spec = Scenario("t-lv", "rmat", 9, "levels", sources=1)
        records = {
            st: run_scenario(spec, repeats=1, check_determinism=False, storage=st)
            for st in STORAGE_NAMES
        }
        specs = {json.dumps(r["spec"], sort_keys=True) for r in records.values()}
        assert len(specs) == 1  # storage never lands in the spec
        base = records["memory"]["counters"]
        for st, record in records.items():
            assert record["storage"] == st
            assert record["counters"] == base
            assert set(record["max_rss_mb"]) >= {"graph_build", "partition", "traversal"}
            if st != "memory":
                assert record["wall_s"]["storage"] >= 0.0

    def test_build_scenario_record_shape(self):
        spec = Scenario(
            "t-build", "rmat", 9, "build", sources=1, chunk_edges=2048, block_edges=2048
        )
        record = run_scenario(spec, repeats=1, check_determinism=False)
        assert record["gate_phase"] == "graph_build"
        assert record["storage"] == "mmap"  # memory coerces to a real store
        assert record["spec"]["chunk_edges"] == 2048
        assert "block_edges" not in record["spec"]
        assert record["build"]["num_chunks"] == 4  # 16 * 2**9 / 2048
        for phase in ("ingest", "merge", "threshold", "distribute", "assemble"):
            assert record["wall_s"][f"build_{phase}"] >= 0.0
        assert record["counters"]["total_edges_examined"] > 0

    def test_build_counters_storage_invariant(self):
        spec = Scenario(
            "t-build2", "rmat", 9, "build", sources=2, chunk_edges=4096, block_edges=4096
        )
        a = run_scenario(spec, repeats=1, check_determinism=False, storage="mmap")
        b = run_scenario(spec, repeats=1, check_determinism=False, storage="compressed")
        assert a["counters"] == b["counters"]
        assert a["sources"] == b["sources"]

    def test_mutating_scenarios_pin_memory(self):
        dyn = Scenario(
            "t-dyn", "rmat", 8, "dynamic", update_batches=2, update_edges=50
        )
        record = run_scenario(dyn, repeats=1, check_determinism=False, storage="mmap")
        assert record["storage"] == "memory"

    def test_compare_gates_on_declared_phase(self):
        def artifact(build_wall, traversal_wall):
            return {
                "schema": "repro.bench", "schema_version": 1, "scenarios": {
                    "b": {
                        "spec": {"name": "b"}, "repeats": 1, "gate_phase": "graph_build",
                        "wall_s": {"graph_build": build_wall, "traversal": traversal_wall},
                        "modeled_ms": {"elapsed_ms": 1.0},
                        "counters": {"total_edges_examined": 10},
                    }
                },
            }

        # Build wall regresses 3x while the verification traversal is flat:
        # the gate must key on graph_build because the record declares it.
        report = compare_artifacts(
            artifact(1.0, 0.5), artifact(3.0, 0.5), tolerance=0.2
        )
        assert [d.status for d in report.deltas] == ["regression"]
        flat = compare_artifacts(artifact(1.0, 0.5), artifact(1.0, 50.0), tolerance=0.2)
        assert flat.ok


class TestArtifactSelectors:
    def _make(self, tmp_path, names):
        for name in names:
            (tmp_path / name).write_text("{}")

    def test_latest_and_offsets(self, tmp_path, monkeypatch):
        from repro.cli import _resolve_artifact_selector

        names = ["BENCH_20260101-000000.json", "BENCH_20260202-000000.json",
                 "BENCH_20260303-000000.json"]
        self._make(tmp_path, names)
        monkeypatch.chdir(tmp_path)
        assert _resolve_artifact_selector("latest").name == names[-1]
        assert _resolve_artifact_selector("latest~1").name == names[-2]
        assert _resolve_artifact_selector("latest~2").name == names[0]
        with pytest.raises(ValueError, match="needs 4"):
            _resolve_artifact_selector("latest~3")

    def test_glob_picks_lexically_newest(self, tmp_path, monkeypatch):
        from repro.cli import _resolve_artifact_selector

        self._make(tmp_path, ["BENCH_20260101-a.json", "BENCH_20260102-b.json", "other.json"])
        monkeypatch.chdir(tmp_path)
        assert _resolve_artifact_selector("BENCH_*.json").name == "BENCH_20260102-b.json"
        assert _resolve_artifact_selector("other.json").name == "other.json"
        with pytest.raises(ValueError, match="no artifact matches"):
            _resolve_artifact_selector("NOPE_*.json")

    def test_bad_selectors(self, tmp_path, monkeypatch):
        from repro.cli import _resolve_artifact_selector

        monkeypatch.chdir(tmp_path)
        with pytest.raises(ValueError):
            _resolve_artifact_selector("latest~x")
        with pytest.raises(ValueError, match="needs 1"):
            _resolve_artifact_selector("latest")


# --------------------------------------------------------------------------- #
# Peak-RSS plumbing
# --------------------------------------------------------------------------- #
class TestPeakRSS:
    def test_max_rss_positive_and_monotone(self):
        first = max_rss_mb()
        assert first > 0
        ballast = np.ones(1 << 22, dtype=np.int64)  # 32 MiB
        ballast[::4096] = 2  # touch every page
        assert max_rss_mb() >= first

    def test_census_json_reports_rss(self, capsys):
        from repro.cli import main

        assert main(["census", "--scale", "8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["max_rss_mb"] > 0


# --------------------------------------------------------------------------- #
# CLI build + store-backed traversal commands
# --------------------------------------------------------------------------- #
class TestCLIStorage:
    def test_build_then_traverse_store(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graph.io import save_npz

        # The chunked generators are a *different* deterministic draw than
        # the in-memory ones, so equivalence is asserted through a shared
        # npz: the external build prepares raw edges exactly like
        # EdgeList.prepared(hash_seed=1) does.
        raw = generate_rmat_edges(9, rng=3)
        save_npz(tmp_path / "raw.npz", raw)
        save_npz(tmp_path / "prep.npz", raw.prepared(hash_seed=1))

        store = tmp_path / "store"
        assert main([
            "build", "--npz", str(tmp_path / "raw.npz"), "--storage", "compressed",
            "--out", str(store), "--chunk-edges", "4096", "--json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["storage"] == "compressed"
        assert report["max_rss_mb"] > 0

        assert main(["bfs", "--store", str(store), "--sources", "1", "--json"]) == 0
        store_run = json.loads(capsys.readouterr().out)

        assert main([
            "bfs", "--npz", str(tmp_path / "prep.npz"), "--sources", "1", "--json",
        ]) == 0
        mem_run = json.loads(capsys.readouterr().out)
        assert (
            store_run["runs"][0]["edges_examined"]
            == mem_run["runs"][0]["edges_examined"]
        )

    def test_validate_rejected_for_stores(self, tmp_path, capsys):
        from repro.cli import main

        store = tmp_path / "store"
        assert main([
            "build", "--scale", "8", "--storage", "mmap", "--out", str(store),
        ]) == 0
        capsys.readouterr()
        assert main(["bfs", "--store", str(store), "--validate"]) == 2

    def test_storage_flag_on_components(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main([
            "components", "--scale", "8", "--storage", "mmap", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["graph"]["storage"] == "mmap"
