"""Tests for the kernel-provider layer (:mod:`repro.exec.providers`).

The load-bearing property is *provider equivalence*: whichever provider
computes the visit kernels, results, workload counters and modeled times
must match bit for bit — only wall-clock may differ.  On hosts without
Numba the NumbaProvider cases run through the documented fallback (warn,
then NumPy), so spec-level equivalence still holds; the JIT-vs-NumPy
bit-exactness tests proper are skipped locally and run on the CI leg that
installs Numba.

Also covered: resolution precedence (argument > ``$REPRO_KERNELS`` >
``auto``), the singleton registry, session/engine/dynamic threading, the
process-boundary name handoff, bench-record placement (``kernels`` in the
record, never the spec) and the CLI round-trips including the rejected
``--backend process --kernels numba`` combination.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.engine import TraversalEngine
from repro.core.programs import BatchedBFSLevels, BFSLevels, ConnectedComponents
from repro.exec.providers import (
    KERNELS_ENV_VAR,
    PROVIDER_NAMES,
    KernelProvider,
    NumpyProvider,
    default_kernels_name,
    get_provider,
    numba_available,
    resolve_provider,
)
from repro.graph.rmat import generate_rmat
from repro.partition.layout import ClusterLayout
from repro.partition.subgraphs import build_partitions

LAYOUT = ClusterLayout(num_ranks=2, gpus_per_rank=2)

needs_numba = pytest.mark.skipif(
    not numba_available(), reason="numba not importable on this host"
)


@pytest.fixture(scope="module")
def edges():
    return generate_rmat(9, rng=5)


@pytest.fixture(scope="module")
def graph(edges):
    return build_partitions(edges, LAYOUT, 16)


# --------------------------------------------------------------------------- #
# Resolution: names, env var, fallback
# --------------------------------------------------------------------------- #
class TestResolution:
    def test_registry_names(self):
        assert PROVIDER_NAMES == ("numpy", "numba", "auto")

    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv(KERNELS_ENV_VAR, raising=False)
        assert default_kernels_name() == "auto"

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV_VAR, "numpy")
        assert default_kernels_name() == "numpy"
        monkeypatch.setenv(KERNELS_ENV_VAR, "fortran")
        with pytest.raises(ValueError, match="fortran"):
            default_kernels_name()

    def test_get_provider_is_singleton(self):
        a = get_provider("numpy")
        assert isinstance(a, NumpyProvider)
        assert get_provider("numpy") is a
        with pytest.raises(ValueError, match="auto"):
            get_provider("auto")  # auto is a spec, not a provider

    def test_resolve_passes_instances_through(self):
        provider = get_provider("numpy")
        assert resolve_provider(provider) is provider

    def test_resolve_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="fortran"):
            resolve_provider("fortran")

    def test_auto_resolves_silently(self, monkeypatch):
        monkeypatch.delenv(KERNELS_ENV_VAR, raising=False)
        provider = resolve_provider("auto")
        assert isinstance(provider, KernelProvider)
        assert provider.name == ("numba" if numba_available() else "numpy")
        assert resolve_provider(None).name == provider.name

    @pytest.mark.skipif(numba_available(), reason="needs a numba-free host")
    def test_explicit_numba_without_numba_warns_and_falls_back(self):
        with pytest.warns(RuntimeWarning, match="[Nn]umba"):
            provider = resolve_provider("numba")
        assert provider.name == "numpy"


# --------------------------------------------------------------------------- #
# Spec-level equivalence: any provider spec, same bits
# --------------------------------------------------------------------------- #
class TestProviderEquivalence:
    @pytest.mark.parametrize("spec", ["numpy", "numba", "auto"])
    @pytest.mark.parametrize("backend", ["inline", "process", "thread"])
    def test_results_identical_across_specs_and_backends(self, graph, spec, backend):
        import warnings

        from tests.test_exec_backends import assert_results_identical

        reference = TraversalEngine(graph, kernels="numpy").run(BFSLevels(source=3))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)  # numba fallback
            engine = TraversalEngine(graph, backend=backend, kernels=spec)
            try:
                assert_results_identical(reference, engine.run(BFSLevels(source=3)))
            finally:
                engine.close()

    @pytest.mark.parametrize("spec", ["numpy", "numba"])
    def test_batched_and_components_identical(self, graph, spec):
        import warnings

        reference = TraversalEngine(graph, kernels="numpy")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)  # lazy numba fallback
            engine = TraversalEngine(graph, kernels=spec)
            a = engine.run_batch(BatchedBFSLevels(list(range(70))))
        b = reference.run_batch(BatchedBFSLevels(list(range(70))))
        np.testing.assert_array_equal(a.distances, b.distances)
        assert a.workload_by_kernel() == b.workload_by_kernel()
        assert a.timing.elapsed_ms == b.timing.elapsed_ms
        ca = engine.run(ConnectedComponents())
        cb = reference.run(ConnectedComponents())
        np.testing.assert_array_equal(ca.labels, cb.labels)
        assert ca.comm_stats.as_dict() == cb.comm_stats.as_dict()


# --------------------------------------------------------------------------- #
# JIT twins proper (CI numba leg; skipped on numba-free hosts)
# --------------------------------------------------------------------------- #
@needs_numba
class TestNumbaKernelsBitExact:
    def test_provider_resolves_to_numba(self):
        assert resolve_provider("numba").name == "numba"
        assert resolve_provider("auto").name == "numba"

    def test_forward_and_backward_visits_match(self, graph):
        from repro.core.state import BFSState  # noqa: F401  (import sanity)

        numba_engine = TraversalEngine(graph, kernels="numba")
        numpy_engine = TraversalEngine(graph, kernels="numpy")
        from tests.test_exec_backends import assert_results_identical

        for source in (0, 3, 17):
            assert_results_identical(
                numpy_engine.run(BFSLevels(source=source)),
                numba_engine.run(BFSLevels(source=source)),
            )

    def test_bitmask_bulk_ops_match(self):
        from repro.utils.bitmask import Bitmask

        numba_p = get_provider("numba")
        numpy_p = get_provider("numpy")
        idx = np.asarray([0, 3, 3, 64, 65, 127, 200], dtype=np.int64)
        a, b = Bitmask(256), Bitmask(256)
        numba_p.bitmask_set_many(a, idx)
        numpy_p.bitmask_set_many(b, idx)
        np.testing.assert_array_equal(a.buffer, b.buffer)
        probe = np.arange(256, dtype=np.int64)
        np.testing.assert_array_equal(
            numba_p.bitmask_test_many(a, probe), numpy_p.bitmask_test_many(b, probe)
        )


# --------------------------------------------------------------------------- #
# Threading through session / dynamic / bench / CLI
# --------------------------------------------------------------------------- #
class TestProviderThreading:
    def test_session_fluent_kernels(self):
        import repro

        graph_session = (
            repro.session(layout="2x1x2", kernels="numpy")
            .generate(scale=9, seed=5)
            .build()
        )
        assert graph_session.kernels_name == "numpy"
        reference = graph_session.bfs(3)
        graph_session.kernels("auto")
        np.testing.assert_array_equal(
            graph_session.bfs(3).distances, reference.distances
        )
        graph_session.close()

    def test_engine_use_kernels_switches_in_place(self, graph):
        engine = TraversalEngine(graph, kernels="numpy")
        assert engine.provider_name == "numpy"
        a = engine.run(BFSLevels(source=3))
        engine.use_kernels("auto")
        b = engine.run(BFSLevels(source=3))
        np.testing.assert_array_equal(a.distances, b.distances)
        assert a.timing.elapsed_ms == b.timing.elapsed_ms

    def test_dynamic_engine_threads_kernels(self, edges):
        from repro.dynamic import DynamicEngine, DynamicGraph

        engine = DynamicEngine(
            DynamicGraph(edges, LAYOUT, 16), kernels="numpy"
        )
        try:
            assert engine.provider_name == "numpy"
            engine.run(BFSLevels(source=3))
            engine.use_kernels("auto")
            engine.run(BFSLevels(source=3))
        finally:
            engine.close()

    def test_replica_pool_threads_kernels(self, graph):
        from repro.serve.cluster.replica import ReplicaPool

        with ReplicaPool(graph, 2, kernels="numpy", batch_size=4) as pool:
            assert pool.kernels_name == "numpy"

    def test_run_scenario_records_kernels_outside_spec(self):
        from repro.bench.runner import run_scenario
        from repro.bench.scenarios import Scenario

        spec = Scenario("tiny", "rmat", 9, "levels", sources=1)
        record = run_scenario(spec, repeats=2, kernels="numpy")
        assert record["kernels"] == "numpy"
        assert "kernels" not in record["spec"]
        # Provider-invariant counters: the whole point of the axis.
        auto_record = run_scenario(spec, repeats=2, kernels="auto")
        assert auto_record["counters"] == record["counters"]
        assert auto_record["modeled_ms"] == record["modeled_ms"]


class TestProviderCLI:
    def test_bfs_kernels_round_trip_json(self, capsys):
        from repro.cli import main

        args = ["bfs", "--scale", "9", "--layout", "2x1x2", "--source", "3", "--json"]
        assert main([*args, "--kernels", "numpy"]) == 0
        numpy_out = json.loads(capsys.readouterr().out)
        assert numpy_out["kernels"] == "numpy"
        assert main([*args, "--kernels", "auto"]) == 0
        auto_out = json.loads(capsys.readouterr().out)
        assert auto_out["kernels"] in ("numpy", "numba")
        assert auto_out["runs"] == numpy_out["runs"]

    @pytest.mark.parametrize("argv", [
        ["bfs", "--scale", "9"],
        ["components", "--scale", "9"],
        ["mutate", "--scale", "9", "--batches", "1"],
        ["bench", "run", "--quick"],
        ["serve", "bench", "--scale", "9"],
    ])
    def test_process_plus_numba_exits_2_everywhere(self, capsys, argv):
        from repro.cli import main

        code = main([*argv, "--backend", "process", "--kernels", "numba"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: ")
        assert "JIT warm-up" in captured.err
        assert captured.out == ""  # nothing ran

    def test_process_with_auto_kernels_is_allowed(self, capsys):
        from repro.cli import main

        code = main(
            [
                "bfs", "--scale", "9", "--layout", "2x1x2", "--source", "3",
                "--backend", "process", "--kernels", "auto", "--json",
            ]
        )
        assert code == 0
        out = json.loads(capsys.readouterr().out)
        assert out["backend"] == "process"
        assert out["kernels"] in ("numpy", "numba")

    def test_bench_list_mentions_the_axes(self, capsys):
        from repro.cli import main

        assert main(["bench", "list", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "--kernels numpy|numba|auto" in out
        assert "--backend inline|process|thread" in out
