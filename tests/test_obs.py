"""Tests for the observability layer (:mod:`repro.obs`).

The load-bearing properties:

* **Trace invariance** — enabling tracing must not change traversal results
  or deterministic workload counters, across every execution backend and
  storage tier (only wall clock may move, and only within noise).
* **Zero overhead when off** — the disabled tracer is an allocation-free
  no-op singleton, so instrumented hot paths cost nothing by default.
* **Well-formed artifacts** — exported traces are valid Chrome
  ``trace_event`` JSON with correctly nested spans (worker spans inside
  their super-step's kernel span), JSONL round-trips, ``trace summarize``
  aggregates them, and ``stats_snapshot()`` dictionaries flatten to valid
  Prometheus text exposition format.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench.artifact import new_artifact
from repro.bench.compare import compare_artifacts
from repro.bench.runner import run_suite
from repro.bench.scenarios import Scenario
from repro.core.engine import TraversalEngine
from repro.core.programs import BFSLevels
from repro.graph.rmat import generate_rmat
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    chrome_trace,
    get_tracer,
    load_trace,
    prometheus_text,
    set_tracer,
    summarize_events,
    summary_lines,
    write_trace,
)
from repro.obs.tracer import _NullSpan
from repro.partition.layout import ClusterLayout
from repro.partition.subgraphs import build_partitions
from repro.storage import apply_storage
from repro.utils.timing import now_s

LAYOUT = ClusterLayout(num_ranks=2, gpus_per_rank=2)


@pytest.fixture()
def fresh_tracer():
    """Install a fresh enabled tracer, restoring the previous one after."""
    tracer = Tracer()
    previous = set_tracer(tracer)
    yield tracer
    set_tracer(previous)


# --------------------------------------------------------------------------- #
# Tracer core
# --------------------------------------------------------------------------- #
class TestTracer:
    def test_default_is_null_tracer(self):
        assert get_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled

    def test_null_tracer_is_allocation_free(self):
        span_a = NULL_TRACER.span("a", cat="x")
        span_b = NULL_TRACER.span("b", cat="y")
        assert span_a is span_b  # the one shared singleton
        assert isinstance(span_a, _NullSpan)
        with span_a as s:
            s.event("e", value=1)
            s.annotate(key="v")
        NULL_TRACER.event("e")
        NULL_TRACER.record_span("s", start=0.0, dur=1.0)
        NULL_TRACER.instant("i", ts=1.0)
        assert NULL_TRACER.events == []

    def test_disabled_guard_overhead_is_negligible(self):
        """The `if tracer.enabled:` guard is a plain attribute read."""
        tracer = get_tracer()
        assert tracer is NULL_TRACER
        n = 200_000
        started = now_s()
        for _ in range(n):
            if tracer.enabled:  # pragma: no cover - never taken
                tracer.record_span("x", cat="y", start=0.0, dur=1.0)
        per_guard = (now_s() - started) / n
        # An attribute read plus a branch: generously bounded at 5 µs to
        # stay robust on loaded CI hosts (typically ~20-50 ns).
        assert per_guard < 5e-6

    def test_span_records_normalized_microseconds(self):
        ticks = iter([2.0, 5.0])
        tracer = Tracer(clock=lambda: next(ticks))
        with tracer.span("work", cat="test", args={"k": 1}) as span:
            span.annotate(extra=2)
        (event,) = tracer.events
        assert event["name"] == "work"
        assert event["cat"] == "test"
        assert event["ph"] == "X"
        assert event["ts"] == pytest.approx(2e6)
        assert event["dur"] == pytest.approx(3e6)
        assert event["args"] == {"k": 1, "extra": 2}

    def test_record_span_units_and_clamping(self):
        tracer = Tracer()
        tracer.record_span("a", start=1.0, dur=0.5, unit="s")
        tracer.record_span("b", start=1.0, dur=0.5, unit="ms")
        tracer.record_span("c", start=1.0, dur=-0.5, unit="us")
        a, b, c = tracer.events
        assert a["ts"] == pytest.approx(1e6) and a["dur"] == pytest.approx(5e5)
        assert b["ts"] == pytest.approx(1e3) and b["dur"] == pytest.approx(5e2)
        assert c["ts"] == pytest.approx(1.0) and c["dur"] == 0.0  # clamped

    def test_instant_and_event(self):
        ticks = iter([4.0])
        tracer = Tracer(clock=lambda: next(ticks))
        tracer.event("clocked", cat="test", value=7)
        tracer.instant("explicit", cat="cluster", ts=3.0, unit="ms")
        clocked, explicit = tracer.events
        assert clocked["ph"] == "i" and clocked["ts"] == pytest.approx(4e6)
        assert clocked["args"] == {"value": 7}
        assert explicit["ph"] == "i" and explicit["ts"] == pytest.approx(3e3)

    def test_invalid_unit_rejected(self):
        with pytest.raises(ValueError, match="unit"):
            Tracer(unit="ns")

    def test_set_tracer_returns_previous(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            assert set_tracer(previous) is tracer
        assert set_tracer(None) is previous or get_tracer() is NULL_TRACER
        set_tracer(previous)

    def test_clear(self):
        tracer = Tracer()
        tracer.record_span("x", start=0.0, dur=1.0)
        tracer.clear()
        assert tracer.events == []


# --------------------------------------------------------------------------- #
# Trace invariance across backends and storage tiers
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def inv_edges():
    return generate_rmat(9, rng=5)


@pytest.fixture(scope="module")
def inv_graphs(inv_edges):
    base = build_partitions(inv_edges, LAYOUT, 32)
    return {
        "memory": base,
        "mmap": apply_storage(base, "mmap"),
        "compressed": apply_storage(base, "compressed"),
    }


@pytest.fixture(scope="module")
def inv_baseline(inv_graphs):
    """The untraced inline/memory reference result."""
    engine = TraversalEngine(inv_graphs["memory"])
    try:
        return engine.run(BFSLevels(1))
    finally:
        engine.close()


def assert_results_identical(a, b) -> None:
    np.testing.assert_array_equal(a.distances, b.distances)
    assert a.iterations == b.iterations
    assert a.total_edges_examined == b.total_edges_examined
    assert a.workload_by_kernel() == b.workload_by_kernel()
    assert a.comm_stats.as_dict() == b.comm_stats.as_dict()
    assert a.timing.elapsed_ms == b.timing.elapsed_ms


class TestTraceInvariance:
    @pytest.mark.parametrize("backend", ["inline", "process", "thread"])
    @pytest.mark.parametrize("storage", ["memory", "mmap", "compressed"])
    def test_counters_identical_tracing_on(
        self, inv_graphs, inv_baseline, backend, storage
    ):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            engine = TraversalEngine(inv_graphs[storage], backend=backend)
            try:
                result = engine.run(BFSLevels(1))
            finally:
                engine.close()
        finally:
            set_tracer(previous)
        assert_results_identical(result, inv_baseline)
        cats = {e["cat"] for e in tracer.events}
        assert {"engine", "exec", "worker"} <= cats

    @pytest.mark.parametrize("backend", ["process", "thread"])
    def test_worker_spans_nest_inside_kernel_spans(self, inv_graphs, backend):
        """Every worker span sits inside its super-step's kernels span."""
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            engine = TraversalEngine(inv_graphs["memory"], backend=backend)
            try:
                engine.run(BFSLevels(1))
            finally:
                engine.close()
        finally:
            set_tracer(previous)
        kernel_spans = [
            e for e in tracer.events if e["cat"] == "exec" and e["name"] == "kernels"
        ]
        worker_spans = [e for e in tracer.events if e["cat"] == "worker"]
        assert kernel_spans and worker_spans
        slack_us = 1e3  # 1 ms of cross-clock slack
        for w in worker_spans:
            assert any(
                k["ts"] - slack_us <= w["ts"]
                and w["ts"] + w["dur"] <= k["ts"] + k["dur"] + slack_us
                for k in kernel_spans
            ), f"worker span {w['name']} at {w['ts']} outside every kernels span"
            assert w["tid"] >= 1  # per-GPU track, off the main thread's 0

    def test_disabled_tracing_records_nothing(self, inv_graphs):
        assert get_tracer() is NULL_TRACER
        engine = TraversalEngine(inv_graphs["memory"], backend="thread")
        try:
            engine.run(BFSLevels(1))
        finally:
            engine.close()
        assert NULL_TRACER.events == []


# --------------------------------------------------------------------------- #
# Exporters and the summarizer
# --------------------------------------------------------------------------- #
class TestExporters:
    def _tracer_with_events(self) -> Tracer:
        tracer = Tracer()
        tracer.record_span("outer", cat="engine", start=0.0, dur=2.0, args={"n": 1})
        tracer.record_span("inner", cat="worker", start=0.5, dur=1.0, tid=2)
        tracer.instant("mark", cat="cluster", ts=1.0, unit="ms")
        return tracer

    def test_chrome_trace_shape(self):
        tracer = self._tracer_with_events()
        payload = chrome_trace(tracer.events)
        assert set(payload) == {"traceEvents", "displayTimeUnit"}
        assert len(payload["traceEvents"]) == 3
        for event in payload["traceEvents"]:
            assert event["ph"] in ("X", "i")
            assert "ts" in event and "pid" in event and "tid" in event

    @pytest.mark.parametrize("suffix", [".json", ".jsonl"])
    def test_write_load_round_trip(self, tmp_path, suffix):
        tracer = self._tracer_with_events()
        path = write_trace(tracer, tmp_path / f"trace{suffix}")
        events = load_trace(path)
        assert events == tracer.events
        json.loads(path.read_text().splitlines()[0])  # both formats are JSON lines/objects

    def test_load_trace_rejects_garbage(self, tmp_path):
        path = tmp_path / "not_a_trace.json"
        path.write_text('{"foo": 1}')
        with pytest.raises(ValueError, match="traceEvents"):
            load_trace(path)

    def test_summarize_events(self):
        tracer = self._tracer_with_events()
        summary = summarize_events(tracer.events)
        assert summary["events"] == 3
        assert summary["spans"]["engine/outer"]["count"] == 1
        assert summary["spans"]["engine/outer"]["total_ms"] == pytest.approx(2e3)
        assert summary["spans"]["worker/inner"]["mean_ms"] == pytest.approx(1e3)
        assert summary["instants"] == {"cluster/mark": 1}
        # Hottest span leads.
        assert next(iter(summary["spans"])) == "engine/outer"
        lines = summary_lines(summary)
        assert any("engine/outer" in line for line in lines)


# --------------------------------------------------------------------------- #
# Metrics and Prometheus exposition
# --------------------------------------------------------------------------- #
class TestMetrics:
    def test_registry_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.counter("queries", 3)
        registry.counter("queries", 2)
        registry.gauge("inflight", 7)
        registry.histogram("latency_ms").record(1.0)
        registry.histogram("latency_ms").record(3.0)
        snap = registry.snapshot()
        assert snap["counters"]["queries"] == 5
        assert snap["gauges"]["inflight"] == 7
        assert snap["histograms"]["latency_ms"]["count"] == 2
        text = registry.to_prometheus()
        assert "repro_counters_queries 5" in text

    def test_prometheus_text_flattening(self):
        snapshot = {
            "service": {"queries": 10, "wall_s": 1.5},
            "cache_hit_rate": 0.25,
            "enabled": True,
            "name": "ignored-string",
            "missing": None,
            "latency": {"p95 ms": 2.5},
        }
        text = prometheus_text(snapshot)
        assert "repro_service_queries 10" in text
        assert "repro_cache_hit_rate 0.25" in text
        assert "repro_enabled 1" in text
        assert "repro_latency_p95_ms 2.5" in text  # sanitized name
        assert "ignored-string" not in text
        assert "missing" not in text
        assert text.endswith("\n")


# --------------------------------------------------------------------------- #
# Bench integration: trace sections and the machine-readable compare
# --------------------------------------------------------------------------- #
def tiny_scenario() -> Scenario:
    return Scenario(
        name="tiny-levels",
        kind="rmat",
        scale=9,
        program="levels",
        layout="2x1x2",
        threshold=32,
        sources=1,
        quick=True,
    )


class TestBenchIntegration:
    def test_run_suite_records_trace_section(self, fresh_tracer):
        artifact = run_suite([tiny_scenario()], repeats=1)
        record = artifact["scenarios"]["tiny-levels"]
        assert "trace" in record
        assert record["trace"]["events"] > 0
        assert any(key.startswith("engine/") for key in record["trace"]["spans"])

    def test_run_suite_untraced_has_no_trace_section(self):
        assert get_tracer() is NULL_TRACER
        artifact = run_suite([tiny_scenario()], repeats=1)
        assert "trace" not in artifact["scenarios"]["tiny-levels"]

    def test_compare_json_wall_deltas_and_drift_list(self):
        def record(traversal_s: float, checksum: int) -> dict:
            return {
                "spec": {"kind": "rmat", "scale": 10, "program": "levels"},
                "repeats": 1,
                "wall_s": {"traversal": traversal_s},
                "modeled_ms": {"elapsed_ms": 1.0},
                "counters": {"values_checksum": checksum},
            }

        old = new_artifact(
            {"a": record(0.100, 1), "b": record(0.100, 2)}, label="old"
        )
        new = new_artifact(
            {"a": record(0.150, 1), "b": record(0.100, 99)}, label="new"
        )
        report = compare_artifacts(old, new, tolerance=0.2, min_delta_s=0.01)
        payload = report.as_dict()
        by_name = {s["name"]: s for s in payload["scenarios"]}
        assert by_name["a"]["wall_delta_s"] == pytest.approx(0.050)
        assert by_name["a"]["status"] == "regression"
        assert payload["regression_scenarios"] == ["a"]
        assert payload["counter_drift_scenarios"] == [
            {"name": "b", "note": by_name["b"]["note"]}
        ]
        assert "values_checksum" in payload["counter_drift_scenarios"][0]["note"]
        assert not payload["counters_ok"]
        json.dumps(payload)  # must be JSON-serializable as-is


# --------------------------------------------------------------------------- #
# Serving-tier spans
# --------------------------------------------------------------------------- #
class TestServeSpans:
    def test_service_flush_spans_and_cache_events(self, fresh_tracer, inv_graphs):
        from repro.serve import Query, QueryService

        engine = TraversalEngine(inv_graphs["memory"])
        try:
            service = QueryService(engine, batch_size=8, cache_size=16)
            service.submit(Query(program="levels", source=1))
            service.submit(Query(program="levels", source=1))
            service.flush()
            service.submit(Query(program="levels", source=1))
            service.flush()
        finally:
            engine.close()
        names = [(e["cat"], e["name"]) for e in fresh_tracer.events]
        assert names.count(("serve", "flush")) == 2
        assert ("serve", "cache-miss") in names
        assert ("serve", "cache-hit") in names
        assert ("serve", "coalesce") in names
        flushes = [
            e for e in fresh_tracer.events
            if e["cat"] == "serve" and e["name"] == "flush"
        ]
        assert flushes[0]["args"]["misses"] == 1
        assert flushes[1]["args"]["hits"] == 1


# --------------------------------------------------------------------------- #
# Session facade
# --------------------------------------------------------------------------- #
class TestSessionTrace:
    def test_session_trace_and_write(self, tmp_path):
        import repro

        path = tmp_path / "session.trace.json"
        s = repro.session(layout="2x1x2").generate(scale=9, seed=5).trace(path)
        try:
            s.bfs(1)
            assert s.tracer is not None and s.tracer.events
            out = s.write_trace()
            events = load_trace(out)
            assert any(e["name"] == "traversal" for e in events)
        finally:
            set_tracer(None)

    def test_write_trace_without_trace_raises(self):
        import repro

        s = repro.session()
        with pytest.raises(RuntimeError, match="trace"):
            s.write_trace()
