"""Tests for degree analysis, whole-graph properties, permutation and I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.degree import degree_histogram, degree_summary, in_degrees, out_degrees
from repro.graph.edgelist import EdgeList
from repro.graph.generators import path_edges, star_edges
from repro.graph.io import load_npz, load_text, save_npz, save_text
from repro.graph.permute import apply_vertex_permutation, hashed_relabel, invert_permutation
from repro.graph.properties import analyze_graph, bfs_depth_estimate
from repro.graph.rmat import generate_rmat


class TestDegrees:
    def test_out_and_in_degrees(self):
        e = EdgeList([0, 0, 1], [1, 2, 2], 4)
        np.testing.assert_array_equal(out_degrees(e), [2, 1, 0, 0])
        np.testing.assert_array_equal(in_degrees(e), [0, 1, 2, 0])

    def test_histogram(self):
        values, counts = degree_histogram(np.asarray([0, 0, 1, 3, 3, 3]))
        np.testing.assert_array_equal(values, [0, 1, 3])
        np.testing.assert_array_equal(counts, [2, 1, 3])

    def test_histogram_empty(self):
        values, counts = degree_histogram(np.zeros(0, dtype=np.int64))
        assert values.size == 0 and counts.size == 0

    def test_summary_star(self):
        s = degree_summary(star_edges(9))
        assert s.max_degree == 9
        assert s.isolated_vertices == 9
        assert s.gini > 0.8  # a star is maximally unequal

    def test_summary_regular_graph_has_low_gini(self):
        e = path_edges(100).prepared(hash_seed=None)
        s = degree_summary(e)
        assert s.gini < 0.2


class TestProperties:
    def test_path_diameter_estimate(self):
        e = path_edges(30).prepared(hash_seed=None)
        assert bfs_depth_estimate(e, source=0) == 29

    def test_analyze_counts_components(self):
        # Two disjoint edges -> 2 components + 1 isolated vertex = 3 weak comps.
        e = EdgeList([0, 2], [1, 3], 5).prepared(hash_seed=None)
        props = analyze_graph(e)
        assert props.num_components == 3
        assert props.num_isolated == 1
        assert props.largest_component_size == 2

    def test_analyze_empty_graph(self):
        props = analyze_graph(EdgeList([], [], 0))
        assert props.num_vertices == 0
        assert props.num_components == 0


class TestPermute:
    def test_invert_permutation(self):
        perm = np.asarray([2, 0, 1])
        inv = invert_permutation(perm)
        np.testing.assert_array_equal(perm[inv], [0, 1, 2])

    def test_apply_permutation_matches_edgelist_method(self):
        e = EdgeList([0, 1], [1, 2], 3)
        perm = np.asarray([1, 2, 0])
        a = apply_vertex_permutation(e, perm)
        b = e.relabeled(perm)
        np.testing.assert_array_equal(a.src, b.src)

    def test_hashed_relabel_returns_permutation(self):
        e = generate_rmat(8, rng=1, hash_seed=None)
        relabeled, perm = hashed_relabel(e, seed=9)
        assert perm.shape == (e.num_vertices,)
        # Mapping back with the inverse permutation restores the original.
        inv = invert_permutation(perm)
        restored = relabeled.relabeled(inv)
        assert {(int(s), int(d)) for s, d in zip(restored.src, restored.dst)} == {
            (int(s), int(d)) for s, d in zip(e.src, e.dst)
        }


class TestIO:
    def test_npz_roundtrip(self, tmp_path):
        e = generate_rmat(8, rng=3)
        path = tmp_path / "graph.npz"
        save_npz(path, e)
        loaded = load_npz(path)
        assert loaded.num_vertices == e.num_vertices
        np.testing.assert_array_equal(loaded.src, e.src)
        np.testing.assert_array_equal(loaded.dst, e.dst)

    def test_npz_rejects_wrong_archive(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(ValueError):
            load_npz(path)

    def test_text_roundtrip_with_header(self, tmp_path):
        e = EdgeList([0, 4], [4, 2], 10)
        path = tmp_path / "graph.txt"
        save_text(path, e)
        loaded = load_text(path)
        assert loaded.num_vertices == 10
        np.testing.assert_array_equal(loaded.src, e.src)

    def test_text_roundtrip_without_header(self, tmp_path):
        e = EdgeList([0, 4], [4, 2], 10)
        path = tmp_path / "graph.txt"
        save_text(path, e, header=False)
        loaded = load_text(path)
        # Without a header the vertex count is inferred from the max id.
        assert loaded.num_vertices == 5
        loaded10 = load_text(path, num_vertices=10)
        assert loaded10.num_vertices == 10

    def test_text_empty_graph(self, tmp_path):
        e = EdgeList([], [], 3)
        path = tmp_path / "empty.txt"
        save_text(path, e)
        loaded = load_text(path, num_vertices=3)
        assert loaded.num_edges == 0
        assert loaded.num_vertices == 3
