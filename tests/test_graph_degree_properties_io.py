"""Tests for degree analysis, whole-graph properties, permutation and I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.degree import degree_histogram, degree_summary, in_degrees, out_degrees
from repro.graph.edgelist import EdgeList
from repro.graph.generators import path_edges, star_edges
from repro.graph.io import (
    binary_edge_count,
    iter_binary,
    load_binary,
    load_npz,
    load_text,
    save_binary,
    save_npz,
    save_text,
)
from repro.graph.permute import apply_vertex_permutation, hashed_relabel, invert_permutation
from repro.graph.properties import analyze_graph, bfs_depth_estimate
from repro.graph.rmat import generate_rmat


class TestDegrees:
    def test_out_and_in_degrees(self):
        e = EdgeList([0, 0, 1], [1, 2, 2], 4)
        np.testing.assert_array_equal(out_degrees(e), [2, 1, 0, 0])
        np.testing.assert_array_equal(in_degrees(e), [0, 1, 2, 0])

    def test_histogram(self):
        values, counts = degree_histogram(np.asarray([0, 0, 1, 3, 3, 3]))
        np.testing.assert_array_equal(values, [0, 1, 3])
        np.testing.assert_array_equal(counts, [2, 1, 3])

    def test_histogram_empty(self):
        values, counts = degree_histogram(np.zeros(0, dtype=np.int64))
        assert values.size == 0 and counts.size == 0

    def test_summary_star(self):
        s = degree_summary(star_edges(9))
        assert s.max_degree == 9
        assert s.isolated_vertices == 9
        assert s.gini > 0.8  # a star is maximally unequal

    def test_summary_regular_graph_has_low_gini(self):
        e = path_edges(100).prepared(hash_seed=None)
        s = degree_summary(e)
        assert s.gini < 0.2


class TestProperties:
    def test_path_diameter_estimate(self):
        e = path_edges(30).prepared(hash_seed=None)
        assert bfs_depth_estimate(e, source=0) == 29

    def test_analyze_counts_components(self):
        # Two disjoint edges -> 2 components + 1 isolated vertex = 3 weak comps.
        e = EdgeList([0, 2], [1, 3], 5).prepared(hash_seed=None)
        props = analyze_graph(e)
        assert props.num_components == 3
        assert props.num_isolated == 1
        assert props.largest_component_size == 2

    def test_analyze_empty_graph(self):
        props = analyze_graph(EdgeList([], [], 0))
        assert props.num_vertices == 0
        assert props.num_components == 0


class TestPermute:
    def test_invert_permutation(self):
        perm = np.asarray([2, 0, 1])
        inv = invert_permutation(perm)
        np.testing.assert_array_equal(perm[inv], [0, 1, 2])

    def test_apply_permutation_matches_edgelist_method(self):
        e = EdgeList([0, 1], [1, 2], 3)
        perm = np.asarray([1, 2, 0])
        a = apply_vertex_permutation(e, perm)
        b = e.relabeled(perm)
        np.testing.assert_array_equal(a.src, b.src)

    def test_hashed_relabel_returns_permutation(self):
        e = generate_rmat(8, rng=1, hash_seed=None)
        relabeled, perm = hashed_relabel(e, seed=9)
        assert perm.shape == (e.num_vertices,)
        # Mapping back with the inverse permutation restores the original.
        inv = invert_permutation(perm)
        restored = relabeled.relabeled(inv)
        assert {(int(s), int(d)) for s, d in zip(restored.src, restored.dst)} == {
            (int(s), int(d)) for s, d in zip(e.src, e.dst)
        }


class TestIO:
    def test_npz_roundtrip(self, tmp_path):
        e = generate_rmat(8, rng=3)
        path = tmp_path / "graph.npz"
        save_npz(path, e)
        loaded = load_npz(path)
        assert loaded.num_vertices == e.num_vertices
        np.testing.assert_array_equal(loaded.src, e.src)
        np.testing.assert_array_equal(loaded.dst, e.dst)

    def test_npz_rejects_wrong_archive(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(ValueError):
            load_npz(path)

    def test_text_roundtrip_with_header(self, tmp_path):
        e = EdgeList([0, 4], [4, 2], 10)
        path = tmp_path / "graph.txt"
        save_text(path, e)
        loaded = load_text(path)
        assert loaded.num_vertices == 10
        np.testing.assert_array_equal(loaded.src, e.src)

    def test_text_roundtrip_without_header(self, tmp_path):
        e = EdgeList([0, 4], [4, 2], 10)
        path = tmp_path / "graph.txt"
        save_text(path, e, header=False)
        loaded = load_text(path)
        # Without a header the vertex count is inferred from the max id.
        assert loaded.num_vertices == 5
        loaded10 = load_text(path, num_vertices=10)
        assert loaded10.num_vertices == 10

    def test_text_empty_graph(self, tmp_path):
        e = EdgeList([], [], 3)
        path = tmp_path / "empty.txt"
        save_text(path, e)
        loaded = load_text(path, num_vertices=3)
        assert loaded.num_edges == 0
        assert loaded.num_vertices == 3

    @pytest.mark.parametrize("dtype", [np.int16, np.int32, np.int64, np.uint32])
    def test_npz_roundtrip_across_dtypes(self, tmp_path, dtype):
        src = np.array([0, 3, 7], dtype=dtype)
        dst = np.array([1, 0, 2], dtype=dtype)
        e = EdgeList(src, dst, 9)
        path = tmp_path / "g.npz"
        save_npz(path, e)
        loaded = load_npz(path)
        # Loads always normalize to int64 regardless of the input dtype.
        assert loaded.src.dtype == np.int64 and loaded.dst.dtype == np.int64
        np.testing.assert_array_equal(loaded.src, src.astype(np.int64))
        np.testing.assert_array_equal(loaded.dst, dst.astype(np.int64))

    def test_npz_empty_graph(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_npz(path, EdgeList([], [], 5))
        loaded = load_npz(path)
        assert loaded.num_edges == 0 and loaded.num_vertices == 5

    def test_npz_preserves_isolated_vertices(self, tmp_path):
        # Vertex 9 has no incident edge; num_vertices must survive the trip.
        e = EdgeList([0, 1], [1, 2], 10)
        path = tmp_path / "iso.npz"
        save_npz(path, e)
        assert load_npz(path).num_vertices == 10


class TestBinaryIO:
    def test_roundtrip(self, tmp_path):
        e = generate_rmat(8, rng=3)
        path = tmp_path / "graph.bin"
        save_binary(path, e)
        loaded = load_binary(path)
        assert loaded.num_vertices == e.num_vertices
        np.testing.assert_array_equal(loaded.src, e.src)
        np.testing.assert_array_equal(loaded.dst, e.dst)

    @pytest.mark.parametrize("dtype", [np.int16, np.int32, np.int64])
    def test_roundtrip_across_dtypes(self, tmp_path, dtype):
        e = EdgeList(
            np.array([0, 5], dtype=dtype), np.array([2, 1], dtype=dtype), 7
        )
        path = tmp_path / "g.bin"
        save_binary(path, e)
        loaded = load_binary(path)
        assert loaded.src.dtype == np.int64
        np.testing.assert_array_equal(loaded.src, [0, 5])
        np.testing.assert_array_equal(loaded.dst, [2, 1])

    def test_empty_graph_and_isolated_vertices(self, tmp_path):
        path = tmp_path / "empty.bin"
        save_binary(path, EdgeList([], [], 4))
        loaded = load_binary(path)
        assert loaded.num_edges == 0 and loaded.num_vertices == 4
        assert binary_edge_count(path) == (4, 0)
        assert list(iter_binary(path)) == []

    def test_streamed_iteration_matches_bulk_load(self, tmp_path):
        e = generate_rmat(8, rng=5)
        path = tmp_path / "g.bin"
        save_binary(path, e)
        chunks = list(iter_binary(path, chunk_edges=500))
        assert all(s.size <= 500 for s, _ in chunks)
        np.testing.assert_array_equal(np.concatenate([s for s, _ in chunks]), e.src)
        np.testing.assert_array_equal(np.concatenate([d for _, d in chunks]), e.dst)
        assert binary_edge_count(path) == (e.num_vertices, e.num_edges)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 16)
        with pytest.raises(ValueError, match="not a binary edge list"):
            load_binary(path)

    def test_truncated_payload_rejected(self, tmp_path):
        e = EdgeList([0, 1, 2], [1, 2, 0], 3)
        path = tmp_path / "t.bin"
        save_binary(path, e)
        data = path.read_bytes()
        path.write_bytes(data[:-8])  # chop half an edge record off
        with pytest.raises(ValueError, match="truncated"):
            load_binary(path)
