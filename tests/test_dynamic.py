"""Tests for the mutable-graph subsystem (repro.dynamic) and its integrations."""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro
from repro.bench import Scenario, run_scenario
from repro.cli import main
from repro.core.programs import (
    BatchedBFSLevels,
    BFSLevels,
    ConnectedComponents,
    KHopReachability,
)
from repro.dynamic import (
    DynamicEngine,
    DynamicGraph,
    EdgeDelta,
    MaintainedComponents,
    MaintainedLevels,
    update_stream,
)
from repro.graph.rmat import generate_rmat
from repro.partition.layout import ClusterLayout
from repro.partition.subgraphs import build_partitions
from repro.serve import MixedWorkload, Query, QueryService, ZipfWorkload


@pytest.fixture(scope="module")
def rmat10():
    return generate_rmat(10, rng=5)


def fresh_engine(edges, threshold=32, layout="2x1x2", **kwargs):
    return DynamicEngine(DynamicGraph(edges, layout, threshold), **kwargs)


# --------------------------------------------------------------------------- #
# EdgeDelta + update streams
# --------------------------------------------------------------------------- #
class TestEdgeDelta:
    def test_validation(self):
        with pytest.raises(ValueError, match="same length"):
            EdgeDelta(insert_src=[1, 2], insert_dst=[3])
        with pytest.raises(ValueError, match="non-negative"):
            EdgeDelta(insert_src=[-1], insert_dst=[3])
        delta = EdgeDelta.inserts([[1, 2], [3, 4]])
        assert delta.num_inserts == 2 and delta.num_deletes == 0
        assert not delta.empty
        assert EdgeDelta().empty
        assert EdgeDelta.deletes([[1, 2]]).num_deletes == 1

    def test_describe_json_stable(self):
        d = EdgeDelta.inserts([[0, 1]]).describe()
        assert json.loads(json.dumps(d)) == {"inserts": 1, "deletes": 0}


class TestUpdateStream:
    def test_deterministic(self, rmat10):
        a = update_stream(rmat10, 3, 64, style="pa", seed=7)
        b = update_stream(rmat10, 3, 64, style="pa", seed=7)
        for da, db in zip(a, b):
            np.testing.assert_array_equal(da.insert_src, db.insert_src)
            np.testing.assert_array_equal(da.insert_dst, db.insert_dst)
        c = update_stream(rmat10, 3, 64, style="pa", seed=8)
        assert not np.array_equal(a[0].insert_src, c[0].insert_src)

    def test_styles_and_shapes(self, rmat10):
        for style in ("uniform", "pa"):
            stream = update_stream(rmat10, 2, 50, style=style, seed=3)
            assert len(stream) == 2
            for delta in stream:
                assert delta.num_inserts == 50
                assert np.all(delta.insert_src != delta.insert_dst)  # no loops

    def test_pa_prefers_hubs(self, rmat10):
        degrees = np.bincount(rmat10.src, minlength=rmat10.num_vertices)
        hot = np.argsort(degrees)[-32:]
        pa = np.concatenate(
            [d.insert_dst for d in update_stream(rmat10, 4, 256, style="pa", seed=2)]
        )
        uni = np.concatenate(
            [d.insert_dst for d in update_stream(rmat10, 4, 256, style="uniform", seed=2)]
        )
        assert np.isin(pa, hot).mean() > 2 * np.isin(uni, hot).mean()

    def test_delete_fraction(self, rmat10):
        stream = update_stream(rmat10, 2, 40, delete_fraction=0.5, seed=4)
        for delta in stream:
            assert delta.num_inserts == 20 and delta.num_deletes == 20

    def test_rejects_bad_args(self, rmat10):
        with pytest.raises(ValueError, match="style"):
            update_stream(rmat10, 1, 8, style="bursty")
        with pytest.raises(ValueError, match="delete_fraction"):
            update_stream(rmat10, 1, 8, delete_fraction=1.5)


# --------------------------------------------------------------------------- #
# DynamicGraph mechanics
# --------------------------------------------------------------------------- #
class TestDynamicGraph:
    def test_apply_inserts_and_versioning(self, rmat10):
        dyn = DynamicGraph(rmat10, "2x1x2", 32)
        assert dyn.version == 0 and dyn.compactions == 0
        before = dyn.num_directed_edges
        applied = dyn.apply(EdgeDelta.inserts([[1, 1000]]))
        assert applied.version == dyn.version == 1
        # Symmetrized: both directions became present.
        assert dyn.num_directed_edges == before + 2
        assert dyn.has_edge(1, 1000) and dyn.has_edge(1000, 1)
        assert dyn.overlay.num_edges == 2

    def test_duplicate_insert_and_absent_delete_are_noops(self, rmat10):
        dyn = DynamicGraph(rmat10, "2x1x2", 32)
        dyn.apply(EdgeDelta.inserts([[1, 1000]]))
        again = dyn.apply(EdgeDelta.inserts([[1, 1000], [1000, 1]]))
        assert again.num_inserts == 0 and dyn.overlay.num_edges == 2
        absent = dyn.apply(EdgeDelta.deletes([[5, 999]]))
        assert absent.num_deletes == 0
        assert dyn.version == 3  # every apply bumps, even a no-op

    def test_self_loops_dropped(self, rmat10):
        dyn = DynamicGraph(rmat10, "2x1x2", 32)
        applied = dyn.apply(EdgeDelta.inserts([[7, 7]]))
        assert applied.num_inserts == 0

    def test_out_of_range_endpoint_rejected(self, rmat10):
        dyn = DynamicGraph(rmat10, "2x1x2", 32)
        with pytest.raises(ValueError, match="out of range"):
            dyn.apply(EdgeDelta.inserts([[0, rmat10.num_vertices]]))

    def test_overlay_delete_avoids_compaction_csr_delete_forces_it(self, rmat10):
        dyn = DynamicGraph(rmat10, "2x1x2", 32)
        dyn.apply(EdgeDelta.inserts([[1, 1000]]))
        soft = dyn.apply(EdgeDelta.deletes([[1, 1000]]))
        assert not soft.compacted and dyn.overlay.num_edges == 0
        assert not dyn.has_edge(1, 1000)
        u, v = int(rmat10.src[0]), int(rmat10.dst[0])
        hard = dyn.apply(EdgeDelta.deletes([[u, v]]))
        assert hard.compacted and hard.compact_reason == "csr-delete"
        assert not dyn.has_edge(u, v) and not dyn.has_edge(v, u)
        assert dyn.compactions == 1

    def test_overlay_fraction_triggers_compaction(self, rmat10):
        dyn = DynamicGraph(rmat10, "2x1x2", 32, max_overlay_fraction=0.001)
        pairs = np.stack([np.arange(1, 40), np.arange(200, 239)], axis=1)
        applied = dyn.apply(EdgeDelta.inserts(pairs))
        assert applied.compacted and applied.compact_reason == "overlay-fraction"
        assert dyn.overlay.empty

    def test_degree_crossings_trigger_compaction(self, rmat10):
        dyn = DynamicGraph(
            rmat10, "2x1x2", 512, max_degree_crossings=3, max_overlay_fraction=1.0
        )
        # With TH=512 nothing is a delegate; push several vertices across.
        hubs = [3, 5, 9, 11]
        pairs = [[h, (h * 31 + k) % 1024] for h in hubs for k in range(600)]
        applied = dyn.apply(EdgeDelta.inserts(pairs))
        assert applied.compacted and applied.compact_reason == "degree-crossings"
        assert dyn.pending_crossings == 0
        assert dyn.partitioned.separation.is_delegate[hubs].all()

    def test_compaction_matches_rebuild_from_scratch(self, rmat10):
        dyn = DynamicGraph(rmat10, "2x1x2", 32)
        for delta in update_stream(rmat10, 2, 128, seed=6, delete_fraction=0.25):
            dyn.apply(delta)
        dyn.compact()
        rebuilt = build_partitions(
            dyn.edges, ClusterLayout.from_notation("2x1x2"), 32
        )
        assert dyn.partitioned.num_directed_edges == rebuilt.num_directed_edges
        assert dyn.partitioned.num_delegates == rebuilt.num_delegates
        np.testing.assert_array_equal(
            dyn.partitioned.separation.delegate_vertices,
            rebuilt.separation.delegate_vertices,
        )

    def test_adopts_existing_partitioning(self, rmat10):
        graph = build_partitions(rmat10, ClusterLayout.from_notation("2x1x2"), 32)
        dyn = DynamicGraph(rmat10, "2x1x2", 32, partitioned=graph)
        assert dyn.partitioned is graph
        with pytest.raises(ValueError, match="disagrees"):
            DynamicGraph(rmat10, "2x1x2", 64, partitioned=graph)

    def test_rejects_duplicate_input_edges(self):
        from repro.graph.edgelist import EdgeList

        dup = EdgeList([0, 0, 1], [1, 1, 0], 4)
        with pytest.raises(ValueError, match="duplicates"):
            DynamicGraph(dup, "2x1x2", 2)

    def test_caller_arrays_never_mutated(self, rmat10):
        src = rmat10.src.copy()
        dyn = DynamicGraph(rmat10, "2x1x2", 32)
        dyn.apply(EdgeDelta.inserts([[1, 1000]]))
        np.testing.assert_array_equal(rmat10.src, src)


# --------------------------------------------------------------------------- #
# Traversals over the overlay (from-scratch correctness)
# --------------------------------------------------------------------------- #
class TestOverlayTraversal:
    @pytest.fixture(scope="class")
    def mutated(self, rmat10):
        # Generous budgets: these tests need the overlay to stay resident.
        dyn = DynamicGraph(
            rmat10, "2x1x2", 32, max_overlay_fraction=1.0, max_degree_crossings=10**6
        )
        engine = DynamicEngine(dyn)
        for delta in update_stream(rmat10, 3, 200, style="uniform", seed=9):
            engine.apply_delta(delta)
        assert not dyn.overlay.empty
        reference = build_partitions(
            dyn.edges, ClusterLayout.from_notation("2x1x2"), 32
        )
        return engine, reference

    def test_levels_match_compacted_graph(self, mutated):
        engine, reference = mutated
        from repro.core.engine import TraversalEngine

        ref_engine = TraversalEngine(reference)
        for source in (0, 17, 900):
            got = engine.run(BFSLevels(source=source))
            want = ref_engine.run(BFSLevels(source=source))
            np.testing.assert_array_equal(got.distances, want.distances)
            assert "overlay" in got.workload_by_kernel()

    def test_components_match_compacted_graph(self, mutated):
        engine, reference = mutated
        from repro.core.engine import TraversalEngine

        got = engine.run(ConnectedComponents())
        want = TraversalEngine(reference).run(ConnectedComponents())
        np.testing.assert_array_equal(got.labels, want.labels)

    def test_khop_matches_compacted_graph(self, mutated):
        engine, reference = mutated
        from repro.core.engine import TraversalEngine

        got = engine.run(KHopReachability(source=3, max_hops=2))
        want = TraversalEngine(reference).run(KHopReachability(source=3, max_hops=2))
        np.testing.assert_array_equal(got.distances, want.distances)

    def test_batched_lanes_match_sequential(self, mutated):
        engine, _ = mutated
        sources = [0, 3, 17, 250, 900, 1001, 40]
        batch = engine.run_batch(BatchedBFSLevels(sources))
        for lane, source in enumerate(sources):
            seq = engine.run(BFSLevels(source=source))
            np.testing.assert_array_equal(batch.distances_for(lane), seq.distances)

    def test_run_many_dedups_and_batches_with_overlay(self, mutated):
        engine, _ = mutated
        campaign = engine.run_many(
            [BFSLevels(source=s) for s in (1, 2, 1, 5)], batch_size=4
        )
        assert campaign.saved_traversals == 1
        np.testing.assert_array_equal(
            campaign[0].distances, engine.run(BFSLevels(source=1)).distances
        )


# --------------------------------------------------------------------------- #
# Incremental maintenance: the equivalence sweep
# --------------------------------------------------------------------------- #
SWEEP = [
    # (threshold, direction_optimized, blocking_reduce)
    (1, True, True),
    (None, True, True),       # the paper's suggested threshold ("auto")
    (10**9, True, True),      # effectively infinite: no delegates at all
    (None, False, True),      # DO off
    (None, True, False),      # IR reduction
    (1, False, False),
]


class TestIncrementalEquivalence:
    @pytest.mark.parametrize("threshold,do,br", SWEEP)
    @pytest.mark.parametrize("backend", ["inline", "process"])
    def test_maintained_answers_bit_identical(self, threshold, do, br, backend):
        edges = generate_rmat(9, rng=13)
        options = repro.BFSOptions(direction_optimized=do, blocking_reduce=br)
        dyn = DynamicGraph(edges, "2x1x2", threshold)
        engine = DynamicEngine(dyn, options=options, backend=backend)
        try:
            levels = MaintainedLevels(engine, source=1)
            components = MaintainedComponents(engine)
            stream = update_stream(edges, 2, 96, style="pa", seed=31)
            for delta in stream:
                applied = engine.apply_delta(delta)
                levels.update(applied)
                components.update(applied)
                levels.verify()      # raises unless bit-identical
                components.verify()
            assert levels.stats.repairs > 0 or levels.stats.skipped > 0
        finally:
            engine.close()

    def test_delete_falls_back_to_recompute(self, rmat10):
        engine = fresh_engine(rmat10)
        levels = MaintainedLevels(engine, source=0)
        u, v = int(rmat10.src[10]), int(rmat10.dst[10])
        applied = engine.apply_delta(EdgeDelta.deletes([[u, v]]))
        levels.update(applied)
        levels.verify()
        assert levels.stats.recomputes == 2  # initial + fallback
        assert levels.stats.repairs == 0

    def test_unreachable_vertex_becomes_reachable(self, rmat10):
        # Find an unreached vertex, connect it, and expect a repaired level.
        engine = fresh_engine(rmat10)
        levels = MaintainedLevels(engine, source=0)
        unreached = int(np.flatnonzero(levels.values < 0)[0])
        applied = engine.apply_delta(EdgeDelta.inserts([[0, unreached]]))
        levels.update(applied)
        assert levels.values[unreached] == 1
        levels.verify()

    def test_noop_delta_skips_traversal(self, rmat10):
        engine = fresh_engine(rmat10)
        levels = MaintainedLevels(engine, source=0)
        unreached = np.flatnonzero(levels.values < 0)
        if unreached.size < 2:
            pytest.skip("graph has too few unreachable vertices")
        a, b = (int(x) for x in unreached[:2])
        applied = engine.apply_delta(EdgeDelta.inserts([[a, b]]))
        levels.update(applied)
        assert levels.stats.skipped == 1 and levels.stats.repairs == 0
        levels.verify()

    def test_out_of_order_update_recomputes(self, rmat10):
        engine = fresh_engine(rmat10)
        levels = MaintainedLevels(engine, source=0)
        engine.apply_delta(EdgeDelta.inserts([[1, 900]]))
        applied = engine.apply_delta(EdgeDelta.inserts([[2, 901]]))
        levels.update(applied)  # skipped a version: must not trust seeding
        assert levels.stats.recomputes == 2
        levels.verify()

    def test_repair_cheaper_than_recompute(self, rmat10):
        engine = fresh_engine(rmat10)
        levels = MaintainedLevels(engine, source=0)
        full_edges = levels.result.total_edges_examined
        applied = engine.apply_delta(EdgeDelta.inserts([[0, 777]]))
        repaired = levels.update(applied)
        levels.verify()
        assert levels.stats.repairs == 1
        assert repaired.total_edges_examined < full_edges / 5

    def test_live_backend_instance_rejected(self, rmat10):
        # A backend object stays bound to the CSR it was built over; after a
        # compaction it would silently traverse the old graph.  Only name
        # specs may cross a DynamicEngine.
        from repro.exec import InlineBackend

        dyn = DynamicGraph(rmat10, "2x1x2", 32)
        with pytest.raises(ValueError, match="backend name"):
            DynamicEngine(dyn, backend=InlineBackend(dyn.partitioned))
        engine = DynamicEngine(dyn)
        with pytest.raises(ValueError, match="backend name"):
            engine.use_backend(InlineBackend(dyn.partitioned))
        engine.use_backend("inline")  # names stay fine

    def test_maintenance_across_compaction(self, rmat10):
        dyn = DynamicGraph(rmat10, "2x1x2", 32, max_overlay_fraction=0.002)
        engine = DynamicEngine(dyn)
        levels = MaintainedLevels(engine, source=0)
        compacted = False
        for delta in update_stream(rmat10, 3, 64, seed=41):
            applied = engine.apply_delta(delta)
            compacted = compacted or applied.compacted
            levels.update(applied)
            levels.verify()
        assert compacted  # the sweep must actually cross a compaction


# --------------------------------------------------------------------------- #
# Serving mutable graphs
# --------------------------------------------------------------------------- #
class TestDynamicServing:
    def test_apply_delta_invalidates_and_counts(self, rmat10):
        service = QueryService(fresh_engine(rmat10), batch_size=4, cache_size=32)
        first = service.query(Query("levels", 0))
        assert service.query(Query("levels", 0)) is first  # cached
        service.apply_delta(EdgeDelta.inserts([[0, 1023]]))
        snapshot = service.stats_snapshot()["service"]
        assert snapshot["updates"] == 1
        assert snapshot["epoch_bumps"] == 1
        assert snapshot["entries_invalidated"] == 1
        fresh = service.query(Query("levels", 0))
        assert fresh is not first
        assert fresh.distances[1023] == 1
        assert service.stats_snapshot()["graph_version"] == 1

    def test_apply_delta_requires_dynamic_engine(self, rmat10):
        from repro.core.engine import TraversalEngine

        graph = build_partitions(rmat10, ClusterLayout.from_notation("2x1x2"), 32)
        service = QueryService(TraversalEngine(graph), batch_size=2, cache_size=8)
        with pytest.raises(TypeError, match="frozen graph"):
            service.apply_delta(EdgeDelta.inserts([[0, 1]]))

    def test_pending_queries_answered_against_mutated_graph(self, rmat10):
        service = QueryService(
            fresh_engine(rmat10), batch_size=4, cache_size=32, batched=False
        )
        service.submit(Query("levels", 0))
        service.apply_delta(EdgeDelta.inserts([[0, 1023]]))  # flushes pending first
        assert service.pending == 0
        result = service.query(Query("levels", 0))
        assert result.distances[1023] == 1

    def test_mixed_workload_deterministic_and_replayable(self, rmat10):
        from repro.graph.degree import out_degrees

        mixed = MixedWorkload(
            queries=ZipfWorkload(num_queries=48, skew=1.0, pool=12, seed=3),
            update_rate=0.2,
            edges_per_update=32,
            update_seed=5,
        )
        degrees = out_degrees(rmat10)
        ops_a = mixed.generate(rmat10, degrees=degrees)
        ops_b = mixed.generate(rmat10, degrees=degrees)
        assert [type(o).__name__ for o in ops_a] == [type(o).__name__ for o in ops_b]
        assert any(isinstance(o, EdgeDelta) for o in ops_a)

        def replay():
            service = QueryService(fresh_engine(rmat10), batch_size=8, cache_size=32)
            results = service.run_mixed(ops_a)
            return service, results

        s1, r1 = replay()
        s2, r2 = replay()
        assert len(r1) == sum(isinstance(o, Query) for o in ops_a)
        assert s1.stats.updates == s2.stats.updates > 0
        assert s1.stats.entries_invalidated == s2.stats.entries_invalidated
        for a, b in zip(r1, r2):
            np.testing.assert_array_equal(a.distances, b.distances)

    def test_mixed_workload_validation(self):
        with pytest.raises(ValueError, match="update_rate"):
            MixedWorkload(update_rate=0.95)
        with pytest.raises(ValueError, match="edges_per_update"):
            MixedWorkload(edges_per_update=0)

    def test_session_mutate_and_serve(self, rmat10):
        graph = repro.session(layout="2x1x2").load(rmat10).threshold(32).build()
        baseline = graph.bfs(0).distances.copy()
        applied = graph.mutate(inserts=[[0, 1023]])
        assert applied.num_inserts >= 1 and graph.dynamic is not None
        after = graph.bfs(0).distances
        assert after[1023] == 1
        assert not np.array_equal(baseline, after)
        # further mutation through a prepared delta + deletes keyword
        graph.mutate(deletes=[[0, 1023]])
        np.testing.assert_array_equal(graph.bfs(0).distances, baseline)
        with pytest.raises(ValueError, match="delta or inserts"):
            graph.mutate()


# --------------------------------------------------------------------------- #
# Bench integration (dyn-* scenarios)
# --------------------------------------------------------------------------- #
def tiny_dynamic_scenario(**overrides) -> Scenario:
    kwargs = dict(
        name="dyn-test-tiny",
        kind="rmat",
        scale=9,
        program="dynamic",
        layout="2x1x2",
        threshold=32,
        maintained="levels",
        update_style="uniform",
        update_batches=2,
        update_edges=64,
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


class TestDynamicBench:
    def test_record_schema_and_both_paths_recorded(self):
        record = run_scenario(tiny_dynamic_scenario(), repeats=2)
        assert record["spec"]["program"] == "dynamic"
        counters = record["counters"]
        for key in (
            "updates_applied",
            "insert_edges",
            "repair_edges",
            "repair_modeled_ms",
            "recompute_edges",
            "recompute_modeled_ms",
            "answers_checksum",
        ):
            assert key in counters, key
        assert counters["updates_applied"] == 2
        dyn = record["dynamic"]
        assert dyn["mode"] == "incremental"
        assert dyn["modeled_recompute_ms"] > 0
        assert record["wall_s"]["traversal"] > 0
        assert json.loads(json.dumps(record)) == record

    def test_mode_changes_timing_not_counters(self):
        spec = tiny_dynamic_scenario()
        incremental = run_scenario(spec, repeats=2, dyn_incremental=True)
        recompute = run_scenario(spec, repeats=2, dyn_incremental=False)
        assert incremental["counters"] == recompute["counters"]
        assert incremental["dynamic"]["mode"] == "incremental"
        assert recompute["dynamic"]["mode"] == "recompute"

    def test_components_scenario_runs(self):
        record = run_scenario(
            tiny_dynamic_scenario(maintained="components"), repeats=2
        )
        assert record["counters"]["updates_applied"] == 2

    def test_registry_has_quick_dyn_scenario(self):
        from repro.bench import quick_scenarios

        names = [s.name for s in quick_scenarios() if s.program == "dynamic"]
        assert names, "the CI smoke subset must exercise a dyn-* scenario"

    def test_invalid_dynamic_scenarios_rejected(self):
        with pytest.raises(ValueError, match="maintained"):
            tiny_dynamic_scenario(maintained="parents")
        with pytest.raises(ValueError, match="update_batches"):
            tiny_dynamic_scenario(update_batches=0)


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
class TestDynamicCLI:
    def test_mutate_json(self, capsys):
        code = main(
            [
                "mutate",
                "--scale", "10",
                "--layout", "2x1x2",
                "--batches", "2",
                "--edges-per-batch", "64",
                "--style", "pa",
                "--json",
            ]
        )
        assert code == 0
        out = json.loads(capsys.readouterr().out)
        assert out["verified"] is True
        assert len(out["batches"]) == 2
        assert out["final_version"] == 2
        assert all("recompute_modeled_ms" in b for b in out["batches"])
        # the overlay's per-GPU assignment (real distributor rules) adds up
        assert sum(out["overlay_edges_per_gpu"]) == out["overlay_edges"]

    def test_mutate_components_with_deletes(self, capsys):
        code = main(
            [
                "mutate",
                "--scale", "9",
                "--layout", "2x1x2",
                "--program", "components",
                "--batches", "1",
                "--edges-per-batch", "32",
                "--delete-fraction", "0.5",
                "--json",
            ]
        )
        assert code == 0
        out = json.loads(capsys.readouterr().out)
        assert out["batches"][0]["deleted"] > 0

    def test_serve_bench_update_rate_json(self, capsys):
        code = main(
            [
                "serve", "bench",
                "--scale", "10",
                "--layout", "2x1x2",
                "--queries", "24",
                "--batch-size", "4",
                "--cache-size", "16",
                "--update-rate", "0.2",
                "--update-edges", "32",
                "--json",
            ]
        )
        assert code == 0
        out = json.loads(capsys.readouterr().out)
        service = out["batched"]["service"]
        assert service["updates"] > 0
        assert service["epoch_bumps"] == service["updates"]
        assert "entries_invalidated" in service
        assert out["workload"]["update_rate"] == 0.2
        # both replay modes applied the identical pinned stream
        assert out["sequential"]["service"]["updates"] == service["updates"]

    def test_bench_list_json_carries_family(self, capsys):
        assert main(["bench", "list", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert all(
            {"name", "family", "program", "backend"} <= set(row) for row in rows
        )
        dyn_rows = [r for r in rows if r["program"] == "dynamic"]
        assert dyn_rows and all(r["family"] == "rmat" for r in dyn_rows)
