"""Tests for the per-run BFS state container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.state import UNVISITED, BFSState
from repro.graph.degree import out_degrees
from repro.partition.layout import ClusterLayout
from repro.partition.subgraphs import build_partitions


@pytest.fixture()
def partitioned(rmat_small, small_layout):
    return build_partitions(rmat_small, small_layout, threshold=32)


class TestInitialization:
    def test_normal_source(self, partitioned):
        # Pick a source that is not a delegate.
        sep = partitioned.separation
        source = int(np.flatnonzero(~sep.is_delegate)[0])
        state = BFSState.initialize(partitioned, source)
        owner = int(partitioned.layout.flat_gpu_of(source))
        slot = int(partitioned.layout.local_index_of(source))
        assert state.normal_levels[owner][slot] == 0
        assert state.delegate_frontier.size == 0
        assert state.normal_frontiers[owner].size == 1
        assert state.visited_count() == 1

    def test_delegate_source(self, partitioned):
        source = int(partitioned.delegate_vertices[0])
        state = BFSState.initialize(partitioned, source)
        assert state.delegate_levels[0] == 0
        assert state.delegate_visited.test(0)
        np.testing.assert_array_equal(state.delegate_frontier, [0])
        assert all(f.size == 0 for f in state.normal_frontiers)

    def test_out_of_range_source(self, partitioned):
        with pytest.raises(ValueError):
            BFSState.initialize(partitioned, partitioned.num_vertices)
        with pytest.raises(ValueError):
            BFSState.initialize(partitioned, -1)


class TestMarking:
    def test_mark_normals_only_marks_unvisited(self, partitioned):
        state = BFSState.initialize(partitioned, int(np.flatnonzero(~partitioned.separation.is_delegate)[0]))
        gpu = 0
        slots = np.asarray([1, 2, 2, 3])
        fresh = state.mark_normals(gpu, slots, level=1)
        np.testing.assert_array_equal(fresh, [1, 2, 3])
        again = state.mark_normals(gpu, slots, level=2)
        assert again.size == 0
        assert np.all(state.normal_levels[gpu][[1, 2, 3]] == 1)

    def test_mark_delegates_sets_mask_and_levels(self, partitioned):
        source = int(partitioned.delegate_vertices[0])
        state = BFSState.initialize(partitioned, source)
        fresh = state.mark_delegates(np.asarray([0, 1, 2]), level=3)
        np.testing.assert_array_equal(fresh, [1, 2])  # 0 was the source
        assert state.delegate_levels[1] == 3
        assert state.delegate_visited.test(2)

    def test_unvisited_delegates(self, partitioned):
        source = int(partitioned.delegate_vertices[0])
        state = BFSState.initialize(partitioned, source)
        unvisited = state.unvisited_delegates()
        assert 0 not in unvisited
        assert unvisited.size == partitioned.num_delegates - 1

    def test_frontier_empty(self, partitioned):
        source = int(partitioned.delegate_vertices[0])
        state = BFSState.initialize(partitioned, source)
        assert not state.frontier_empty()
        state.delegate_frontier = np.zeros(0, dtype=np.int64)
        assert state.frontier_empty()


class TestGather:
    def test_gather_distances_covers_source_only_initially(self, partitioned):
        source = int(partitioned.delegate_vertices[0])
        state = BFSState.initialize(partitioned, source)
        distances = state.gather_distances()
        assert distances[source] == 0
        assert np.count_nonzero(distances != UNVISITED) == 1

    def test_gather_distances_merges_normal_and_delegate_levels(self, partitioned):
        sep = partitioned.separation
        source = int(np.flatnonzero(~sep.is_delegate)[0])
        state = BFSState.initialize(partitioned, source)
        state.mark_delegates(np.asarray([0]), level=4)
        # Pick a slot on GPU 1 whose global vertex is a normal vertex (the
        # engine never marks delegate-occupied slots through the normal path).
        slot = int(np.flatnonzero(partitioned.gpus[1].local_is_normal)[0])
        gpu1_fresh = state.mark_normals(1, np.asarray([slot]), level=2)
        assert gpu1_fresh.size == 1
        distances = state.gather_distances()
        assert distances[partitioned.delegate_vertices[0]] == 4
        gpu1_global = partitioned.gpus[1].owned_global_ids()[slot]
        assert distances[gpu1_global] == 2
