"""Tests for the benchmark & perf-regression subsystem (repro.bench)."""

from __future__ import annotations

import copy
import json

import numpy as np
import pytest

import repro
from repro.bench import (
    REGISTRY,
    BenchArtifactError,
    BenchDeterminismError,
    Scenario,
    compare_artifacts,
    default_artifact_path,
    find_scenarios,
    load_artifact,
    new_artifact,
    quick_scenarios,
    run_scenario,
    run_suite,
    save_artifact,
    time_program,
    validate_artifact,
)
from repro.cli import main


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #
def tiny_scenario(name: str = "tiny", **overrides) -> Scenario:
    """A sub-100ms scenario for runner tests."""
    kwargs = dict(
        name=name,
        kind="rmat",
        scale=8,
        program="levels",
        layout="2x1x2",
        threshold=8,
        sources=1,
        quick=True,
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


def make_record(
    traversal_s: float = 0.1,
    checksum: int = 42,
    spec_extra: dict | None = None,
) -> dict:
    """A minimal schema-valid scenario record."""
    spec = {"kind": "rmat", "scale": 10, "program": "levels", "options": "DO+BR"}
    spec.update(spec_extra or {})
    return {
        "spec": spec,
        "repeats": 2,
        "wall_s": {
            "graph_build": 0.01,
            "partition": 0.01,
            "traversal": traversal_s,
            "kernels": traversal_s * 0.8,
            "exchange": traversal_s * 0.1,
            "delegate_reduce": traversal_s * 0.1,
            "total": 0.02 + traversal_s,
        },
        "modeled_ms": {"elapsed_ms": 1.0},
        "counters": {
            "iterations": 5,
            "total_edges_examined": 1000,
            "values_checksum": checksum,
        },
    }


def make_art(records: dict) -> dict:
    return new_artifact(records, label="test", quick=True)


# --------------------------------------------------------------------------- #
# Artifact schema
# --------------------------------------------------------------------------- #
class TestArtifact:
    def test_round_trip(self, tmp_path):
        artifact = make_art({"a": make_record()})
        path = save_artifact(artifact, tmp_path / "BENCH_test.json")
        assert load_artifact(path) == artifact

    def test_default_path_convention(self, tmp_path):
        path = default_artifact_path(tmp_path)
        assert path.name.startswith("BENCH_") and path.name.endswith(".json")

    def test_missing_file(self, tmp_path):
        with pytest.raises(BenchArtifactError, match="no such artifact"):
            load_artifact(tmp_path / "nope.json")

    def test_not_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(BenchArtifactError, match="not valid JSON"):
            load_artifact(path)

    def test_not_an_object(self):
        with pytest.raises(BenchArtifactError, match="expected a JSON object"):
            validate_artifact([1, 2, 3])

    def test_wrong_schema(self):
        artifact = make_art({})
        artifact["schema"] = "something.else"
        with pytest.raises(BenchArtifactError, match="schema is"):
            validate_artifact(artifact)

    def test_unsupported_version(self):
        artifact = make_art({})
        artifact["schema_version"] = 99
        with pytest.raises(BenchArtifactError, match="schema_version"):
            validate_artifact(artifact)

    def test_scenarios_must_be_object(self):
        artifact = make_art({})
        artifact["scenarios"] = "oops"
        with pytest.raises(BenchArtifactError, match="'scenarios' must be an object"):
            validate_artifact(artifact)

    @pytest.mark.parametrize("missing", ["spec", "repeats", "wall_s", "modeled_ms", "counters"])
    def test_record_missing_key(self, missing):
        record = make_record()
        del record[missing]
        with pytest.raises(BenchArtifactError, match=f"lacks '{missing}'"):
            validate_artifact(make_art({"a": record}))

    def test_negative_wall_time_rejected(self):
        record = make_record()
        record["wall_s"]["traversal"] = -1.0
        with pytest.raises(BenchArtifactError, match="non-negative"):
            validate_artifact(make_art({"a": record}))

    def test_host_provenance_recorded(self):
        artifact = make_art({})
        assert artifact["host"]["numpy"] == np.__version__
        assert artifact["created"].endswith("Z")


# --------------------------------------------------------------------------- #
# Comparator
# --------------------------------------------------------------------------- #
class TestCompare:
    def test_noise_within_tolerance_ignored(self):
        old = make_art({"a": make_record(0.100)})
        new = make_art({"a": make_record(0.115)})
        report = compare_artifacts(old, new, tolerance=0.2)
        assert report.ok
        assert [d.status for d in report.deltas] == ["ok"]

    def test_regression_beyond_tolerance_flagged(self):
        old = make_art({"a": make_record(0.100)})
        new = make_art({"a": make_record(0.150)})
        report = compare_artifacts(old, new, tolerance=0.2)
        assert not report.ok
        assert [d.status for d in report.deltas] == ["regression"]
        assert report.deltas[0].ratio == pytest.approx(1.5)

    def test_improvement_beyond_tolerance_reported(self):
        old = make_art({"a": make_record(0.100)})
        new = make_art({"a": make_record(0.050)})
        report = compare_artifacts(old, new, tolerance=0.2)
        assert report.ok
        assert [d.status for d in report.deltas] == ["improvement"]

    def test_counter_drift_fails_even_when_faster(self):
        old = make_art({"a": make_record(0.100, checksum=1)})
        new = make_art({"a": make_record(0.050, checksum=2)})
        report = compare_artifacts(old, new, tolerance=0.2)
        assert not report.ok
        assert [d.status for d in report.deltas] == ["counter-drift"]
        assert "values_checksum" in report.deltas[0].note

    def test_spec_change_is_informational(self):
        old = make_art({"a": make_record(0.100)})
        new = make_art({"a": make_record(0.900, spec_extra={"scale": 20})})
        report = compare_artifacts(old, new, tolerance=0.2)
        assert report.ok
        assert [d.status for d in report.deltas] == ["spec-changed"]

    def test_added_and_removed_scenarios(self):
        old = make_art({"a": make_record(), "gone": make_record()})
        new = make_art({"a": make_record(), "fresh": make_record()})
        report = compare_artifacts(old, new)
        statuses = {d.name: d.status for d in report.deltas}
        assert statuses == {"a": "ok", "gone": "removed", "fresh": "added"}
        assert report.ok

    def test_tiny_absolute_deltas_never_flagged(self):
        # Ratio 2.0, but only 2 ms apart: below the absolute noise floor.
        old = make_art({"a": make_record(0.002)})
        new = make_art({"a": make_record(0.004)})
        report = compare_artifacts(old, new, tolerance=0.2)
        assert report.ok
        assert [d.status for d in report.deltas] == ["ok"]
        # With the floor disabled the same delta is a regression.
        strict = compare_artifacts(old, new, tolerance=0.2, min_delta_s=0.0)
        assert [d.status for d in strict.deltas] == ["regression"]

    def test_bad_tolerance_rejected(self):
        art = make_art({})
        with pytest.raises(ValueError, match="tolerance"):
            compare_artifacts(art, art, tolerance=-0.1)
        with pytest.raises(ValueError, match="min_delta_s"):
            compare_artifacts(art, art, min_delta_s=-1.0)

    def test_malformed_input_rejected(self):
        with pytest.raises(BenchArtifactError):
            compare_artifacts({"schema": "nope"}, make_art({}))

    def test_summary_lines_and_dict(self):
        old = make_art({"a": make_record(0.100)})
        new = make_art({"a": make_record(0.300)})
        report = compare_artifacts(old, new, tolerance=0.2)
        lines = report.summary_lines()
        assert any("regression" in line for line in lines)
        assert lines[-1].startswith("FAIL")
        as_dict = report.as_dict()
        assert as_dict["regressions"] == 1 and as_dict["ok"] is False


# --------------------------------------------------------------------------- #
# Scenario registry
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_names_unique(self):
        names = [s.name for s in REGISTRY]
        assert len(names) == len(set(names))

    def test_quick_subset(self):
        quick = quick_scenarios()
        assert quick and all(s.quick for s in quick)
        assert len(quick) < len(REGISTRY)

    def test_axes_covered(self):
        programs = {s.program for s in REGISTRY}
        kinds = {s.kind for s in REGISTRY}
        options = {s.options.label() for s in REGISTRY}
        thresholds = {s.threshold for s in REGISTRY}
        assert programs == {
            "levels", "parents", "components", "khop", "serve", "serve_cluster",
            "dynamic", "build", "sssp", "pagerank", "wcc_hook", "triangles",
        }
        assert kinds == {"rmat", "uniform", "wdc"}
        assert {"DO+BR", "plain+BR", "DO+IR", "DO+L+U+BR"} <= options
        assert len(thresholds) > 1  # delegate-threshold sweep present

    def test_serve_scenarios_sweep_batch_and_skew(self):
        serve = [s for s in REGISTRY if s.program == "serve"]
        assert len(serve) >= 3
        assert len({s.batch_size for s in serve}) > 1  # batch-size sweep
        assert len({s.zipf_skew for s in serve}) > 1  # skew sweep
        assert any(s.batch_size >= 16 and s.zipf_skew > 0 for s in serve)
        assert all(s.quick for s in serve)  # qps tracked by the CI smoke run

    def test_find_scenarios(self):
        found = find_scenarios(["rmat14-components", "rmat14-levels-do-br"])
        assert [s.name for s in found] == ["rmat14-levels-do-br", "rmat14-components"]
        with pytest.raises(KeyError, match="no-such-scenario"):
            find_scenarios(["no-such-scenario"])

    def test_invalid_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown program"):
            tiny_scenario(program="dijkstra")
        with pytest.raises(ValueError, match="unknown graph kind"):
            tiny_scenario(kind="hypercube")

    def test_describe_is_json_stable(self):
        spec = tiny_scenario()
        assert json.loads(json.dumps(spec.describe())) == spec.describe()


# --------------------------------------------------------------------------- #
# Runner
# --------------------------------------------------------------------------- #
class TestRunner:
    def test_record_structure(self):
        record = run_scenario(tiny_scenario(), repeats=2)
        for phase in ("graph_build", "partition", "traversal", "kernels",
                      "exchange", "delegate_reduce", "total"):
            assert record["wall_s"][phase] >= 0.0
        assert record["wall_s"]["traversal"] > 0.0
        assert record["counters"]["total_edges_examined"] > 0
        assert record["counters"]["values_checksum"] != 0
        assert record["modeled_ms"]["elapsed_ms"] > 0.0
        # The record must survive a JSON round trip unchanged (artifact food).
        assert json.loads(json.dumps(record)) == record

    def test_deterministic_across_independent_runs(self):
        first = run_scenario(tiny_scenario(), repeats=2)
        second = run_scenario(tiny_scenario(), repeats=2)
        assert first["counters"] == second["counters"]
        assert first["modeled_ms"] == second["modeled_ms"]
        assert first["sources"] == second["sources"]

    def test_all_programs_run(self):
        for program in ("levels", "parents", "components", "khop"):
            record = run_scenario(
                tiny_scenario(name=f"tiny-{program}", program=program), repeats=1
            )
            assert record["counters"]["iterations"] >= 1

    def test_repeats_validation(self):
        with pytest.raises(ValueError, match="repeats"):
            run_scenario(tiny_scenario(), repeats=0)
        with pytest.raises(ValueError, match="determinism"):
            run_scenario(tiny_scenario(), repeats=1, check_determinism=True)

    def test_determinism_guard_trips_on_divergent_counters(self):
        class FlakyEngine:
            """Returns a different workload count on every run."""

            def __init__(self):
                self.calls = 0

            def run(self, program):
                from repro.cluster.comm import CommStats
                from repro.core.results import TraversalResult
                from repro.utils.timing import TimingBreakdown

                self.calls += 1
                return TraversalResult(
                    iterations=1,
                    records=[],
                    timing=TimingBreakdown(elapsed_ms=1.0),
                    comm_stats=CommStats(),
                    total_edges_examined=self.calls,  # diverges
                    num_directed_edges=10,
                    wall_s={"traversal": 0.001},
                )

        with pytest.raises(BenchDeterminismError, match="counters differ"):
            time_program(FlakyEngine(), lambda: None, repeats=2)

    def test_duplicate_source_checksums_do_not_cancel(self):
        # Sources are drawn with replacement; two identical per-source
        # checksums must not XOR away the answer-integrity signal.
        from repro.bench.runner import _merge_counters

        counters = {
            "iterations": 1,
            "total_edges_examined": 1,
            "edges_by_kernel": {},
            "comm": {},
            "modeled_elapsed_ms": 1.0,
            "values_checksum": 12345,
        }
        merged = _merge_counters([counters, counters])
        assert merged["values_checksum"] != 0

    def test_run_suite_writes_valid_artifact(self, tmp_path):
        out = tmp_path / "BENCH_suite.json"
        seen = []
        artifact = run_suite(
            [tiny_scenario()],
            label="unit",
            quick=True,
            repeats=2,
            out_path=out,
            on_record=lambda name, rec: seen.append(name),
        )
        assert seen == ["tiny"]
        assert load_artifact(out) == artifact
        report = compare_artifacts(artifact, artifact)
        assert report.ok and not report.improvements


# --------------------------------------------------------------------------- #
# Fluent facade
# --------------------------------------------------------------------------- #
class TestSessionBench:
    def test_session_bench_smoke(self):
        record = (
            repro.session(layout="2x1x2")
            .generate(scale=8, seed=3)
            .threshold(8)
            .bench(repeats=2)
        )
        assert record["wall_s"]["traversal"] > 0.0
        assert record["counters"]["iterations"] >= 1

    def test_session_bench_custom_program(self):
        graph = repro.session(layout="2x1x2").generate(scale=8, seed=3).build()
        record = graph.bench(repro.ConnectedComponents(), repeats=2)
        again = graph.bench(repro.ConnectedComponents(), repeats=2)
        assert record["counters"] == again["counters"]


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
class TestCLI:
    def test_bench_list_json(self, capsys):
        assert main(["bench", "list", "--quick", "--json"]) == 0
        listed = json.loads(capsys.readouterr().out)
        assert {"rmat14-levels-do-br", "wdc14-levels-do-br"} <= {s["name"] for s in listed}

    def test_bench_run_and_compare_round_trip(self, tmp_path, capsys):
        out = tmp_path / "BENCH_cli.json"
        assert main(
            ["bench", "run", "--scenario", "rmat14-khop3", "--repeats", "1",
             "--output", str(out), "--label", "cli-test"]
        ) == 0
        artifact = load_artifact(out)
        assert set(artifact["scenarios"]) == {"rmat14-khop3"}
        capsys.readouterr()

        # Identical artifacts compare clean (exit 0) ...
        assert main(["bench", "compare", str(out), str(out)]) == 0
        assert "PASS" in capsys.readouterr().out

        # ... a big slowdown trips the gate (exit 1) ...
        slower = copy.deepcopy(artifact)
        record = slower["scenarios"]["rmat14-khop3"]
        record["wall_s"]["traversal"] *= 10.0
        slow_path = tmp_path / "BENCH_slow.json"
        save_artifact(slower, slow_path)
        assert main(["bench", "compare", str(out), str(slow_path)]) == 1
        assert "regression" in capsys.readouterr().out

        # ... and --json emits the machine-readable report.
        assert main(["bench", "compare", str(out), str(slow_path), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False and report["regressions"] == 1

    def test_bench_compare_malformed_artifact_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "wrong"}')
        assert main(["bench", "compare", str(bad), str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bench_run_unknown_scenario_raises(self, tmp_path):
        with pytest.raises(KeyError, match="unknown scenario"):
            main(["bench", "run", "--scenario", "nope", "--output", str(tmp_path / "x.json")])

    def test_bench_run_quick_with_non_quick_scenario_exits_2(self, tmp_path, capsys):
        assert main(
            ["bench", "run", "--quick", "--scenario", "rmat17-levels-do-br",
             "--output", str(tmp_path / "x.json")]
        ) == 2
        assert "quick subset" in capsys.readouterr().err
