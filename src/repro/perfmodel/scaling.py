"""Weak- and strong-scaling experiment drivers (Figures 9, 10 and 11).

These helpers run the full pipeline — generate an RMAT graph, partition it,
traverse it from several random sources on a simulated cluster of the
requested shape — for a sweep of cluster sizes, and aggregate the per-source
results the way the paper reports them (geometric means, per-phase runtime
breakdowns).  They are used both by the benchmark harness and by the
``examples/weak_scaling_study.py`` script.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.hardware import HardwareSpec
from repro.core.engine import DistributedBFS
from repro.core.options import BFSOptions
from repro.graph.degree import out_degrees
from repro.graph.rmat import generate_rmat
from repro.partition.delegates import suggest_threshold
from repro.partition.layout import ClusterLayout
from repro.partition.subgraphs import build_partitions
from repro.perfmodel.teps import rmat_counted_edges
from repro.utils.rng import random_sources
from repro.utils.stats import geometric_mean
from repro.utils.timing import TimingBreakdown

__all__ = ["ScalingPoint", "run_configuration", "weak_scaling_sweep", "strong_scaling_sweep"]


@dataclass
class ScalingPoint:
    """Aggregated result of one (scale, cluster shape) configuration."""

    scale: int
    layout_notation: str
    num_gpus: int
    threshold: int
    direction_optimized: bool
    gteps_geo_mean: float
    elapsed_ms_geo_mean: float
    breakdown: TimingBreakdown
    num_sources: int
    per_source_gteps: list = field(default_factory=list)

    def as_dict(self) -> dict:
        """Flat dictionary row for tabular reporting."""
        return {
            "scale": self.scale,
            "layout": self.layout_notation,
            "num_gpus": self.num_gpus,
            "threshold": self.threshold,
            "DO": self.direction_optimized,
            "gteps": self.gteps_geo_mean,
            "elapsed_ms": self.elapsed_ms_geo_mean,
            "computation_ms": self.breakdown.computation,
            "local_comm_ms": self.breakdown.local_communication,
            "remote_normal_ms": self.breakdown.remote_normal_exchange,
            "remote_delegate_ms": self.breakdown.remote_delegate_reduce,
        }


def run_configuration(
    scale: int,
    layout: ClusterLayout,
    threshold: int | None = None,
    options: BFSOptions | None = None,
    hardware: HardwareSpec | None = None,
    num_sources: int = 8,
    seed: int = 11,
) -> ScalingPoint:
    """Generate, partition and traverse one RMAT configuration.

    Parameters
    ----------
    scale:
        RMAT scale of the whole graph.
    layout:
        Cluster shape.
    threshold:
        Degree threshold; ``None`` applies the paper's suggestion rule.
    options:
        BFS options (defaults to the paper's main configuration).
    hardware:
        Hardware model (defaults to Ray).
    num_sources:
        Number of random BFS sources; only runs with more than one iteration
        are counted, like the paper's reporting.
    seed:
        Seed controlling graph generation and source selection.
    """
    options = options if options is not None else BFSOptions()
    edges = generate_rmat(scale, rng=seed)
    if threshold is None:
        threshold = suggest_threshold(edges, layout.num_gpus)
    graph = build_partitions(edges, layout, threshold)
    engine = DistributedBFS(graph, options=options, hardware=hardware)

    degrees = out_degrees(edges)
    sources = random_sources(edges.num_vertices, num_sources, rng=seed + 1, degrees=degrees)
    counted = rmat_counted_edges(scale)

    rates: list[float] = []
    elapsed: list[float] = []
    breakdown = TimingBreakdown()
    kept = 0
    for source in sources:
        result = engine.run(int(source))
        if not result.traversed_more_than_one_iteration():
            continue
        kept += 1
        rates.append(result.gteps(counted))
        elapsed.append(result.timing.elapsed_ms)
        breakdown = breakdown + result.timing
    if kept == 0:
        raise RuntimeError(
            "no BFS run traversed more than one iteration; "
            "increase num_sources or check the graph"
        )
    breakdown = breakdown.scaled(1.0 / kept)
    return ScalingPoint(
        scale=scale,
        layout_notation=layout.notation(),
        num_gpus=layout.num_gpus,
        threshold=int(threshold),
        direction_optimized=options.direction_optimized,
        gteps_geo_mean=geometric_mean(rates),
        elapsed_ms_geo_mean=geometric_mean(elapsed),
        breakdown=breakdown,
        num_sources=kept,
        per_source_gteps=rates,
    )


def weak_scaling_sweep(
    scale_per_gpu: int,
    gpu_counts: list[int],
    gpus_per_rank: int = 2,
    options: BFSOptions | None = None,
    hardware: HardwareSpec | None = None,
    num_sources: int = 6,
    seed: int = 11,
) -> list[ScalingPoint]:
    """Weak scaling: the total scale grows so each GPU keeps ``2^scale_per_gpu`` vertices.

    Mirrors Figure 9, where a ~scale-26 RMAT graph rides on every GPU and the
    GPU count doubles from 1 to 124.
    """
    points: list[ScalingPoint] = []
    for p in gpu_counts:
        if p < 1:
            raise ValueError("GPU counts must be positive")
        scale = scale_per_gpu + max(0, int(round(np.log2(p))))
        ranks = max(1, p // gpus_per_rank)
        per_rank = min(gpus_per_rank, p)
        layout = ClusterLayout(num_ranks=ranks, gpus_per_rank=per_rank)
        points.append(
            run_configuration(
                scale,
                layout,
                options=options,
                hardware=hardware,
                num_sources=num_sources,
                seed=seed,
            )
        )
    return points


def strong_scaling_sweep(
    scale: int,
    gpu_counts: list[int],
    gpus_per_rank: int = 2,
    options: BFSOptions | None = None,
    hardware: HardwareSpec | None = None,
    num_sources: int = 6,
    seed: int = 11,
) -> list[ScalingPoint]:
    """Strong scaling: a fixed-scale graph over an increasing GPU count (Figure 11)."""
    points: list[ScalingPoint] = []
    for p in gpu_counts:
        if p < 1:
            raise ValueError("GPU counts must be positive")
        ranks = max(1, p // gpus_per_rank)
        per_rank = min(gpus_per_rank, p)
        layout = ClusterLayout(num_ranks=ranks, gpus_per_rank=per_rank)
        points.append(
            run_configuration(
                scale,
                layout,
                options=options,
                hardware=hardware,
                num_sources=num_sources,
                seed=seed,
            )
        )
    return points
