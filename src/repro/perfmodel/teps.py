"""TEPS accounting (Graph500 convention, paper §VI-A3).

The paper computes traversal rates with the *nominal* Graph500 edge count:
for a scale-``N`` RMAT graph with edge factor 16, the counted edges are
``m/2 = 2^N * 16`` regardless of duplicate removal or the number of edges the
run actually touched.  These helpers centralise that convention so every
benchmark and example reports rates the same way.
"""

from __future__ import annotations

import numpy as np

__all__ = ["teps", "gteps", "rmat_counted_edges"]


def rmat_counted_edges(scale: int, edge_factor: int = 16) -> int:
    """Graph500 counted edges for a scale-``N`` RMAT graph: ``2^N * edge_factor``."""
    if scale < 0:
        raise ValueError("scale must be non-negative")
    if edge_factor <= 0:
        raise ValueError("edge_factor must be positive")
    return (1 << scale) * edge_factor


def teps(counted_edges: int, elapsed_seconds: float) -> float:
    """Traversed edges per second."""
    if counted_edges < 0:
        raise ValueError("counted_edges must be non-negative")
    if elapsed_seconds <= 0:
        raise ValueError("elapsed time must be positive")
    return counted_edges / elapsed_seconds


def gteps(counted_edges: int, elapsed_seconds: float) -> float:
    """Traversed edges per second, in units of 10^9."""
    return teps(counted_edges, elapsed_seconds) / 1e9


def geometric_mean_gteps(counted_edges: int, elapsed_seconds: np.ndarray) -> float:
    """Geometric-mean GTEPS over several runs (the paper's reporting rule)."""
    from repro.utils.stats import geometric_mean

    elapsed_seconds = np.asarray(elapsed_seconds, dtype=float)
    rates = np.asarray([gteps(counted_edges, float(t)) for t in elapsed_seconds])
    return geometric_mean(rates)
