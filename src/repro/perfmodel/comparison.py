"""Prior-work comparison data (paper Figure 1 and Table II).

The paper situates its result among published large-scale BFS systems.  The
data points below are transcribed from the paper's Figure 1 annotations and
Table II so the comparison benchmark can regenerate both: the landscape plot
(scale vs. processors, GTEPS per processor) and the head-to-head table
(reference hardware and performance vs. the configuration of this work that
matches each row).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PriorWork", "PRIOR_WORK", "PAPER_RESULT", "comparison_table"]


@dataclass(frozen=True)
class PriorWork:
    """One published BFS result as cited by the paper."""

    key: str
    description: str
    category: str  # "gpu_single_node" | "cpu_single_node" | "cpu_cluster" | "gpu_cluster"
    num_processors: int
    max_scale: int
    gteps: float

    @property
    def gteps_per_processor(self) -> float:
        """Throughput per processor (the y-axis of Figure 1, right panel)."""
        return self.gteps / self.num_processors if self.num_processors else 0.0

    def as_dict(self) -> dict:
        """Flat dictionary row."""
        return {
            "key": self.key,
            "description": self.description,
            "category": self.category,
            "processors": self.num_processors,
            "scale": self.max_scale,
            "gteps": self.gteps,
            "gteps_per_processor": self.gteps_per_processor,
        }


#: Figure 1 / Table II data, keyed by the paper's citation numbers.
PRIOR_WORK: dict[str, PriorWork] = {
    "pan2017": PriorWork(
        key="[5] Pan et al. 2017 (Gunrock multi-GPU)",
        description="Single node, 4 Tesla P100",
        category="gpu_single_node",
        num_processors=4,
        max_scale=26,
        gteps=46.1,
    ),
    "yasui2017": PriorWork(
        key="[9] Yasui & Fujisawa 2017",
        description="Shared-memory CPU, 128 Xeon processors",
        category="cpu_single_node",
        num_processors=128,
        max_scale=33,
        gteps=174.7,
    ),
    "buluc2017": PriorWork(
        key="[16] Buluc et al. 2017",
        description="CPU cluster, 1204 Xeon E5-2695 v2",
        category="cpu_cluster",
        num_processors=1204,
        max_scale=36,
        gteps=240.0,
    ),
    "ueno2016": PriorWork(
        key="[14] Ueno et al. 2016",
        description="K computer class CPU cluster",
        category="cpu_cluster",
        num_processors=82944,
        max_scale=40,
        gteps=38621.4,
    ),
    "lin2017": PriorWork(
        key="[15] Lin et al. 2017 (Sunway TaihuLight)",
        description="Sunway TaihuLight, ten million cores",
        category="cpu_cluster",
        num_processors=40768,
        max_scale=40,
        gteps=23755.7,
    ),
    "fu2014": PriorWork(
        key="[19] Fu et al. 2014",
        description="GPU cluster",
        category="gpu_cluster",
        num_processors=64,
        max_scale=27,
        gteps=29.1,
    ),
    "young2016": PriorWork(
        key="[21] Young et al. 2016",
        description="2D-partitioned GPU cluster",
        category="gpu_cluster",
        num_processors=64,
        max_scale=27,
        gteps=3.26,
    ),
    "krajecki2016": PriorWork(
        key="[20] Krajecki et al. 2016",
        description="64 Tesla K20Xm, FatTree 10 Gb/s",
        category="gpu_cluster",
        num_processors=64,
        max_scale=29,
        gteps=13.7,
    ),
    "bernaschi2015": PriorWork(
        key="[18] Bernaschi et al. 2015",
        description="4096 Tesla K20X, Dragonfly 100 Gb/s",
        category="gpu_cluster",
        num_processors=4096,
        max_scale=33,
        gteps=828.39,
    ),
    "ueno2013": PriorWork(
        key="[17] Ueno & Suzumura 2013",
        description="TSUBAME GPU cluster",
        category="gpu_cluster",
        num_processors=4096,
        max_scale=35,
        gteps=317.0,
    ),
    "tsubame2017": PriorWork(
        key="[1] TSUBAME 2.0, Graph500 June 2017",
        description="4096 Tesla GPUs in 1366 nodes",
        category="gpu_cluster",
        num_processors=4096,
        max_scale=35,
        gteps=462.25,
    ),
}

#: The paper's own headline result ("[T]" in Figure 1).
PAPER_RESULT = PriorWork(
    key="[T] This work (paper)",
    description="124 Tesla P100 on CORAL EA (Ray), 31x2x2",
    category="gpu_cluster",
    num_processors=124,
    max_scale=33,
    gteps=259.8,
)

#: Table II rows: (prior-work key, paper GTEPS at the matching configuration).
TABLE_II_ROWS: list[tuple[str, float, str]] = [
    ("pan2017", 39.8, "1x1x4 Tesla P100, scale 26"),
    ("bernaschi2015", 259.8, "31x2x2 Tesla P100, scale 33"),
    ("krajecki2016", 53.13, "2x1x4 Tesla P100, scale 29"),
    ("yasui2017", 259.8, "31x2x2 Tesla P100, scale 33"),
    ("buluc2017", 259.8, "31x2x2 Tesla P100, scale 33"),
]


def comparison_table(measured_gteps: dict[str, float] | None = None) -> list[dict]:
    """Build Table II: prior work vs the paper vs (optionally) this reproduction.

    Parameters
    ----------
    measured_gteps:
        Optional mapping from prior-work key to the GTEPS this reproduction
        measured at the corresponding (scaled-down) configuration; added as an
        extra column when provided.

    Returns
    -------
    list of dict
        One row per Table II entry with reference performance, the paper's
        performance, the speedup ratio, and optionally the reproduction's.
    """
    rows: list[dict] = []
    for key, paper_gteps, our_hw in TABLE_II_ROWS:
        ref = PRIOR_WORK[key]
        row = {
            "reference": ref.key,
            "ref_processors": ref.num_processors,
            "ref_scale": ref.max_scale,
            "ref_gteps": ref.gteps,
            "paper_hw": our_hw,
            "paper_gteps": paper_gteps,
            "paper_vs_ref": paper_gteps / ref.gteps if ref.gteps else float("nan"),
        }
        if measured_gteps and key in measured_gteps:
            row["repro_gteps"] = measured_gteps[key]
        rows.append(row)
    return rows
