"""Analytic performance model and prior-work comparison data.

``costs``
    Closed-form communication-volume and time formulas from §II-B (1D / 2D
    partitioning) and §V (the paper's delegate + normal model), used for the
    model-scaling figures and to cross-check the simulation's counters.
``teps``
    TEPS/GTEPS accounting helpers following the Graph500 convention.
``scaling``
    Weak- and strong-scaling experiment drivers that sweep the simulated
    cluster size and aggregate per-source results (Figures 9–11).
``comparison``
    The prior-work data points of Figure 1 and Table II, together with
    helpers that place this reproduction's modeled results among them.
"""

from repro.perfmodel.comparison import PRIOR_WORK, PriorWork, comparison_table
from repro.perfmodel.costs import (
    CommunicationCosts,
    one_d_dobfs_volume_bytes,
    paper_model_volume_bytes,
    two_d_volume_bytes,
    weak_scaling_growth,
)
from repro.perfmodel.scaling import ScalingPoint, strong_scaling_sweep, weak_scaling_sweep
from repro.perfmodel.teps import gteps, teps

__all__ = [
    "CommunicationCosts",
    "one_d_dobfs_volume_bytes",
    "two_d_volume_bytes",
    "paper_model_volume_bytes",
    "weak_scaling_growth",
    "teps",
    "gteps",
    "ScalingPoint",
    "weak_scaling_sweep",
    "strong_scaling_sweep",
    "PriorWork",
    "PRIOR_WORK",
    "comparison_table",
]
