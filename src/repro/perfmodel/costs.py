"""Closed-form communication-cost formulas (paper §II-B and §V).

The paper's scalability argument is analytic.  For weak scaling (graph size
and GPU count growing together), the per-super-step communication of:

* **1D-partitioned DOBFS** requires broadcasting newly-visited vertices to all
  peers — total volume ≈ ``8 m`` bytes, time ``8 m / p · g``;
* **2D-partitioned (DO)BFS** needs a row reduction and a column broadcast —
  volume ``8 n_t √p log √p`` bytes forward plus
  ``2 n S_b √p log(√p) / 8`` bytes backward, i.e. time
  ``(4 n_t + n S_b / 8)(log √p / √p) · g``, which grows as ``√p``;
* the **paper's model** (delegates reduced globally, normal vertices
  point-to-point) has volume ``d · p_rank / 4 · S + 4 |E_nn|`` bytes and time
  ``(d log p_rank / 4 · S + 4 |E_nn| / p) · g``, which grows only as
  ``log p_rank``.

These functions evaluate those formulas so benchmarks can plot the growth
curves and tests can verify the crossover behaviour the paper claims.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "CommunicationCosts",
    "one_d_dobfs_volume_bytes",
    "two_d_volume_bytes",
    "two_d_time_seconds",
    "paper_model_volume_bytes",
    "paper_model_time_seconds",
    "weak_scaling_growth",
]


@dataclass(frozen=True)
class CommunicationCosts:
    """Volume (bytes) and time (seconds) of one scheme at one configuration."""

    scheme: str
    num_gpus: int
    volume_bytes: float
    time_seconds: float

    def as_dict(self) -> dict:
        """Flat dictionary for tabular output."""
        return {
            "scheme": self.scheme,
            "num_gpus": self.num_gpus,
            "volume_bytes": self.volume_bytes,
            "time_seconds": self.time_seconds,
        }


def one_d_dobfs_volume_bytes(num_edges: int) -> float:
    """§II-B: 1D-partitioned DOBFS broadcasts newly visited vertices — ``8 m`` bytes."""
    if num_edges < 0:
        raise ValueError("num_edges must be non-negative")
    return 8.0 * num_edges


def two_d_volume_bytes(
    num_vertices: int,
    forward_visited: int,
    backward_iterations: int,
    num_gpus: int,
) -> float:
    """§II-B: total volume of 2D-partitioned DOBFS.

    ``8 n_t √p log √p`` bytes for the forward phase plus
    ``2 n S_b √p log(√p) / 8`` bytes for the backward phase with compressed
    bitmasks.
    """
    if num_gpus < 1:
        raise ValueError("num_gpus must be >= 1")
    sqrt_p = math.sqrt(num_gpus)
    log_sqrt_p = math.log2(sqrt_p) if sqrt_p > 1 else 0.0
    forward = 8.0 * forward_visited * sqrt_p * log_sqrt_p
    backward = 2.0 * num_vertices * backward_iterations * sqrt_p * log_sqrt_p / 8.0
    return forward + backward


def two_d_time_seconds(
    num_vertices: int,
    forward_visited: int,
    backward_iterations: int,
    num_gpus: int,
    g_seconds_per_byte: float,
) -> float:
    """§II-B: ``(4 n_t + n S_b / 8)(log √p / √p) · g``."""
    if num_gpus < 1:
        raise ValueError("num_gpus must be >= 1")
    sqrt_p = math.sqrt(num_gpus)
    log_sqrt_p = math.log2(sqrt_p) if sqrt_p > 1 else 0.0
    return (
        (4.0 * forward_visited + num_vertices * backward_iterations / 8.0)
        * (log_sqrt_p / sqrt_p)
        * g_seconds_per_byte
    )


def paper_model_volume_bytes(
    num_delegates: int,
    num_ranks: int,
    iterations_with_delegate_updates: int,
    nn_edges: int,
) -> float:
    """§V: ``d · p_rank / 4 · S' + 4 |E_nn|`` bytes."""
    if num_ranks < 1:
        raise ValueError("num_ranks must be >= 1")
    return (
        num_delegates * num_ranks / 4.0 * iterations_with_delegate_updates
        + 4.0 * nn_edges
    )


def paper_model_time_seconds(
    num_delegates: int,
    num_ranks: int,
    iterations_with_delegate_updates: int,
    nn_edges: int,
    num_gpus: int,
    g_seconds_per_byte: float,
) -> float:
    """§V: ``(d log p_rank / 4 · S' + 4 |E_nn| / p) · g``."""
    if num_ranks < 1 or num_gpus < 1:
        raise ValueError("rank and GPU counts must be >= 1")
    log_ranks = math.log2(num_ranks) if num_ranks > 1 else 0.0
    return (
        num_delegates * log_ranks / 4.0 * iterations_with_delegate_updates
        + 4.0 * nn_edges / num_gpus
    ) * g_seconds_per_byte


def weak_scaling_growth(
    num_gpus: int,
    vertices_per_gpu: int,
    edges_per_gpu: int,
    iterations: int,
    g_seconds_per_byte: float,
    gpus_per_rank: int = 4,
    delegate_factor: float = 1.0,
    nn_edge_fraction: float = 0.06,
) -> dict[str, CommunicationCosts]:
    """Evaluate all three schemes along a weak-scaling curve point.

    The graph grows with the cluster: ``n = vertices_per_gpu * p`` and
    ``m = edges_per_gpu * p``.  Delegates are kept at ``delegate_factor *
    n/p`` and the nn-edge fraction fixed, following the paper's tuning rule.
    Returns one :class:`CommunicationCosts` per scheme, which the Figure-level
    benchmark prints for a sweep of ``num_gpus`` to exhibit the ``√p`` vs
    ``log p`` growth.
    """
    if num_gpus < 1:
        raise ValueError("num_gpus must be >= 1")
    if gpus_per_rank < 1:
        raise ValueError("gpus_per_rank must be >= 1")
    n = vertices_per_gpu * num_gpus
    m = edges_per_gpu * num_gpus
    num_ranks = max(1, num_gpus // gpus_per_rank)
    d = int(delegate_factor * vertices_per_gpu)
    nn_edges = int(nn_edge_fraction * m)
    forward_visited = n // 2
    backward_iterations = max(1, iterations // 2)

    one_d = CommunicationCosts(
        scheme="1D-DOBFS",
        num_gpus=num_gpus,
        volume_bytes=one_d_dobfs_volume_bytes(m),
        time_seconds=one_d_dobfs_volume_bytes(m) / num_gpus * g_seconds_per_byte,
    )
    two_d = CommunicationCosts(
        scheme="2D-DOBFS",
        num_gpus=num_gpus,
        volume_bytes=two_d_volume_bytes(n, forward_visited, backward_iterations, num_gpus),
        time_seconds=two_d_time_seconds(
            n, forward_visited, backward_iterations, num_gpus, g_seconds_per_byte
        ),
    )
    ours = CommunicationCosts(
        scheme="degree-separated",
        num_gpus=num_gpus,
        volume_bytes=paper_model_volume_bytes(d, num_ranks, backward_iterations, nn_edges),
        time_seconds=paper_model_time_seconds(
            d, num_ranks, backward_iterations, nn_edges, num_gpus, g_seconds_per_byte
        ),
    )
    return {"1d": one_d, "2d": two_d, "paper": ours}
