"""Runtime options of the distributed BFS (paper §VI-B, Figure 8).

The paper tunes its implementation with several options; all of them are
exposed here so the Figure 8 ablation benchmark can toggle each one:

* ``direction_optimized`` (DO) — per-subgraph direction optimization for the
  dd, dn and nd visits (nn never uses DO, by design);
* ``local_all2all`` (L) — intra-rank pre-exchange of normal-vertex traffic;
* ``uniquify`` (U) — duplicate removal before the remote normal exchange;
* ``blocking_reduce`` (BR vs IR) — ``MPI_Allreduce`` vs ``MPI_Iallreduce`` for
  the delegate masks;
* the three pairs of direction-switching factors (``factor0``, ``factor1``)
  for the dd, dn and nd subgraphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DirectionFactors", "BFSOptions"]


@dataclass(frozen=True)
class DirectionFactors:
    """Direction-switching factors for one subgraph (paper §IV-B).

    Starting from forward-push:

    * switch to backward-pull when ``FV > factor0 * BV``;
    * switch back to forward-push when ``FV < factor1 * BV``.

    ``factor1 <= factor0`` gives hysteresis; with a very small ``factor1`` the
    traversal effectively never switches back, which the paper observes is the
    right behaviour for RMAT graphs.
    """

    factor0: float
    factor1: float

    def __post_init__(self) -> None:
        if self.factor0 <= 0 or self.factor1 <= 0:
            raise ValueError("direction factors must be positive")
        if self.factor1 > self.factor0:
            raise ValueError(
                f"factor1 ({self.factor1}) must not exceed factor0 ({self.factor0}); "
                "otherwise the direction would oscillate every iteration"
            )


@dataclass(frozen=True)
class BFSOptions:
    """All tunable options of :class:`repro.core.engine.DistributedBFS`.

    The defaults correspond to the configuration the paper uses for its main
    results: direction optimization on, local-all2all and uniquify off (they
    did not pay off at the chosen thresholds), blocking delegate reduction
    (faster at ≥8 nodes on Ray), and the direction-switching factors the
    paper's sweep found near-optimal (0.5 / 0.05 / 1e-7 for dd / dn / nd).
    """

    direction_optimized: bool = True
    local_all2all: bool = False
    uniquify: bool = False
    blocking_reduce: bool = True
    dd_factors: DirectionFactors = field(
        default_factory=lambda: DirectionFactors(factor0=0.5, factor1=1e-9)
    )
    dn_factors: DirectionFactors = field(
        default_factory=lambda: DirectionFactors(factor0=0.05, factor1=1e-9)
    )
    nd_factors: DirectionFactors = field(
        default_factory=lambda: DirectionFactors(factor0=1e-7, factor1=1e-9)
    )
    #: Fraction of the smaller of (computation, communication) hidden by
    #: overlapping the two; the paper reports ~10% end-to-end reduction from
    #: overlap for the Figure 8 experiment.
    overlap_efficiency: float = 0.3
    #: Maximum number of super-steps before the engine aborts (safety net for
    #: malformed graphs; the diameter bounds the true iteration count).
    max_iterations: int = 10_000

    def __post_init__(self) -> None:
        if not 0.0 <= self.overlap_efficiency <= 1.0:
            raise ValueError("overlap_efficiency must be within [0, 1]")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.uniquify and not self.local_all2all:
            # The paper's pipeline runs uniquification on the staging GPU after
            # the local exchange; without the local exchange there is nothing
            # to uniquify against, so reject the combination loudly rather
            # than silently ignoring the flag.
            raise ValueError("uniquify=True requires local_all2all=True")

    def label(self) -> str:
        """Short label in the style of the paper's Figure 8 x-axis.

        The optimization prefix lists the enabled switches (``DO``, ``L``,
        ``U``); with all of them off it reads ``plain``.  The reduction
        flavour (``BR``/``IR``) is always appended, so the all-off
        configurations render as ``plain+BR`` / ``plain+IR``.
        """
        parts = []
        if self.direction_optimized:
            parts.append("DO")
        if self.local_all2all:
            parts.append("L")
        if self.uniquify:
            parts.append("U")
        if not parts:
            parts.append("plain")
        parts.append("BR" if self.blocking_reduce else "IR")
        return "+".join(parts)
