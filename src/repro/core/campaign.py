"""Aggregation of many traversal runs into one reportable campaign.

The paper reports every data point as the geometric mean over 140 BFS runs
from random sources, skipping runs that do not traverse more than one
iteration (§VI-A3).  :class:`Campaign` encodes exactly that protocol once, so
the CLI, the examples and the benchmark harnesses stop hand-rolling the same
per-source loop: it behaves like the plain list of results it aggregates
(indexable, iterable, ``len``-able) and adds the skip rule and the
geometric-mean rates on top.

:func:`run_campaign` is the common driver: run a program per source through
one engine, optionally validating each run against a serial oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.core.results import TraversalResult
from repro.utils.stats import geometric_mean

__all__ = ["Campaign", "run_campaign"]


@dataclass
class Campaign(Sequence):
    """An aggregating sequence of per-source traversal results."""

    #: Every run, in execution order (including skipped single-iteration runs).
    results: list = field(default_factory=list)
    #: Traversals the engine skipped because a duplicate program had already
    #: run (the duplicate positions share the first run's result object).
    saved_traversals: int = 0

    # ------------------------------------------------------------------ #
    # Sequence protocol: a Campaign can stand in for the bare result list
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[TraversalResult]:
        return iter(self.results)

    def __getitem__(self, index):
        return self.results[index]

    @classmethod
    def from_results(cls, results: list, saved_traversals: int = 0) -> "Campaign":
        """Wrap an already-computed list of results."""
        return cls(results=list(results), saved_traversals=int(saved_traversals))

    # ------------------------------------------------------------------ #
    # The paper's reporting protocol
    # ------------------------------------------------------------------ #
    @property
    def reported(self) -> list:
        """Runs that traversed more than one iteration (the paper's filter)."""
        return [r for r in self.results if r.traversed_more_than_one_iteration()]

    @property
    def skipped(self) -> list:
        """Single-iteration runs excluded from the aggregate rates."""
        return [r for r in self.results if not r.traversed_more_than_one_iteration()]

    def rates(self, counted_edges: int | None = None) -> list:
        """Per-run GTEPS of the reported runs."""
        return [r.gteps(counted_edges) for r in self.reported]

    def geo_mean_gteps(self, counted_edges: int | None = None) -> float:
        """Geometric-mean GTEPS over the reported runs.

        Raises
        ------
        ValueError
            If every run was skipped (nothing to aggregate).
        """
        rates = self.rates(counted_edges)
        if not rates:
            raise ValueError(
                "campaign has no reported runs (all were single-iteration); "
                "no aggregate rate exists"
            )
        return geometric_mean(rates)

    def geo_mean_elapsed_ms(self) -> float:
        """Geometric-mean modeled elapsed time over the reported runs."""
        times = [r.elapsed_ms for r in self.reported]
        if not times:
            raise ValueError("campaign has no reported runs; no aggregate time exists")
        return geometric_mean(times)

    def summary(self, counted_edges: int | None = None) -> dict:
        """Aggregate dictionary for logging / JSON output."""
        out = {
            "runs": len(self.results),
            "reported": len(self.reported),
            "skipped": len(self.skipped),
            "saved_traversals": self.saved_traversals,
        }
        if self.reported:
            out["geo_mean_gteps"] = self.geo_mean_gteps(counted_edges)
            out["geo_mean_elapsed_ms"] = self.geo_mean_elapsed_ms()
        return out


def run_campaign(
    engine,
    sources: np.ndarray | Sequence[int],
    program_factory: Callable[[int], object] | None = None,
    validate: Callable[[TraversalResult], None] | None = None,
    on_result: Callable[[TraversalResult], None] | None = None,
) -> Campaign:
    """Run one program per source and aggregate the results.

    Parameters
    ----------
    engine:
        A :class:`repro.core.engine.TraversalEngine` (or anything exposing
        ``run(program)``).
    sources:
        Source vertices, one run each.
    program_factory:
        ``source -> FrontierProgram``; defaults to
        :class:`repro.core.programs.BFSLevels`.
    validate:
        Optional callback invoked with every result (raise to abort — e.g.
        compare against a serial oracle).
    on_result:
        Optional callback invoked with every result after validation (e.g.
        to print a progress line).
    """
    from repro.core.programs.bfs_levels import BFSLevels

    factory = program_factory if program_factory is not None else (lambda s: BFSLevels(source=s))
    results = []
    for source in np.asarray(sources, dtype=np.int64).ravel():
        result = engine.run(factory(int(source)))
        if validate is not None:
            validate(result)
        if on_result is not None:
            on_result(result)
        results.append(result)
    return Campaign.from_results(results)
