"""Mutable per-run traversal state over the partitioned graph.

The state mirrors what the real implementation keeps resident on the GPUs:

* per GPU, a 64-bit *value* for every *local normal slot* — what the value
  means belongs to the running :class:`repro.core.programs.FrontierProgram`
  (hop level for BFS, parent pointer for Graph500 trees, component label for
  connected components); ``-1`` = "no value yet";
* replicated across all GPUs, the visited bitmask and values of the
  *delegates* (identical everywhere after every reduction, so the simulation
  stores one copy);
* the per-super-step frontiers: newly-updated local normal slots per GPU and
  newly-updated delegate ids (shared).

:class:`TraversalState` is the algorithm-agnostic container used by
:class:`repro.core.engine.TraversalEngine`; :class:`BFSState` specializes it
with the level-array vocabulary of plain BFS (and keeps the seed API:
``normal_levels``, ``mark_normals``, ``gather_distances``, …).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.partition.subgraphs import PartitionedGraph
from repro.utils.bitmask import Bitmask

__all__ = ["UNVISITED", "TraversalState", "BFSState"]

UNVISITED = np.int64(-1)

#: accept(current_values, proposed_values) -> bool mask of updates to apply.
AcceptFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _visit_once(current: np.ndarray, proposed: np.ndarray) -> np.ndarray:
    return current == UNVISITED


@dataclass
class TraversalState:
    """All mutable data of one traversal run (program-agnostic)."""

    graph: PartitionedGraph
    normal_values: list[np.ndarray] = field(default_factory=list)
    delegate_values: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    delegate_visited: Bitmask = field(default_factory=lambda: Bitmask(0))
    normal_frontiers: list[np.ndarray] = field(default_factory=list)
    delegate_frontier: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    @classmethod
    def empty(cls, graph: PartitionedGraph) -> "TraversalState":
        """A state with every vertex unset and empty frontiers."""
        d = graph.num_delegates
        return cls(
            graph=graph,
            normal_values=[
                np.full(gpu.num_local, UNVISITED, dtype=np.int64) for gpu in graph.gpus
            ],
            delegate_values=np.full(d, UNVISITED, dtype=np.int64),
            delegate_visited=Bitmask(d),
            normal_frontiers=[np.zeros(0, dtype=np.int64) for _ in graph.gpus],
            delegate_frontier=np.zeros(0, dtype=np.int64),
        )

    # ------------------------------------------------------------------ #
    # Frontier bookkeeping
    # ------------------------------------------------------------------ #
    def update_normals(
        self,
        gpu: int,
        slots: np.ndarray,
        values: np.ndarray,
        accept: AcceptFn = _visit_once,
    ) -> np.ndarray:
        """Apply accepted value updates to local slots on ``gpu``.

        ``slots`` must already be deduplicated (one proposal per slot — the
        program's ``merge_remote`` hook combines duplicates).  Returns the
        slots whose value actually changed, which is what the destination-side
        filtering on a real GPU does via atomic label updates.
        """
        slots = np.asarray(slots, dtype=np.int64).ravel()
        if slots.size == 0:
            return slots
        current = self.normal_values[gpu]
        take = accept(current[slots], values)
        fresh = slots[take]
        current[fresh] = values[take]
        return fresh

    def update_delegates(
        self,
        delegate_ids: np.ndarray,
        values: np.ndarray,
        accept: AcceptFn = _visit_once,
    ) -> np.ndarray:
        """Apply accepted value updates to the replicated delegates.

        Returns the delegate ids whose value changed (already deduplicated
        input, as for :meth:`update_normals`).
        """
        delegate_ids = np.asarray(delegate_ids, dtype=np.int64).ravel()
        if delegate_ids.size == 0:
            return delegate_ids
        take = accept(self.delegate_values[delegate_ids], values)
        fresh = delegate_ids[take]
        self.delegate_values[fresh] = values[take]
        if fresh.size:
            self.delegate_visited.set_many(fresh)
        return fresh

    def unvisited_delegates(self) -> np.ndarray:
        """Delegate ids that never received a value."""
        return np.flatnonzero(self.delegate_values == UNVISITED).astype(np.int64)

    def frontier_empty(self) -> bool:
        """Whether both the normal and delegate frontiers are empty everywhere."""
        if self.delegate_frontier.size:
            return False
        return all(f.size == 0 for f in self.normal_frontiers)

    # ------------------------------------------------------------------ #
    # Result assembly
    # ------------------------------------------------------------------ #
    def gather_values(self) -> np.ndarray:
        """Assemble the global per-vertex value array (``-1`` = never set)."""
        graph = self.graph
        out = np.full(graph.num_vertices, UNVISITED, dtype=np.int64)
        for gpu_partition, values in zip(graph.gpus, self.normal_values):
            if gpu_partition.num_local == 0:
                continue
            owned = gpu_partition.owned_global_ids()
            has_value = values != UNVISITED
            out[owned[has_value]] = values[has_value]
        if graph.num_delegates:
            has_value_d = self.delegate_values != UNVISITED
            out[graph.delegate_vertices[has_value_d]] = self.delegate_values[has_value_d]
        return out

    def visited_count(self) -> int:
        """Total number of vertices holding a value so far."""
        total = int(np.count_nonzero(self.delegate_values != UNVISITED))
        for values in self.normal_values:
            total += int(np.count_nonzero(values != UNVISITED))
        return total


class BFSState(TraversalState):
    """Traversal state with the level-array vocabulary of plain BFS."""

    @classmethod
    def initialize(cls, graph: PartitionedGraph, source: int) -> "BFSState":
        """Create the state for a BFS from ``source`` (level 0)."""
        if not 0 <= source < graph.num_vertices:
            raise ValueError(
                f"source {source} out of range [0, {graph.num_vertices})"
            )
        state = cls.empty(graph)
        delegate_id = int(graph.separation.delegate_id_of[source])
        if delegate_id >= 0:
            state.delegate_values[delegate_id] = 0
            state.delegate_visited.set(delegate_id)
            state.delegate_frontier = np.asarray([delegate_id], dtype=np.int64)
        else:
            owner = int(graph.layout.flat_gpu_of(source))
            slot = int(graph.layout.local_index_of(source))
            state.normal_values[owner][slot] = 0
            state.normal_frontiers[owner] = np.asarray([slot], dtype=np.int64)
        return state

    # Level-flavoured aliases over the generic value arrays.
    @property
    def normal_levels(self) -> list[np.ndarray]:
        """Per-GPU hop levels of the local normal slots (``-1`` = unvisited)."""
        return self.normal_values

    @property
    def delegate_levels(self) -> np.ndarray:
        """Replicated hop levels of the delegates (``-1`` = unvisited)."""
        return self.delegate_values

    def mark_normals(self, gpu: int, slots: np.ndarray, level: int) -> np.ndarray:
        """Mark unvisited local slots on ``gpu`` with ``level``.

        Returns the slots that were actually new (already-visited ones are
        dropped, which is what the destination-side filtering on a real GPU
        does via atomic label updates).
        """
        slots = np.asarray(slots, dtype=np.int64).ravel()
        if slots.size == 0:
            return slots
        slots = np.unique(slots)
        return self.update_normals(
            gpu, slots, np.full(slots.size, level, dtype=np.int64)
        )

    def mark_delegates(self, delegate_ids: np.ndarray, level: int) -> np.ndarray:
        """Mark unvisited delegates with ``level`` and return the new ones."""
        delegate_ids = np.asarray(delegate_ids, dtype=np.int64).ravel()
        if delegate_ids.size == 0:
            return delegate_ids
        delegate_ids = np.unique(delegate_ids)
        return self.update_delegates(
            delegate_ids, np.full(delegate_ids.size, level, dtype=np.int64)
        )

    def gather_distances(self) -> np.ndarray:
        """Assemble the global hop-distance array (``-1`` = unreachable)."""
        return self.gather_values()
