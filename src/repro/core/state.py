"""Mutable BFS state for one run over the partitioned graph.

The state mirrors what the real implementation keeps resident on the GPUs:

* per GPU, a level label for every *local normal slot* (``-1`` = unvisited);
* replicated across all GPUs, the visited bitmask and level labels of the
  *delegates* (identical everywhere after every mask reduction, so the
  simulation stores one copy);
* the per-super-step frontiers: newly-visited local normal slots per GPU and
  newly-visited delegate ids (shared).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.partition.subgraphs import PartitionedGraph
from repro.utils.bitmask import Bitmask

__all__ = ["BFSState"]

UNVISITED = np.int64(-1)


@dataclass
class BFSState:
    """All mutable data of one BFS run."""

    graph: PartitionedGraph
    normal_levels: list[np.ndarray] = field(default_factory=list)
    delegate_levels: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    delegate_visited: Bitmask = field(default_factory=lambda: Bitmask(0))
    normal_frontiers: list[np.ndarray] = field(default_factory=list)
    delegate_frontier: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    @classmethod
    def initialize(cls, graph: PartitionedGraph, source: int) -> "BFSState":
        """Create the state for a BFS from ``source`` (level 0)."""
        if not 0 <= source < graph.num_vertices:
            raise ValueError(
                f"source {source} out of range [0, {graph.num_vertices})"
            )
        d = graph.num_delegates
        state = cls(
            graph=graph,
            normal_levels=[
                np.full(gpu.num_local, UNVISITED, dtype=np.int64) for gpu in graph.gpus
            ],
            delegate_levels=np.full(d, UNVISITED, dtype=np.int64),
            delegate_visited=Bitmask(d),
            normal_frontiers=[np.zeros(0, dtype=np.int64) for _ in graph.gpus],
            delegate_frontier=np.zeros(0, dtype=np.int64),
        )
        delegate_id = int(graph.separation.delegate_id_of[source])
        if delegate_id >= 0:
            state.delegate_levels[delegate_id] = 0
            state.delegate_visited.set(delegate_id)
            state.delegate_frontier = np.asarray([delegate_id], dtype=np.int64)
        else:
            owner = int(graph.layout.flat_gpu_of(source))
            slot = int(graph.layout.local_index_of(source))
            state.normal_levels[owner][slot] = 0
            state.normal_frontiers[owner] = np.asarray([slot], dtype=np.int64)
        return state

    # ------------------------------------------------------------------ #
    # Frontier bookkeeping
    # ------------------------------------------------------------------ #
    def mark_normals(self, gpu: int, slots: np.ndarray, level: int) -> np.ndarray:
        """Mark unvisited local slots on ``gpu`` with ``level``.

        Returns the slots that were actually new (already-visited ones are
        dropped, which is what the destination-side filtering on a real GPU
        does via atomic label updates).
        """
        slots = np.asarray(slots, dtype=np.int64).ravel()
        if slots.size == 0:
            return slots
        slots = np.unique(slots)
        levels = self.normal_levels[gpu]
        fresh = slots[levels[slots] == UNVISITED]
        levels[fresh] = level
        return fresh

    def mark_delegates(self, delegate_ids: np.ndarray, level: int) -> np.ndarray:
        """Mark unvisited delegates with ``level`` and return the new ones."""
        delegate_ids = np.asarray(delegate_ids, dtype=np.int64).ravel()
        if delegate_ids.size == 0:
            return delegate_ids
        delegate_ids = np.unique(delegate_ids)
        fresh = delegate_ids[self.delegate_levels[delegate_ids] == UNVISITED]
        self.delegate_levels[fresh] = level
        if fresh.size:
            self.delegate_visited.set_many(fresh)
        return fresh

    def unvisited_delegates(self) -> np.ndarray:
        """Delegate ids not yet visited."""
        return np.flatnonzero(self.delegate_levels == UNVISITED).astype(np.int64)

    def frontier_empty(self) -> bool:
        """Whether both the normal and delegate frontiers are empty everywhere."""
        if self.delegate_frontier.size:
            return False
        return all(f.size == 0 for f in self.normal_frontiers)

    # ------------------------------------------------------------------ #
    # Result assembly
    # ------------------------------------------------------------------ #
    def gather_distances(self) -> np.ndarray:
        """Assemble the global hop-distance array (``-1`` = unreachable)."""
        graph = self.graph
        distances = np.full(graph.num_vertices, UNVISITED, dtype=np.int64)
        for gpu_partition, levels in zip(graph.gpus, self.normal_levels):
            if gpu_partition.num_local == 0:
                continue
            owned = gpu_partition.owned_global_ids()
            visited = levels != UNVISITED
            distances[owned[visited]] = levels[visited]
        if graph.num_delegates:
            visited_d = self.delegate_levels != UNVISITED
            distances[graph.delegate_vertices[visited_d]] = self.delegate_levels[visited_d]
        return distances

    def visited_count(self) -> int:
        """Total number of visited vertices so far."""
        total = int(np.count_nonzero(self.delegate_levels != UNVISITED))
        for levels in self.normal_levels:
            total += int(np.count_nonzero(levels != UNVISITED))
        return total
