"""The distributed traversal engine (paper §IV and §V, Figures 3 and 4).

:class:`TraversalEngine` executes level-synchronous super-steps of any
:class:`repro.core.programs.FrontierProgram` over a degree-separated
:class:`repro.partition.PartitionedGraph`:

1. **Local computation** on every virtual GPU (Fig. 3): previsit kernels
   filter the input frontiers and compute forward workloads; then one visit
   kernel per subgraph runs in the direction chosen by its own
   direction-optimization state —

   * nn (normal→normal): always forward; its discoveries are *remote* normal
     updates that enter the exchange stage,
   * nd (normal→delegate): forward pushes propose delegate updates, backward
     pulls let unvisited delegates search their local normal parents,
   * dn (delegate→normal): forward pushes mark local normal vertices,
     backward pulls let unvisited local normals search their delegate parents,
   * dd (delegate→delegate): both directions stay within the delegates.

2. **Communication** (Fig. 4): the nn outputs are binned, converted to 32-bit
   local ids and exchanged point-to-point (optionally with local-all2all and
   uniquify, and with an 8-byte value payload when the program needs one);
   delegate updates are reduced in two phases (NVLink within a rank,
   tree-like (I)AllReduce between ranks) whenever any GPU produced an update
   — as 1-bit visited masks for BFS-style programs, or as 64-bit values for
   programs whose vertex state carries a payload.

What a discovered vertex *means* — the value it stores, when an update is
accepted, how duplicate proposals merge — is the program's business; the
engine only moves frontiers, runs kernels and accounts modeled time in the
paper's four phases (computation/communication overlap is modeled with a
configurable efficiency as described in §VI-B).

*Where* the kernels run is a third concern, owned by neither engine nor
program: each super-step is described as a declarative
:class:`repro.exec.SuperStepPlan` (per-GPU kernel tasks as pure data; the
exchange, delegate reduction and program folds behind the plan's
``finalize``) and handed to an :class:`repro.exec.ExecutionBackend` —
``"inline"`` for the classic in-process simulator, ``"process"`` for a
persistent worker pool over shared-memory CSR buffers.  Results, workload
counters and modeled times are backend-independent; only the measured
``wall_s`` phases change.

For mutable graphs (:mod:`repro.dynamic`) the loops accept two extensions:
a pre-seeded ``init`` replacing the program's ``init_state`` (the
resumable-from-frontier entry point incremental repair starts from) and an
``overlay`` of not-yet-compacted edge insertions, relaxed from each
super-step's input frontier on the coordinator so results stay
backend-invariant.

:class:`DistributedBFS` remains as the seed's entry point: a thin wrapper
running :class:`repro.core.programs.BFSLevels` through the generic engine
with behaviour (answers, iteration counts, modeled timings) identical to the
original hardwired implementation.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.comm import Communicator
from repro.cluster.hardware import HardwareSpec
from repro.cluster.netmodel import NetworkModel
from repro.cluster.topology import ClusterTopology
from repro.core.direction import DirectionState, estimate_backward_workload
from repro.core.kernels import KernelOutput
from repro.core.options import BFSOptions
from repro.core.programs.base import FrontierProgram, VisitContext
from repro.core.programs.batched import (
    BatchedBFSLevels,
    BatchedFrontierProgram,
    BatchedReachability,
)
from repro.core.programs.bfs_levels import BFSLevels
from repro.core.results import BatchResult, BFSResult, IterationRecord, TraversalResult
from repro.core.state import UNVISITED, TraversalState
from repro.exec.backend import ExecutionBackend, resolve_backend
from repro.exec.plan import (
    BatchedGPUPlan,
    BatchedVisitSpec,
    GPUPlan,
    SuperStepPlan,
    VisitSpec,
)
from repro.exec.providers import resolve_provider
from repro.partition.subgraphs import PartitionedGraph
from repro.utils.bitmask import BatchBitmask, Bitmask
from repro.obs.tracer import get_tracer
from repro.utils.timing import TimingBreakdown, now_s

__all__ = ["TraversalEngine", "DistributedBFS"]

#: Default lane count per batched sweep when ``run_many`` routes through the
#: batched path; wider batches amortize better but grow the lane words.
DEFAULT_BATCH_SIZE = 32


def _plan_pulls(plan) -> int:
    """How many of a plan's visit tasks run backward (the direction decision).

    Recorded as a ``plan+direction`` span argument when tracing is on: 0
    means an all-forward-push step, higher counts mean direction
    optimization switched subgraph quadrants to backward-pull.
    """
    return sum(
        1 for gp in plan.gpu_plans for spec in gp.visits if spec.backward
    )


def _program_dedup_key(program) -> tuple | None:
    """A hashable identity for programs whose re-run would be a pure waste.

    ``None`` marks programs this engine cannot prove deduplicable (custom
    subclasses may carry extra state, so only exact shipped types match).
    """
    from repro.core.programs.bfs_parents import BFSParents
    from repro.core.programs.components import ConnectedComponents
    from repro.core.programs.khop import KHopReachability

    t = type(program)
    if t is BFSLevels:
        return ("levels", program.source)
    if t is KHopReachability:
        return ("khop", program.source, program.max_levels)
    if t is BFSParents:
        return ("parents", program.source)
    if t is ConnectedComponents:
        return ("components",)
    return None


def _batched_equivalent(programs: list, batch_size: int):
    """A factory building batched sweeps for a homogeneous program list.

    Returns ``None`` when the list is not batchable (mixed types, payload
    programs, or differing hop caps); otherwise a callable mapping a list of
    sources to the batched program covering them.
    """
    from repro.core.programs.khop import KHopReachability

    if batch_size < 2 or len(programs) < 2:
        return None
    types = {type(p) for p in programs}
    if types == {BFSLevels}:
        return lambda sources: BatchedBFSLevels(sources)
    if types == {KHopReachability}:
        caps = {p.max_levels for p in programs}
        if len(caps) == 1:
            cap = caps.pop()
            return lambda sources: BatchedReachability(sources, max_hops=cap)
    return None


class TraversalEngine:
    """Algorithm-agnostic traversal over a degree-separated partitioning.

    Parameters
    ----------
    graph:
        The partitioned graph produced by
        :func:`repro.partition.build_partitions`.
    options:
        Runtime options (direction optimization, exchange optimizations,
        reduction flavour, switching factors).
    hardware:
        Machine parameters for the performance model; defaults to the paper's
        Ray system.
    backend:
        Where super-steps execute: an :class:`repro.exec.ExecutionBackend`
        instance, a registry name (``"inline"`` / ``"process"`` /
        ``"thread"``), or ``None`` to use the ``REPRO_BACKEND`` environment
        default (inline).  Named backends are created lazily on first use and
        owned (closed) by the engine; passed-in instances are shared and stay
        caller-owned.
    kernels:
        How the visit kernels compute: a
        :class:`repro.exec.KernelProvider` instance, a provider name
        (``"numpy"`` / ``"numba"`` / ``"auto"``), or ``None`` to use the
        ``REPRO_KERNELS`` environment default (``auto`` — Numba when
        importable, NumPy otherwise).  Providers are stateless and shared;
        results and counters are provider-invariant.

    Examples
    --------
    >>> from repro.core.programs import BFSLevels, ConnectedComponents
    >>> from repro.graph import generate_rmat
    >>> from repro.partition import ClusterLayout, build_partitions
    >>> edges = generate_rmat(10, rng=7)
    >>> layout = ClusterLayout(num_ranks=2, gpus_per_rank=2)
    >>> graph = build_partitions(edges, layout, threshold=32)
    >>> engine = TraversalEngine(graph)
    >>> int(engine.run(BFSLevels(source=0)).distances[0])
    0
    >>> engine.run(ConnectedComponents()).num_components >= 1
    True
    """

    def __init__(
        self,
        graph: PartitionedGraph,
        options: BFSOptions | None = None,
        hardware: HardwareSpec | None = None,
        backend=None,
        kernels=None,
    ) -> None:
        self.graph = graph
        self.options = options if options is not None else BFSOptions()
        self.hardware = hardware if hardware is not None else HardwareSpec()
        self.netmodel = NetworkModel(self.hardware)
        self.topology = ClusterTopology(graph.layout)
        self._backend_spec = backend
        self._backend = None
        self._owns_backend = False
        self._kernels_spec = kernels
        self._provider = None
        # Cache per-GPU out-degree arrays of every subgraph; they are needed
        # for previsit filtering and forward-workload computation each
        # super-step and never change.
        self._degrees = [
            {
                "nn": gpu.nn.out_degrees(),
                "nd": gpu.nd.out_degrees(),
                "dn": gpu.dn.out_degrees(),
                "dd": gpu.dd.out_degrees(),
            }
            for gpu in graph.gpus
        ]

    # ------------------------------------------------------------------ #
    # Execution backend
    # ------------------------------------------------------------------ #
    @property
    def backend(self):
        """The live execution backend (resolved lazily on first use)."""
        if self._backend is None:
            self._backend, self._owns_backend = resolve_backend(
                self._backend_spec, self.graph
            )
        return self._backend

    @property
    def backend_name(self) -> str:
        """Registry name of the backend in effect, without forcing creation.

        Reading the name must stay side-effect free (monitoring reads it on
        idle engines), so an unresolved spec is answered from the spec
        itself; validation still happens at resolution time.
        """
        if self._backend is not None:
            return self._backend.name
        spec = self._backend_spec
        if isinstance(spec, ExecutionBackend):
            return spec.name
        from repro.exec.backend import default_backend_name

        return default_backend_name() if spec is None else str(spec).strip().lower()

    def use_backend(self, backend) -> "TraversalEngine":
        """Switch execution backends (name, instance or ``None`` for default).

        The previously resolved backend is closed if this engine created it;
        shared instances passed in by the caller are left running.  Asking
        for the name of the backend already running is a no-op — tearing a
        process backend down just to re-export the same graph into shared
        memory would be pure churn.
        """
        if backend is not None and backend is self._backend:
            return self
        if (
            isinstance(backend, str)
            and self._backend is not None
            and backend.strip().lower() == self._backend.name
        ):
            self._backend_spec = backend
            return self
        self.close()
        self._backend_spec = backend
        return self

    def close(self) -> None:
        """Release the engine-owned backend (idempotent; engine stays usable —
        the next run resolves a fresh backend from the current spec)."""
        if self._backend is not None and self._owns_backend:
            self._backend.close()
        self._backend = None
        self._owns_backend = False

    # ------------------------------------------------------------------ #
    # Kernel provider
    # ------------------------------------------------------------------ #
    @property
    def provider(self):
        """The live kernel provider (resolved lazily on first use).

        Graphs on compressed storage get the resolved provider wrapped in a
        :class:`repro.storage.codec.DecodingProvider`, which decodes exactly
        the frontier/candidate rows of each visit before delegating — a
        storage detail, invisible to counters, results and the provider name.
        """
        if self._provider is None:
            provider = resolve_provider(self._kernels_spec)
            if getattr(self.graph, "storage", "memory") == "compressed":
                from repro.storage.codec import DecodingProvider

                provider = DecodingProvider(provider)
            self._provider = provider
        return self._provider

    @property
    def provider_name(self) -> str:
        """Resolved registry name of the kernel provider in effect.

        Unlike :attr:`backend_name` this *does* resolve the spec (``auto``
        and fallbacks only settle at resolution), but resolution is cheap —
        providers are stateless process-wide singletons, no pools or shared
        memory — so the read is still safe on idle engines.
        """
        return self.provider.name

    def use_kernels(self, kernels) -> "TraversalEngine":
        """Switch kernel providers (name, instance or ``None`` for default).

        Providers are stateless singletons, so unlike :meth:`use_backend`
        there is nothing to close — the next super-step simply plans with
        the newly resolved provider.
        """
        self._kernels_spec = kernels
        self._provider = None
        return self

    def __enter__(self) -> "TraversalEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(
        self, program: FrontierProgram, init=None, overlay=None
    ) -> TraversalResult:
        """Run ``program`` to completion and return its result.

        Parameters
        ----------
        program:
            The frontier program to execute.
        init:
            Optional pre-seeded :class:`repro.core.programs.ProgramInit`
            replacing ``program.init_state`` — the resumable-from-frontier
            entry point: incremental maintenance seeds the per-vertex values
            with an existing answer and the frontier with only the repair
            seeds, and the super-step loop runs from there instead of from
            scratch.
        overlay:
            Optional :class:`repro.dynamic.OverlayBuffer` of edges not yet
            compacted into the CSR; each super-step additionally relaxes the
            overlay edges leaving that step's input frontier, so traversals
            of a mutable graph see the union graph.
        """
        opts = self.options
        graph = self.graph
        p = graph.num_gpus

        # Driver programs (delta-stepping SSSP, PageRank, ...) own their outer
        # loop: they orchestrate engine phases themselves and return a
        # complete result.  Everything else runs the standard level loop.
        if hasattr(program, "drive"):
            return program.drive(self, init=init, overlay=overlay)

        if getattr(program, "needs_weights", False) and not graph.is_weighted:
            raise ValueError(
                f"program {program.name!r} needs edge weights but the graph has "
                "none; build it with weights (e.g. --weights on the generators)"
            )

        if init is None:
            init = program.init_state(graph)
        state = TraversalState(
            graph=graph,
            normal_values=init.normal_values,
            delegate_values=init.delegate_values,
            delegate_visited=Bitmask.from_indices(
                graph.num_delegates,
                np.flatnonzero(init.delegate_values != UNVISITED),
            )
            if graph.num_delegates
            else Bitmask(0),
            normal_frontiers=init.normal_frontiers,
            delegate_frontier=init.delegate_frontier,
        )
        communicator = Communicator(self.topology, self.netmodel)
        do_enabled = opts.direction_optimized and program.direction_optimized_ok
        dir_states = {
            "nd": [DirectionState(opts.nd_factors, enabled=do_enabled) for _ in range(p)],
            "dn": [DirectionState(opts.dn_factors, enabled=do_enabled) for _ in range(p)],
            "dd": [DirectionState(opts.dd_factors, enabled=do_enabled) for _ in range(p)],
        }

        records: list[IterationRecord] = []
        timing = TimingBreakdown()
        total_edges = 0
        level = 0
        # Wall-clock accounting of the simulation itself (not modeled time):
        # per-phase seconds the bench harness reads off the result.
        wall = {"kernels": 0.0, "exchange": 0.0, "delegate_reduce": 0.0}
        backend = self.backend
        overlay_live = overlay is not None and not overlay.empty
        tracer = get_tracer()
        run_started = now_s()

        while not state.frontier_empty():
            if program.max_levels is not None and level >= program.max_levels:
                break
            level += 1
            if level > opts.max_iterations:
                raise RuntimeError(
                    f"{program.name} exceeded max_iterations={opts.max_iterations}; "
                    "the graph or the engine state is inconsistent"
                )
            if overlay_live:
                pre_frontier = self._capture_frontier(state)
            plan_started = now_s()
            plan = self._plan_super_step(program, state, communicator, dir_states, level, wall)
            plan_done = now_s()
            wall["kernels"] += plan_done - plan_started
            if tracer.enabled:
                tracer.record_span(
                    "plan+direction", cat="engine", start=plan_started,
                    dur=plan_done - plan_started,
                    args={"level": level, "pulls": _plan_pulls(plan)},
                )
            record = backend.run_super_step(plan)
            if overlay_live:
                relax_started = now_s()
                self._overlay_relax(program, state, overlay, pre_frontier, level, record)
                relax_done = now_s()
                wall["kernels"] += relax_done - relax_started
                if tracer.enabled:
                    tracer.record_span(
                        "overlay-relax", cat="engine", start=relax_started,
                        dur=relax_done - relax_started, args={"level": level},
                    )
            if tracer.enabled:
                tracer.record_span(
                    "super-step", cat="engine", start=plan_started,
                    dur=now_s() - plan_started,
                    args={"level": level, "program": program.name},
                )
            records.append(record)
            total_edges += record.total_edges_examined()
            timing.computation += record.computation_s * 1e3
            timing.local_communication += record.local_communication_s * 1e3
            timing.remote_normal_exchange += record.remote_normal_exchange_s * 1e3
            timing.remote_delegate_reduce += record.remote_delegate_reduce_s * 1e3
            timing.elapsed_ms += record.elapsed_s * 1e3
            timing.per_iteration.append(record)

        timing.iterations = len(records)
        wall["traversal"] = now_s() - run_started
        if tracer.enabled:
            tracer.record_span(
                "traversal", cat="engine", start=run_started, dur=wall["traversal"],
                args={"program": program.name, "iterations": len(records)},
            )
        base = {
            "iterations": len(records),
            "records": records,
            "timing": timing,
            "comm_stats": communicator.stats,
            "total_edges_examined": total_edges,
            "num_directed_edges": graph.num_directed_edges,
            "wall_s": wall,
        }
        return program.make_result(state.gather_values(), base)

    def run_many(
        self, programs, batch_size: int | None = None, overlay=None
    ) -> "Campaign":
        """Run several programs and aggregate their results into a Campaign.

        Duplicate programs (same shipped type and parameters) are traversed
        once and fanned back out to every requesting position — the results
        are deterministic, so re-running them is pure waste; the campaign's
        ``saved_traversals`` counter records how many runs the dedup saved.

        With ``batch_size`` set (>= 2) and a homogeneous list of
        :class:`~repro.core.programs.BFSLevels` or
        :class:`~repro.core.programs.KHopReachability` programs, the unique
        sources are routed through the batched MS-BFS path
        (:meth:`run_batch`) in chunks of up to ``batch_size`` lanes.  Each
        position still receives a per-source result with bit-identical
        answers; counters and timing on those results describe the shared
        batched sweeps.

        A batch never has one lane: ``batch_size`` of ``None``/1, a
        single-program list, and the final chunk of an uneven split all run
        through the plain sequential path — a 1-lane sweep would pay the
        lane-word machinery (``BatchBitmask`` state, OR-dedup exchange) for
        zero amortization.  Serve hits this with cold caches.
        """
        from repro.core.campaign import Campaign

        programs = list(programs)
        if batch_size is not None and batch_size < 2:
            batch_size = None
        unique_programs: list = []
        fan: list[int] = []
        index_of: dict[tuple, int] = {}
        for program in programs:
            key = _program_dedup_key(program)
            if key is not None and key in index_of:
                fan.append(index_of[key])
                continue
            idx = len(unique_programs)
            if key is not None:
                index_of[key] = idx
            unique_programs.append(program)
            fan.append(idx)
        saved = len(programs) - len(unique_programs)

        batch_factory = (
            _batched_equivalent(unique_programs, batch_size) if batch_size else None
        )
        if batch_factory is not None:
            unique_results: list = []
            sources = [p.source for p in unique_programs]
            for start in range(0, len(sources), batch_size):
                chunk = sources[start:start + batch_size]
                if len(chunk) == 1:
                    unique_results.append(self.run(unique_programs[start], overlay=overlay))
                    continue
                batch = self.run_batch(batch_factory(chunk), overlay=overlay)
                unique_results.extend(batch.per_source_results())
        else:
            unique_results = [self.run(prog, overlay=overlay) for prog in unique_programs]
        return Campaign.from_results(
            [unique_results[i] for i in fan], saved_traversals=saved
        )

    # ------------------------------------------------------------------ #
    # Batched (MS-BFS style) execution
    # ------------------------------------------------------------------ #
    def run_batch(self, program: BatchedFrontierProgram, overlay=None) -> BatchResult:
        """Run one batched program (B sources, one fused sweep) to completion.

        Every lane's answer is bit-identical to the corresponding sequential
        single-source run; the counters and modeled times describe the fused
        sweep.  Direction optimization applies per subgraph exactly as in the
        sequential path, but with the batched backward workload (full parent
        lists — a batched pull has no early exit).  ``overlay`` edges (a
        mutable graph's not-yet-compacted insertions) are relaxed per
        super-step with OR-propagated lane words, mirroring the sequential
        path, so the per-lane equivalence holds on dynamic graphs too.
        """
        opts = self.options
        graph = self.graph
        p = graph.num_gpus
        width = program.width
        nwords = (width + 63) // 64

        program.begin(graph)
        state = _BatchState.initialize(graph, program.sources, width)
        communicator = Communicator(self.topology, self.netmodel)
        do_enabled = opts.direction_optimized
        dir_states = {
            "nd": [DirectionState(opts.nd_factors, enabled=do_enabled) for _ in range(p)],
            "dn": [DirectionState(opts.dn_factors, enabled=do_enabled) for _ in range(p)],
            "dd": [DirectionState(opts.dd_factors, enabled=do_enabled) for _ in range(p)],
        }
        # Lane-word mask of the valid lanes in the last word (the padding
        # lanes beyond B must never go hot).
        tail = width & 63
        full_words = np.full(nwords, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
        if tail:
            full_words[-1] = np.uint64((1 << tail) - 1)

        records: list[IterationRecord] = []
        timing = TimingBreakdown()
        total_edges = 0
        level = 0
        wall = {"kernels": 0.0, "exchange": 0.0, "delegate_reduce": 0.0}
        backend = self.backend
        overlay_live = overlay is not None and not overlay.empty
        tracer = get_tracer()
        run_started = now_s()

        while not state.frontier_empty():
            if program.max_levels is not None and level >= program.max_levels:
                break
            level += 1
            if level > opts.max_iterations:
                raise RuntimeError(
                    f"{program.name} exceeded max_iterations={opts.max_iterations}; "
                    "the graph or the engine state is inconsistent"
                )
            if overlay_live:
                pre_frontier = self._capture_batched_frontier(state)
            plan_started = now_s()
            plan = self._plan_batched_super_step(
                program, state, communicator, dir_states, level, full_words, wall
            )
            plan_done = now_s()
            wall["kernels"] += plan_done - plan_started
            if tracer.enabled:
                tracer.record_span(
                    "plan+direction", cat="engine", start=plan_started,
                    dur=plan_done - plan_started,
                    args={"level": level, "pulls": _plan_pulls(plan)},
                )
            record = backend.run_super_step(plan)
            if overlay_live:
                relax_started = now_s()
                self._overlay_relax_batched(
                    program, state, overlay, pre_frontier, level, full_words, record
                )
                relax_done = now_s()
                wall["kernels"] += relax_done - relax_started
                if tracer.enabled:
                    tracer.record_span(
                        "overlay-relax", cat="engine", start=relax_started,
                        dur=relax_done - relax_started, args={"level": level},
                    )
            if tracer.enabled:
                tracer.record_span(
                    "super-step", cat="engine", start=plan_started,
                    dur=now_s() - plan_started,
                    args={"level": level, "program": program.name, "width": width},
                )
            records.append(record)
            total_edges += record.total_edges_examined()
            timing.computation += record.computation_s * 1e3
            timing.local_communication += record.local_communication_s * 1e3
            timing.remote_normal_exchange += record.remote_normal_exchange_s * 1e3
            timing.remote_delegate_reduce += record.remote_delegate_reduce_s * 1e3
            timing.elapsed_ms += record.elapsed_s * 1e3
            timing.per_iteration.append(record)

        timing.iterations = len(records)
        wall["traversal"] = now_s() - run_started
        if tracer.enabled:
            tracer.record_span(
                "traversal", cat="engine", start=run_started, dur=wall["traversal"],
                args={
                    "program": program.name,
                    "iterations": len(records),
                    "width": width,
                },
            )
        base = {
            "iterations": len(records),
            "records": records,
            "timing": timing,
            "comm_stats": communicator.stats,
            "total_edges_examined": total_edges,
            "num_directed_edges": graph.num_directed_edges,
            "wall_s": wall,
        }
        return program.make_result(base)

    # ------------------------------------------------------------------ #
    # Overlay relaxation (mutable graphs)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _capture_frontier(state: TraversalState) -> list:
        """Snapshot the step's input frontier (finalize replaces the arrays)."""
        segments = []
        for g, slots in enumerate(state.normal_frontiers):
            if slots.size:
                segments.append(("n", g, slots))
        if state.delegate_frontier.size:
            segments.append(("d", -1, state.delegate_frontier))
        return segments

    def _overlay_relax(
        self,
        program: FrontierProgram,
        state: TraversalState,
        overlay,
        segments: list,
        level: int,
        record: IterationRecord,
    ) -> None:
        """Relax the overlay edges leaving this step's input frontier.

        Runs on the coordinator after the planned kernels finish (so it is
        backend-invariant), proposes values through the program's
        ``visit_value``/``accept`` hooks exactly like a kernel discovery
        would, merges fresh vertices into the next frontier, and charges the
        examined overlay edges to the step's counters and modeled
        computation (unoverlapped — the overlay is a serial side-structure).
        """
        graph = self.graph
        src_ids: list[np.ndarray] = []
        src_vals: list[np.ndarray] = []
        for kind, g, arr in segments:
            if kind == "n":
                src_ids.append(graph.gpus[g].global_ids_of_locals(arr))
                src_vals.append(state.normal_values[g][arr])
            else:
                src_ids.append(graph.delegate_vertices[arr])
                src_vals.append(state.delegate_values[arr])
        if not src_ids:
            return
        rep_weights = None
        if getattr(program, "needs_weights", False):
            dst, rep_ids, rep_vals, rep_weights, edges = overlay.propagate_weighted(
                np.concatenate(src_ids), np.concatenate(src_vals)
            )
        else:
            dst, rep_ids, rep_vals, edges = overlay.propagate(
                np.concatenate(src_ids), np.concatenate(src_vals)
            )
        if edges == 0:
            return
        record.edges_examined["overlay"] = record.edges_examined.get("overlay", 0) + edges
        extra = self.netmodel.traversal_time(edges, backward=False)
        record.computation_s += extra
        record.elapsed_s += extra
        values = program.visit_value(
            VisitContext(
                kernel="overlay",
                gpu=-1,
                level=level,
                backward=False,
                discovered=dst,
                source_ids=rep_ids,
                source_values=rep_vals,
                edge_weights=rep_weights,
            )
        )
        ids, vals = program.merge_remote(dst, values)
        delegate_ids = graph.delegate_id_of_vertex(ids)
        is_delegate = delegate_ids >= 0
        fresh_delegates = state.update_delegates(
            delegate_ids[is_delegate], vals[is_delegate], program.accept
        )
        if fresh_delegates.size:
            state.delegate_frontier = np.union1d(state.delegate_frontier, fresh_delegates)
            record.discovered += int(fresh_delegates.size)
        n_ids, n_vals = ids[~is_delegate], vals[~is_delegate]
        if n_ids.size:
            owners = graph.layout.flat_gpu_of(n_ids)
            slots = graph.layout.local_index_of(n_ids)
            for g in np.unique(owners):
                mask = owners == g
                fresh = state.update_normals(int(g), slots[mask], n_vals[mask], program.accept)
                if fresh.size:
                    state.normal_frontiers[g] = np.union1d(state.normal_frontiers[g], fresh)
                    record.discovered += int(fresh.size)

    @staticmethod
    def _capture_batched_frontier(state: "_BatchState") -> list:
        """Snapshot the batched step's input frontier rows + lane words."""
        segments = []
        for g, rows in enumerate(state.frontier_n_rows):
            if rows.size:
                segments.append(("n", g, rows, state.frontier_n_words[g]))
        if state.frontier_d_rows.size:
            segments.append(("d", -1, state.frontier_d_rows, state.frontier_d_words))
        return segments

    def _overlay_relax_batched(
        self,
        program: BatchedFrontierProgram,
        state: "_BatchState",
        overlay,
        segments: list,
        level: int,
        full_words: np.ndarray,
        record: IterationRecord,
    ) -> None:
        """Batched analogue of :meth:`_overlay_relax`: OR-propagate the
        frontier's lane words across the overlay edges and record first
        visits per lane, keeping every lane bit-identical to its sequential
        run on the same mutable graph."""
        graph = self.graph
        nwords = full_words.size
        src_ids: list[np.ndarray] = []
        src_words: list[np.ndarray] = []
        for kind, g, rows, words in segments:
            if kind == "n":
                src_ids.append(graph.gpus[g].global_ids_of_locals(rows))
            else:
                src_ids.append(graph.delegate_vertices[rows])
            src_words.append(words)
        if not src_ids:
            return
        dst, words, edges = overlay.propagate_batch(
            np.concatenate(src_ids), np.concatenate(src_words), nwords
        )
        if edges == 0:
            return
        record.edges_examined["overlay"] = record.edges_examined.get("overlay", 0) + edges
        extra = self.netmodel.traversal_time(edges, backward=False)
        record.computation_s += extra
        record.elapsed_s += extra

        def merge_frontier(rows, words, new_rows, new_words):
            all_rows = np.concatenate([rows, new_rows])
            all_words = np.concatenate([words, new_words])
            unique, inverse = np.unique(all_rows, return_inverse=True)
            merged = np.zeros((unique.size, nwords), dtype=np.uint64)
            np.bitwise_or.at(merged, inverse, all_words)
            return unique, merged

        delegate_ids = graph.delegate_id_of_vertex(dst)
        is_delegate = delegate_ids >= 0
        d_rows, d_words = delegate_ids[is_delegate], words[is_delegate]
        if d_rows.size:
            new = d_words & np.bitwise_not(state.visited_d.words[d_rows]) & full_words[None, :]
            keep = new.any(axis=1)
            d_rows, new = d_rows[keep], new[keep]
            if d_rows.size:
                state.visited_d.or_rows(d_rows, new)
                program.record(graph.delegate_vertices[d_rows], new, level)
                state.frontier_d_rows, state.frontier_d_words = merge_frontier(
                    state.frontier_d_rows, state.frontier_d_words, d_rows, new
                )
                record.discovered += int(d_rows.size)
        n_dst, n_words = dst[~is_delegate], words[~is_delegate]
        if n_dst.size:
            owners = graph.layout.flat_gpu_of(n_dst)
            slots = graph.layout.local_index_of(n_dst)
            for g in np.unique(owners):
                mask = owners == g
                rows, proposed = slots[mask], n_words[mask]
                new = proposed & np.bitwise_not(state.visited_n[g].words[rows]) & full_words[None, :]
                keep = new.any(axis=1)
                rows, new = rows[keep], new[keep]
                if rows.size:
                    state.visited_n[g].or_rows(rows, new)
                    program.record(graph.gpus[g].global_ids_of_locals(rows), new, level)
                    state.frontier_n_rows[g], state.frontier_n_words[g] = merge_frontier(
                        state.frontier_n_rows[g], state.frontier_n_words[g], rows, new
                    )
                    record.discovered += int(rows.size)

    # ------------------------------------------------------------------ #
    # One super-step
    # ------------------------------------------------------------------ #
    def _plan_super_step(
        self,
        program: FrontierProgram,
        state: TraversalState,
        communicator: Communicator,
        dir_states: dict[str, list[DirectionState]],
        level: int,
        wall: dict,
    ) -> SuperStepPlan:
        """Describe one super-step as a backend-executable plan.

        The planning pass reproduces the seed engine's pre-kernel work in
        the same order — previsit filtering, backward-candidate construction
        and the (stateful) per-subgraph direction decisions — and emits one
        :class:`repro.exec.GPUPlan` of pure-data kernel tasks per GPU.  The
        plan's ``finalize`` closure is the historical post-kernel half
        (program folds, nn exchange, delegate reduction, modeled timing),
        always run on the coordinating process, so results, counters and
        modeled times are identical under every backend.
        """
        graph = self.graph
        p = graph.num_gpus
        d = graph.num_delegates
        provider = self.provider
        filter_frontier = provider.filter_frontier
        # The backward-pull candidate sets only exist for visit-once programs;
        # the options-level DO toggle is handled by the DirectionState objects
        # (disabled states always decide forward), matching the seed engine.
        pull_ok = program.direction_optimized_ok
        needs_sources = program.payload_exchange or program.delegate_channel == "values"
        mask_channel = program.delegate_channel == "mask"
        # Weighted programs gather edge weights on every forward visit (they
        # never pull: needs_weights implies direction_optimized_ok=False).
        weighted = getattr(program, "needs_weights", False)

        frontier_d = state.delegate_frontier
        delegate_frontier_flags = np.zeros(d, dtype=bool)
        if frontier_d.size:
            delegate_frontier_flags[frontier_d] = True
        if pull_ok:
            unvisited_delegates = state.unvisited_delegates() if d else np.zeros(0, dtype=np.int64)
        else:
            unvisited_delegates = np.zeros(0, dtype=np.int64)

        normal_frontier_total = int(sum(f.size for f in state.normal_frontiers))
        directions = {"nd": 0, "dn": 0, "dd": 0}
        base_comp = np.zeros(p, dtype=np.float64)
        gpu_plans: list[GPUPlan] = []

        for g in range(p):
            part = graph.gpus[g]
            deg = self._degrees[g]
            frontier_n = state.normal_frontiers[g]
            comp = self.netmodel.iteration_overhead()
            comp += self.netmodel.filter_time(2 * frontier_n.size + 2 * frontier_d.size)
            base_comp[g] = comp

            # ---- nn visit: always forward -------------------------------- #
            visits = [
                VisitSpec(
                    "nn",
                    "nn",
                    backward=False,
                    queue=filter_frontier(frontier_n, deg["nn"]),
                    keep_sources=program.payload_exchange,
                    weighted=weighted,
                )
            ]
            normal_flags = None

            # ---- shared backward candidate sets --------------------------- #
            if d and pull_ok:
                cand_nd = unvisited_delegates[part.dn_source_mask[unvisited_delegates]]
                cand_dd = unvisited_delegates[part.dd_source_mask[unvisited_delegates]]
            else:
                cand_nd = np.zeros(0, dtype=np.int64)
                cand_dd = np.zeros(0, dtype=np.int64)
            if pull_ok and part.nd_source_list.size:
                nd_src_values = state.normal_values[g][part.nd_source_list]
                cand_dn = part.nd_source_list[nd_src_values == UNVISITED]
            else:
                cand_dn = np.zeros(0, dtype=np.int64)

            # ---- nd visit (destinations are delegates) -------------------- #
            if d:
                queue_nd = filter_frontier(frontier_n, deg["nd"])
                fv_nd = int(deg["nd"][queue_nd].sum()) if queue_nd.size else 0
                bv_nd = estimate_backward_workload(cand_nd.size, q=int(frontier_n.size), s=int(cand_dn.size))
                if dir_states["nd"][g].decide(fv_nd, bv_nd):
                    directions["nd"] += 1
                    # A backward nd pull scans the reverse edges (the dn CSR)
                    # against this GPU's dense normal-frontier flags.
                    normal_flags = np.zeros(part.num_local, dtype=bool)
                    if frontier_n.size:
                        normal_flags[frontier_n] = True
                    visits.append(
                        VisitSpec(
                            "nd",
                            "dn",
                            backward=True,
                            candidates=cand_nd,
                            flags="normal",
                            keep_sources=not mask_channel,
                        )
                    )
                else:
                    visits.append(
                        VisitSpec(
                            "nd",
                            "nd",
                            backward=False,
                            queue=queue_nd,
                            keep_sources=not mask_channel,
                            weighted=weighted,
                        )
                    )

            # ---- dn visit (destinations are local normal vertices) -------- #
            if d and part.num_local:
                queue_dn = filter_frontier(frontier_d, deg["dn"])
                fv_dn = int(deg["dn"][queue_dn].sum()) if queue_dn.size else 0
                bv_dn = estimate_backward_workload(cand_dn.size, q=int(frontier_d.size), s=int(cand_nd.size))
                if dir_states["dn"][g].decide(fv_dn, bv_dn):
                    directions["dn"] += 1
                    visits.append(
                        VisitSpec(
                            "dn",
                            "nd",
                            backward=True,
                            candidates=cand_dn,
                            flags="delegate",
                            keep_sources=needs_sources,
                        )
                    )
                else:
                    visits.append(
                        VisitSpec(
                            "dn",
                            "dn",
                            backward=False,
                            queue=queue_dn,
                            keep_sources=needs_sources,
                            weighted=weighted,
                        )
                    )

            # ---- dd visit (delegates to delegates) ------------------------ #
            if d:
                queue_dd = filter_frontier(frontier_d, deg["dd"])
                fv_dd = int(deg["dd"][queue_dd].sum()) if queue_dd.size else 0
                bv_dd = estimate_backward_workload(cand_dd.size, q=int(frontier_d.size), s=int(cand_dd.size))
                if dir_states["dd"][g].decide(fv_dd, bv_dd):
                    directions["dd"] += 1
                    visits.append(
                        VisitSpec(
                            "dd",
                            "dd",
                            backward=True,
                            candidates=cand_dd,
                            flags="delegate",
                            keep_sources=not mask_channel,
                        )
                    )
                else:
                    visits.append(
                        VisitSpec(
                            "dd",
                            "dd",
                            backward=False,
                            queue=queue_dd,
                            keep_sources=not mask_channel,
                            weighted=weighted,
                        )
                    )

            gpu_plans.append(GPUPlan(gpu=g, visits=visits, normal_flags=normal_flags))

        def finalize(outputs: list) -> IterationRecord:
            return self._finalize_super_step(
                outputs,
                program=program,
                state=state,
                communicator=communicator,
                level=level,
                wall=wall,
                base_comp=base_comp,
                directions=directions,
                normal_frontier_total=normal_frontier_total,
                delegate_frontier_size=int(frontier_d.size),
                mask_channel=mask_channel,
                needs_sources=needs_sources,
            )

        return SuperStepPlan(
            level=level,
            batched=False,
            gpu_plans=gpu_plans,
            finalize=finalize,
            wall=wall,
            delegate_flags=delegate_frontier_flags,
            provider=provider,
        )

    def _finalize_super_step(
        self,
        outputs: list,
        program: FrontierProgram,
        state: TraversalState,
        communicator: Communicator,
        level: int,
        wall: dict,
        base_comp: np.ndarray,
        directions: dict,
        normal_frontier_total: int,
        delegate_frontier_size: int,
        mask_channel: bool,
        needs_sources: bool,
    ) -> IterationRecord:
        """Fold kernel outputs, exchange, reduce: the serial half of a step."""
        opts = self.options
        graph = self.graph
        provider = self.provider
        p = graph.num_gpus
        d = graph.num_delegates

        nn_outboxes: list[np.ndarray] = []
        nn_payloads: list[np.ndarray] = []
        out_masks: list[Bitmask] = []
        delegate_proposals: list[np.ndarray] = []
        delegate_proposals_any = False
        fresh_from_dn: list[np.ndarray] = []
        per_gpu_comp = np.zeros(p, dtype=np.float64)
        edges_examined = {"nn": 0, "nd": 0, "dn": 0, "dd": 0}
        tracer = get_tracer()
        fold_started = now_s()

        def source_info(g: int, kernel: str, out: KernelOutput):
            """Global ids and program values of a kernel's discovering sources."""
            src = out.sources
            if kernel in ("nn", "nd"):
                # nn/nd edges originate at local normal vertices; forward rows
                # and backward-pull hit parents are both local slots.
                ids = graph.gpus[g].global_ids_of_locals(src)
                vals = state.normal_values[g][src]
            else:
                # dn/dd edges originate at delegates in both directions.
                ids = graph.delegate_vertices[src]
                vals = state.delegate_values[src]
            return np.asarray(ids, dtype=np.int64), np.asarray(vals, dtype=np.int64)

        def delegate_update(g: int, kernel: str, out: KernelOutput, out_mask: Bitmask):
            """Fold a kernel's delegate discoveries into the g-th GPU's update.

            Mask channel: the seed behaviour — deduplicate, drop delegates
            whose replicated status is already visited (a free local filter),
            set bits.  Values channel: propose program values, keep only
            proposals the (replicated) current values would accept, and
            combine them into the dense per-GPU proposal array.
            """
            nonlocal delegate_proposals_any
            if out.discovered.size == 0:
                return
            if mask_channel:
                found = np.unique(out.discovered)
                # Drop delegates that are already visited (their status is
                # replicated, so this local filter needs no communication
                # and avoids pointless mask reductions).
                found = found[~provider.bitmask_test_many(state.delegate_visited, found)]
                if found.size:
                    provider.bitmask_set_many(out_mask, found)
                return
            ids = np.asarray(out.discovered, dtype=np.int64)
            src_ids, src_vals = source_info(g, kernel, out)
            vals = program.visit_value(
                VisitContext(
                    kernel=kernel,
                    gpu=g,
                    level=level,
                    backward=out.backward,
                    discovered=ids,
                    source_ids=src_ids,
                    source_values=src_vals,
                    edge_weights=out.weights,
                )
            )
            keep = program.accept(state.delegate_values[ids], vals)
            ids, vals = ids[keep], vals[keep]
            if ids.size:
                program.combine.at(delegate_proposals[g], ids, vals)
                delegate_proposals_any = True

        for g in range(p):
            part = graph.gpus[g]
            outs = outputs[g]
            comp = base_comp[g]

            out_mask = Bitmask(d)
            if not mask_channel:
                delegate_proposals.append(
                    np.full(d, program.combine_identity, dtype=np.int64)
                )

            # ---- nn visit: always forward -------------------------------- #
            out_nn = outs["nn"]
            comp += self.netmodel.traversal_time(out_nn.edges_examined, backward=False)
            edges_examined["nn"] += out_nn.edges_examined
            nn_outboxes.append(out_nn.discovered)
            if program.payload_exchange:
                src_ids, src_vals = source_info(g, "nn", out_nn)
                nn_payloads.append(
                    program.visit_value(
                        VisitContext(
                            kernel="nn",
                            gpu=g,
                            level=level,
                            backward=False,
                            discovered=out_nn.discovered,
                            source_ids=src_ids,
                            source_values=src_vals,
                            edge_weights=out_nn.weights,
                        )
                    )
                )

            # ---- nd visit (destinations are delegates) -------------------- #
            if d:
                out_nd = outs["nd"]
                comp += self.netmodel.traversal_time(
                    out_nd.edges_examined, backward=out_nd.backward
                )
                edges_examined["nd"] += out_nd.edges_examined
                delegate_update(g, "nd", out_nd, out_mask)

            # ---- dn visit (destinations are local normal vertices) -------- #
            newly_local = np.zeros(0, dtype=np.int64)
            newly_local_values = np.zeros(0, dtype=np.int64)
            if d and part.num_local:
                out_dn = outs["dn"]
                comp += self.netmodel.traversal_time(
                    out_dn.edges_examined, backward=out_dn.backward
                )
                edges_examined["dn"] += out_dn.edges_examined
                newly_local = out_dn.discovered
                if newly_local.size:
                    src_ids = src_vals = None
                    if needs_sources:
                        src_ids, src_vals = source_info(g, "dn", out_dn)
                    newly_local_values = program.visit_value(
                        VisitContext(
                            kernel="dn",
                            gpu=g,
                            level=level,
                            backward=out_dn.backward,
                            discovered=newly_local,
                            source_ids=src_ids,
                            source_values=src_vals,
                            edge_weights=out_dn.weights,
                        )
                    )

            # ---- dd visit (delegates to delegates) ------------------------ #
            if d:
                out_dd = outs["dd"]
                comp += self.netmodel.traversal_time(
                    out_dd.edges_examined, backward=out_dd.backward
                )
                edges_examined["dd"] += out_dd.edges_examined
                delegate_update(g, "dd", out_dd, out_mask)

            slots, values = program.merge_remote(newly_local, newly_local_values)
            fresh = state.update_normals(g, slots, values, program.accept)
            fresh_from_dn.append(fresh)
            out_masks.append(out_mask)
            per_gpu_comp[g] = comp

        # ------------------------------------------------------------------ #
        # Communication stage
        # ------------------------------------------------------------------ #
        exchange_started = now_s()
        wall["kernels"] += exchange_started - fold_started
        if tracer.enabled:
            tracer.record_span(
                "fold", cat="engine", start=fold_started,
                dur=exchange_started - fold_started, args={"level": level},
            )
        exchange = communicator.exchange_normals(
            nn_outboxes,
            local_all2all=opts.local_all2all,
            uniquify=opts.uniquify,
            payloads=nn_payloads if program.payload_exchange else None,
            payload_combine=program.combine,
            payload_identity=program.combine_identity,
        )
        discovered = 0
        for g in range(p):
            inbox = exchange.inboxes[g]
            if program.payload_exchange:
                inbox_values = exchange.payload_inboxes[g]
            else:
                inbox_values = program.visit_value(
                    VisitContext(
                        kernel="recv",
                        gpu=g,
                        level=level,
                        backward=False,
                        discovered=inbox,
                    )
                )
            slots, values = program.merge_remote(inbox, inbox_values)
            fresh_recv = state.update_normals(g, slots, values, program.accept)
            if fresh_from_dn[g].size or fresh_recv.size:
                state.normal_frontiers[g] = np.union1d(fresh_from_dn[g], fresh_recv)
            else:
                state.normal_frontiers[g] = np.zeros(0, dtype=np.int64)
            discovered += int(state.normal_frontiers[g].size)

        reduce_started = now_s()
        wall["exchange"] += reduce_started - exchange_started
        if tracer.enabled:
            tracer.record_span(
                "nn-exchange", cat="engine", start=exchange_started,
                dur=reduce_started - exchange_started, args={"level": level},
            )
        if mask_channel:
            delegate_reduce_needed = any(mask.any() for mask in out_masks)
        else:
            delegate_reduce_needed = delegate_proposals_any
        reduce_local_s = 0.0
        reduce_global_s = 0.0
        if delegate_reduce_needed and mask_channel:
            reduce = communicator.allreduce_delegate_masks(
                out_masks, blocking=opts.blocking_reduce
            )
            new_bits = reduce.merged.and_not(state.delegate_visited)
            ids = new_bits.to_indices()
            fresh_delegates = state.update_delegates(
                ids,
                np.full(ids.size, program.level_value(level), dtype=np.int64),
                program.accept,
            )
            reduce_local_s = reduce.local_time_s
            reduce_global_s = reduce.global_time_s
        elif delegate_reduce_needed:
            vreduce = communicator.allreduce_delegate_values(
                delegate_proposals, combine=program.combine, blocking=opts.blocking_reduce
            )
            candidates = np.flatnonzero(vreduce.merged != program.combine_identity)
            fresh_delegates = state.update_delegates(
                candidates, vreduce.merged[candidates], program.accept
            )
            reduce_local_s = vreduce.local_time_s
            reduce_global_s = vreduce.global_time_s
        else:
            fresh_delegates = np.zeros(0, dtype=np.int64)
        state.delegate_frontier = fresh_delegates
        discovered += int(fresh_delegates.size)
        reduce_done = now_s()
        wall["delegate_reduce"] += reduce_done - reduce_started
        if tracer.enabled:
            tracer.record_span(
                "delegate-reduce", cat="engine", start=reduce_started,
                dur=reduce_done - reduce_started, args={"level": level},
            )

        # ------------------------------------------------------------------ #
        # Modeled timing for this super-step
        # ------------------------------------------------------------------ #
        computation_s = float(per_gpu_comp.max()) if p else 0.0
        local_comm_s = exchange.local_time_s + reduce_local_s
        remote_normal_s = exchange.remote_time_s
        remote_delegate_s = reduce_global_s
        comm_total = local_comm_s + remote_normal_s + remote_delegate_s
        overlap = opts.overlap_efficiency * min(computation_s, comm_total)
        elapsed_s = computation_s + comm_total - overlap

        return IterationRecord(
            iteration=level,
            normal_frontier_size=normal_frontier_total,
            delegate_frontier_size=delegate_frontier_size,
            edges_examined=edges_examined,
            directions=directions,
            discovered=discovered,
            delegate_reduce=delegate_reduce_needed,
            computation_s=computation_s,
            local_communication_s=local_comm_s,
            remote_normal_exchange_s=remote_normal_s,
            remote_delegate_reduce_s=remote_delegate_s,
            elapsed_s=elapsed_s,
        )

    def _plan_batched_super_step(
        self,
        program: BatchedFrontierProgram,
        state: "_BatchState",
        communicator: Communicator,
        dir_states: dict[str, list[DirectionState]],
        level: int,
        full_words: np.ndarray,
        wall: dict,
    ) -> SuperStepPlan:
        """Describe one fused batched super-step as a backend-executable plan.

        Mirrors :meth:`_plan_super_step` kernel for kernel, with lane words
        in place of single visited bits: forward tasks OR-propagate the
        source rows' words, backward tasks collect the full parent lists (no
        early exit — each lane needs its own parents), and the ``finalize``
        closure ships (vertex, source-bitset) pairs through the exchange and
        runs one 2-D delegate reduction for the whole batch.
        """
        opts = self.options
        graph = self.graph
        p = graph.num_gpus
        d = graph.num_delegates
        nwords = full_words.size
        provider = self.provider
        batched_filter_frontier = provider.batched_filter_frontier

        rows_d = state.frontier_d_rows
        words_d = state.frontier_d_words
        dense_d = np.zeros((d, nwords), dtype=np.uint64)
        if rows_d.size:
            dense_d[rows_d] = words_d
        if d:
            wanted_d = np.bitwise_and(
                np.bitwise_not(state.visited_d.words), full_words[None, :]
            )
            pull_ok = opts.direction_optimized
            not_full_d = (
                np.flatnonzero(wanted_d.any(axis=1)).astype(np.int64)
                if pull_ok
                else np.zeros(0, dtype=np.int64)
            )
        else:
            wanted_d = np.zeros((0, nwords), dtype=np.uint64)
            pull_ok = False
            not_full_d = np.zeros(0, dtype=np.int64)

        normal_frontier_total = int(sum(r.size for r in state.frontier_n_rows))
        directions = {"nd": 0, "dn": 0, "dd": 0}
        base_comp = np.zeros(p, dtype=np.float64)
        wanted_n_all: list[np.ndarray] = []
        gpu_plans: list[BatchedGPUPlan] = []

        for g in range(p):
            part = graph.gpus[g]
            deg = self._degrees[g]
            rows_n = state.frontier_n_rows[g]
            words_n = state.frontier_n_words[g]
            comp = self.netmodel.iteration_overhead()
            comp += self.netmodel.filter_time(2 * rows_n.size + 2 * rows_d.size)
            base_comp[g] = comp
            # Lanes each local slot still wants; only the delegate-coupled
            # kernels read it, so the all-normal partition never pays for it.
            wanted_n = (
                np.bitwise_and(
                    np.bitwise_not(state.visited_n[g].words), full_words[None, :]
                )
                if d
                else np.zeros((0, nwords), dtype=np.uint64)
            )
            wanted_n_all.append(wanted_n)
            dense_n: np.ndarray | None = None

            # ---- nn visit: always forward -------------------------------- #
            q_rows, q_words = batched_filter_frontier(rows_n, words_n, deg["nn"])
            visits = [
                BatchedVisitSpec("nn", "nn", backward=False, rows=q_rows, words=q_words)
            ]

            # ---- shared backward candidate sets --------------------------- #
            if d and pull_ok:
                cand_nd = not_full_d[part.dn_source_mask[not_full_d]]
                cand_dd = not_full_d[part.dd_source_mask[not_full_d]]
            else:
                cand_nd = np.zeros(0, dtype=np.int64)
                cand_dd = np.zeros(0, dtype=np.int64)
            if pull_ok and part.nd_source_list.size:
                nd_src = part.nd_source_list
                cand_dn = nd_src[wanted_n[nd_src].any(axis=1)]
            else:
                cand_dn = np.zeros(0, dtype=np.int64)

            # ---- nd visit (destinations are delegates) -------------------- #
            if d:
                q_nd_rows, q_nd_words = batched_filter_frontier(rows_n, words_n, deg["nd"])
                fv_nd = int(deg["nd"][q_nd_rows].sum()) if q_nd_rows.size else 0
                # A batched pull has no early exit, so its workload is not the
                # paper's expected-first-hit estimate but the exact full parent
                # lists of the candidates — computable from the reverse CSR.
                bv_nd = int(deg["dn"][cand_nd].sum()) if cand_nd.size else 0
                if dir_states["nd"][g].decide(fv_nd, bv_nd):
                    directions["nd"] += 1
                    dense_n = np.zeros((part.num_local, nwords), dtype=np.uint64)
                    if rows_n.size:
                        dense_n[rows_n] = words_n
                    visits.append(
                        BatchedVisitSpec(
                            "nd",
                            "dn",
                            backward=True,
                            candidates=cand_nd,
                            wanted=wanted_d[cand_nd],
                            parents="normal",
                        )
                    )
                else:
                    visits.append(
                        BatchedVisitSpec(
                            "nd", "nd", backward=False, rows=q_nd_rows, words=q_nd_words
                        )
                    )

            # ---- dn visit (destinations are local normal vertices) -------- #
            if d and part.num_local:
                q_dn_rows, q_dn_words = batched_filter_frontier(rows_d, words_d, deg["dn"])
                fv_dn = int(deg["dn"][q_dn_rows].sum()) if q_dn_rows.size else 0
                bv_dn = int(deg["nd"][cand_dn].sum()) if cand_dn.size else 0
                if dir_states["dn"][g].decide(fv_dn, bv_dn):
                    directions["dn"] += 1
                    visits.append(
                        BatchedVisitSpec(
                            "dn",
                            "nd",
                            backward=True,
                            candidates=cand_dn,
                            wanted=wanted_n[cand_dn],
                            parents="delegate",
                        )
                    )
                else:
                    visits.append(
                        BatchedVisitSpec(
                            "dn", "dn", backward=False, rows=q_dn_rows, words=q_dn_words
                        )
                    )

            # ---- dd visit (delegates to delegates) ------------------------ #
            if d:
                q_dd_rows, q_dd_words = batched_filter_frontier(rows_d, words_d, deg["dd"])
                fv_dd = int(deg["dd"][q_dd_rows].sum()) if q_dd_rows.size else 0
                bv_dd = int(deg["dd"][cand_dd].sum()) if cand_dd.size else 0
                if dir_states["dd"][g].decide(fv_dd, bv_dd):
                    directions["dd"] += 1
                    visits.append(
                        BatchedVisitSpec(
                            "dd",
                            "dd",
                            backward=True,
                            candidates=cand_dd,
                            wanted=wanted_d[cand_dd],
                            parents="delegate",
                        )
                    )
                else:
                    visits.append(
                        BatchedVisitSpec(
                            "dd", "dd", backward=False, rows=q_dd_rows, words=q_dd_words
                        )
                    )

            gpu_plans.append(BatchedGPUPlan(gpu=g, visits=visits, dense_normal=dense_n))

        def finalize(outputs: list) -> IterationRecord:
            return self._finalize_batched_super_step(
                outputs,
                program=program,
                state=state,
                communicator=communicator,
                level=level,
                wall=wall,
                full_words=full_words,
                base_comp=base_comp,
                directions=directions,
                normal_frontier_total=normal_frontier_total,
                delegate_frontier_size=int(rows_d.size),
                wanted_d=wanted_d,
                wanted_n_all=wanted_n_all,
            )

        return SuperStepPlan(
            level=level,
            batched=True,
            gpu_plans=gpu_plans,
            finalize=finalize,
            wall=wall,
            dense_delegate=dense_d,
            provider=provider,
        )

    def _finalize_batched_super_step(
        self,
        outputs: list,
        program: BatchedFrontierProgram,
        state: "_BatchState",
        communicator: Communicator,
        level: int,
        wall: dict,
        full_words: np.ndarray,
        base_comp: np.ndarray,
        directions: dict,
        normal_frontier_total: int,
        delegate_frontier_size: int,
        wanted_d: np.ndarray,
        wanted_n_all: list,
    ) -> IterationRecord:
        """Fold batched kernel outputs, exchange, reduce (serial half)."""
        opts = self.options
        graph = self.graph
        p = graph.num_gpus
        d = graph.num_delegates
        nwords = full_words.size

        outboxes: list[np.ndarray] = []
        outbox_words: list[np.ndarray] = []
        update_masks: list[BatchBitmask] = []
        fresh_dn_rows: list[np.ndarray] = []
        fresh_dn_words: list[np.ndarray] = []
        per_gpu_comp = np.zeros(p, dtype=np.float64)
        edges_examined = {"nn": 0, "nd": 0, "dn": 0, "dd": 0}
        tracer = get_tracer()
        fold_started = now_s()

        def propose_delegates(update: BatchBitmask, out) -> None:
            """Fold a kernel's delegate discoveries into this GPU's update,
            dropping lanes already visited (the free replicated-status
            filter, exactly as the sequential mask channel does)."""
            if out.discovered.size == 0:
                return
            words = out.words & wanted_d[out.discovered]
            keep = words.any(axis=1)
            if keep.any():
                update.or_rows(out.discovered[keep], words[keep])

        for g in range(p):
            part = graph.gpus[g]
            outs = outputs[g]
            wanted_n = wanted_n_all[g]
            comp = base_comp[g]
            update_d = BatchBitmask(d, state.width) if d else BatchBitmask(0, state.width)

            # ---- nn visit: always forward -------------------------------- #
            out_nn = outs["nn"]
            comp += self.netmodel.traversal_time(out_nn.edges_examined, backward=False)
            edges_examined["nn"] += out_nn.edges_examined
            outboxes.append(out_nn.discovered)
            outbox_words.append(out_nn.words)

            # ---- nd visit (destinations are delegates) -------------------- #
            if d:
                out_nd = outs["nd"]
                comp += self.netmodel.traversal_time(
                    out_nd.edges_examined, backward=out_nd.backward
                )
                edges_examined["nd"] += out_nd.edges_examined
                propose_delegates(update_d, out_nd)

            # ---- dn visit (destinations are local normal vertices) -------- #
            f_rows = np.zeros(0, dtype=np.int64)
            f_words = np.zeros((0, nwords), dtype=np.uint64)
            if d and part.num_local:
                out_dn = outs["dn"]
                comp += self.netmodel.traversal_time(
                    out_dn.edges_examined, backward=out_dn.backward
                )
                edges_examined["dn"] += out_dn.edges_examined
                if out_dn.discovered.size:
                    new = out_dn.words & wanted_n[out_dn.discovered]
                    keep = new.any(axis=1)
                    f_rows = out_dn.discovered[keep]
                    f_words = new[keep]
                    if f_rows.size:
                        state.visited_n[g].or_rows(f_rows, f_words)
                        program.record(
                            part.global_ids_of_locals(f_rows), f_words, level
                        )

            # ---- dd visit (delegates to delegates) ------------------------ #
            if d:
                out_dd = outs["dd"]
                comp += self.netmodel.traversal_time(
                    out_dd.edges_examined, backward=out_dd.backward
                )
                edges_examined["dd"] += out_dd.edges_examined
                propose_delegates(update_d, out_dd)

            update_masks.append(update_d)
            fresh_dn_rows.append(f_rows)
            fresh_dn_words.append(f_words)
            per_gpu_comp[g] = comp

        # ------------------------------------------------------------------ #
        # Communication stage
        # ------------------------------------------------------------------ #
        exchange_started = now_s()
        wall["kernels"] += exchange_started - fold_started
        if tracer.enabled:
            tracer.record_span(
                "fold", cat="engine", start=fold_started,
                dur=exchange_started - fold_started, args={"level": level},
            )
        exchange = communicator.exchange_batch(outboxes, outbox_words)
        discovered = 0
        for g in range(p):
            inbox = exchange.inboxes[g]
            rows_recv = np.zeros(0, dtype=np.int64)
            words_recv = np.zeros((0, nwords), dtype=np.uint64)
            if inbox.size:
                unique, inverse = np.unique(inbox, return_inverse=True)
                proposed = np.zeros((unique.size, nwords), dtype=np.uint64)
                np.bitwise_or.at(proposed, inverse, exchange.word_inboxes[g])
                current = state.visited_n[g].words[unique]
                new = proposed & np.bitwise_not(current) & full_words[None, :]
                keep = new.any(axis=1)
                rows_recv = unique[keep]
                words_recv = new[keep]
                if rows_recv.size:
                    state.visited_n[g].or_rows(rows_recv, words_recv)
                    program.record(
                        graph.gpus[g].global_ids_of_locals(rows_recv), words_recv, level
                    )
            rows_all = np.concatenate([fresh_dn_rows[g], rows_recv])
            if rows_all.size:
                words_all = np.concatenate([fresh_dn_words[g], words_recv])
                unique, inverse = np.unique(rows_all, return_inverse=True)
                merged = np.zeros((unique.size, nwords), dtype=np.uint64)
                np.bitwise_or.at(merged, inverse, words_all)
                state.frontier_n_rows[g] = unique
                state.frontier_n_words[g] = merged
            else:
                state.frontier_n_rows[g] = rows_all
                state.frontier_n_words[g] = np.zeros((0, nwords), dtype=np.uint64)
            discovered += int(state.frontier_n_rows[g].size)

        reduce_started = now_s()
        wall["exchange"] += reduce_started - exchange_started
        if tracer.enabled:
            tracer.record_span(
                "nn-exchange", cat="engine", start=exchange_started,
                dur=reduce_started - exchange_started, args={"level": level},
            )
        delegate_reduce_needed = any(mask.any() for mask in update_masks)
        reduce_local_s = 0.0
        reduce_global_s = 0.0
        if delegate_reduce_needed:
            reduce = communicator.allreduce_delegate_batch(
                update_masks, blocking=opts.blocking_reduce
            )
            new_bits = reduce.merged.and_not(state.visited_d)
            rows = new_bits.nonzero_rows()
            words = new_bits.words[rows]
            state.visited_d.or_with(new_bits)
            state.frontier_d_rows = rows
            state.frontier_d_words = words
            if rows.size:
                program.record(graph.delegate_vertices[rows], words, level)
            reduce_local_s = reduce.local_time_s
            reduce_global_s = reduce.global_time_s
        else:
            state.frontier_d_rows = np.zeros(0, dtype=np.int64)
            state.frontier_d_words = np.zeros((0, nwords), dtype=np.uint64)
        discovered += int(state.frontier_d_rows.size)
        reduce_done = now_s()
        wall["delegate_reduce"] += reduce_done - reduce_started
        if tracer.enabled:
            tracer.record_span(
                "delegate-reduce", cat="engine", start=reduce_started,
                dur=reduce_done - reduce_started, args={"level": level},
            )

        computation_s = float(per_gpu_comp.max()) if p else 0.0
        local_comm_s = exchange.local_time_s + reduce_local_s
        remote_normal_s = exchange.remote_time_s
        remote_delegate_s = reduce_global_s
        comm_total = local_comm_s + remote_normal_s + remote_delegate_s
        overlap = opts.overlap_efficiency * min(computation_s, comm_total)
        elapsed_s = computation_s + comm_total - overlap

        return IterationRecord(
            iteration=level,
            normal_frontier_size=normal_frontier_total,
            delegate_frontier_size=delegate_frontier_size,
            edges_examined=edges_examined,
            directions=directions,
            discovered=discovered,
            delegate_reduce=delegate_reduce_needed,
            computation_s=computation_s,
            local_communication_s=local_comm_s,
            remote_normal_exchange_s=remote_normal_s,
            remote_delegate_reduce_s=remote_delegate_s,
            elapsed_s=elapsed_s,
        )


class _BatchState:
    """Mutable per-run state of one batched traversal.

    Per GPU, a :class:`BatchBitmask` over the local normal slots plus the
    (rows, words) frontier of the last super-step's discoveries; replicated,
    the delegate batch mask and frontier — the 2-D analogue of
    :class:`repro.core.state.TraversalState` for lane-bitset programs.
    """

    __slots__ = (
        "width",
        "visited_n",
        "visited_d",
        "frontier_n_rows",
        "frontier_n_words",
        "frontier_d_rows",
        "frontier_d_words",
    )

    def __init__(self, width: int) -> None:
        self.width = width

    @classmethod
    def initialize(cls, graph: PartitionedGraph, sources, width: int) -> "_BatchState":
        state = cls(width)
        nwords = (width + 63) // 64
        d = graph.num_delegates
        state.visited_n = [BatchBitmask(gpu.num_local, width) for gpu in graph.gpus]
        state.visited_d = BatchBitmask(d, width)
        d_rows: list[int] = []
        d_lanes: list[int] = []
        n_rows: dict[int, list[int]] = {}
        n_lanes: dict[int, list[int]] = {}
        for lane, source in enumerate(sources):
            delegate_id = int(graph.separation.delegate_id_of[source])
            if delegate_id >= 0:
                d_rows.append(delegate_id)
                d_lanes.append(lane)
            else:
                owner = int(graph.layout.flat_gpu_of(source))
                n_rows.setdefault(owner, []).append(
                    int(graph.layout.local_index_of(source))
                )
                n_lanes.setdefault(owner, []).append(lane)
        if d_rows:
            state.visited_d.set_lanes(
                np.asarray(d_rows, dtype=np.int64), np.asarray(d_lanes, dtype=np.int64)
            )
        for owner, rows in n_rows.items():
            state.visited_n[owner].set_lanes(
                np.asarray(rows, dtype=np.int64),
                np.asarray(n_lanes[owner], dtype=np.int64),
            )
        # The initial frontiers are exactly the seeds (nothing else is set).
        state.frontier_n_rows = []
        state.frontier_n_words = []
        for mask in state.visited_n:
            rows = mask.nonzero_rows()
            state.frontier_n_rows.append(rows)
            state.frontier_n_words.append(mask.get_rows(rows))
        rows = state.visited_d.nonzero_rows()
        state.frontier_d_rows = rows
        state.frontier_d_words = (
            state.visited_d.get_rows(rows)
            if rows.size
            else np.zeros((0, nwords), dtype=np.uint64)
        )
        return state

    def frontier_empty(self) -> bool:
        """Whether both the normal and delegate frontiers are empty everywhere."""
        if self.frontier_d_rows.size:
            return False
        return all(rows.size == 0 for rows in self.frontier_n_rows)


class DistributedBFS:
    """Distributed breadth-first search over a degree-separated partitioning.

    The seed API, kept verbatim: a thin wrapper running
    :class:`repro.core.programs.BFSLevels` through the generic
    :class:`TraversalEngine` with identical answers and modeled timings.

    Parameters
    ----------
    graph:
        The partitioned graph produced by
        :func:`repro.partition.build_partitions`.
    options:
        Runtime options (direction optimization, exchange optimizations,
        reduction flavour, switching factors).
    hardware:
        Machine parameters for the performance model; defaults to the paper's
        Ray system.

    Examples
    --------
    >>> from repro.graph import generate_rmat
    >>> from repro.partition import ClusterLayout, build_partitions
    >>> edges = generate_rmat(10, rng=7)
    >>> layout = ClusterLayout(num_ranks=2, gpus_per_rank=2)
    >>> graph = build_partitions(edges, layout, threshold=32)
    >>> bfs = DistributedBFS(graph)
    >>> result = bfs.run(source=0)
    >>> int(result.distances[0])
    0
    """

    def __init__(
        self,
        graph: PartitionedGraph,
        options: BFSOptions | None = None,
        hardware: HardwareSpec | None = None,
        backend=None,
        kernels=None,
    ) -> None:
        self.engine = TraversalEngine(
            graph, options=options, hardware=hardware, backend=backend, kernels=kernels
        )

    @property
    def graph(self) -> PartitionedGraph:
        return self.engine.graph

    def close(self) -> None:
        """Release the engine's execution backend (idempotent)."""
        self.engine.close()

    @property
    def options(self) -> BFSOptions:
        return self.engine.options

    @property
    def hardware(self) -> HardwareSpec:
        return self.engine.hardware

    @property
    def netmodel(self) -> NetworkModel:
        return self.engine.netmodel

    @property
    def topology(self) -> ClusterTopology:
        return self.engine.topology

    def run(self, source: int) -> BFSResult:
        """Run one BFS from ``source`` and return distances plus metrics."""
        return self.engine.run(BFSLevels(source=int(source)))

    def run_many(
        self, sources: np.ndarray | list[int], batch_size: int | None = None
    ) -> "Campaign":
        """Run BFS from several sources (the paper reports 140 per data point).

        Returns a :class:`repro.core.campaign.Campaign`, an aggregating
        sequence of the per-source results (indexable and iterable like the
        plain list earlier versions returned).  Duplicate sources are
        traversed once and fanned back out (``campaign.saved_traversals``
        counts the skips); ``batch_size >= 2`` routes the unique sources
        through the batched MS-BFS path.
        """
        return self.engine.run_many(
            [
                BFSLevels(source=int(s))
                for s in np.asarray(sources, dtype=np.int64).ravel()
            ],
            batch_size=batch_size,
        )
