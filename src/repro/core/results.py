"""Result containers of a distributed BFS run.

A :class:`BFSResult` bundles three things:

1. the **answer** — exact hop distances from the source (the paper's
   implementation likewise "outputs the hop-distances from the source vertex,
   instead of the BFS tree required by Graph500");
2. the **counters** — per-kernel edges examined, frontier sizes and
   communication volumes, recorded per iteration in
   :class:`IterationRecord`; and
3. the **modeled performance** — the per-phase
   :class:`repro.utils.timing.TimingBreakdown` and the derived traversal rate
   (TEPS), computed from the counters through the hardware model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.comm import CommStats
from repro.utils.timing import TimingBreakdown

__all__ = ["IterationRecord", "BFSResult"]


@dataclass
class IterationRecord:
    """Counters and modeled times for one super-step."""

    iteration: int
    #: Number of vertices in the input normal frontier, summed over GPUs.
    normal_frontier_size: int
    #: Number of newly-visited delegates entering this iteration.
    delegate_frontier_size: int
    #: Edges examined by each kernel class this iteration, summed over GPUs.
    edges_examined: dict = field(default_factory=dict)
    #: Direction used by each DO-capable kernel this iteration (True=backward).
    directions: dict = field(default_factory=dict)
    #: Newly discovered vertices this iteration (normals + delegates).
    discovered: int = 0
    #: Whether a delegate-mask reduction was needed this iteration.
    delegate_reduce: bool = False
    #: Modeled times (seconds) for this iteration.
    computation_s: float = 0.0
    local_communication_s: float = 0.0
    remote_normal_exchange_s: float = 0.0
    remote_delegate_reduce_s: float = 0.0
    elapsed_s: float = 0.0

    def total_edges_examined(self) -> int:
        """Edges examined across all kernels this iteration."""
        return int(sum(self.edges_examined.values()))


@dataclass
class BFSResult:
    """Full outcome of one BFS run."""

    source: int
    distances: np.ndarray
    iterations: int
    records: list[IterationRecord]
    timing: TimingBreakdown
    comm_stats: CommStats
    #: Edges examined by all kernels over the whole run (the DOBFS workload
    #: m' + d·p·b of §IV-B).
    total_edges_examined: int
    #: Directed edges of the input graph (for default TEPS accounting).
    num_directed_edges: int

    # ------------------------------------------------------------------ #
    # Derived metrics
    # ------------------------------------------------------------------ #
    @property
    def num_visited(self) -> int:
        """Number of vertices reached from the source (including the source)."""
        return int(np.count_nonzero(self.distances >= 0))

    @property
    def depth(self) -> int:
        """Largest hop distance reached."""
        visited = self.distances[self.distances >= 0]
        return int(visited.max()) if visited.size else 0

    @property
    def elapsed_ms(self) -> float:
        """Modeled end-to-end elapsed time in milliseconds."""
        return self.timing.elapsed_ms

    def teps(self, counted_edges: int | None = None) -> float:
        """Traversal rate in edges per second.

        Parameters
        ----------
        counted_edges:
            Number of edges to count, following the Graph500 convention the
            paper uses (``m/2 = 2^N · 16`` for a scale-N RMAT graph).  The
            default is half the stored directed edge count, i.e. the number of
            undirected input edges.
        """
        edges = counted_edges if counted_edges is not None else self.num_directed_edges // 2
        if self.timing.elapsed_ms <= 0:
            raise ValueError("elapsed time is zero; TEPS undefined")
        return edges / (self.timing.elapsed_ms / 1000.0)

    def gteps(self, counted_edges: int | None = None) -> float:
        """Traversal rate in Giga-TEPS."""
        return self.teps(counted_edges) / 1e9

    def traversed_more_than_one_iteration(self) -> bool:
        """The paper only reports runs that executed more than one iteration."""
        return self.iterations > 1

    def workload_by_kernel(self) -> dict:
        """Total edges examined per kernel class across the run."""
        totals: dict[str, int] = {}
        for record in self.records:
            for kernel, edges in record.edges_examined.items():
                totals[kernel] = totals.get(kernel, 0) + int(edges)
        return totals

    def summary(self) -> dict:
        """Compact dictionary summary for logging / tabular output."""
        return {
            "source": self.source,
            "iterations": self.iterations,
            "visited": self.num_visited,
            "depth": self.depth,
            "elapsed_ms": self.timing.elapsed_ms,
            "gteps": self.gteps(),
            "edges_examined": self.total_edges_examined,
            "computation_ms": self.timing.computation,
            "local_comm_ms": self.timing.local_communication,
            "remote_normal_ms": self.timing.remote_normal_exchange,
            "remote_delegate_ms": self.timing.remote_delegate_reduce,
        }
