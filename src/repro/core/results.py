"""Result containers of distributed traversal runs.

Every run of the generic :class:`repro.core.engine.TraversalEngine` produces a
:class:`TraversalResult` bundling three things:

1. the **answer** — the per-vertex values the frontier program computed
   (hop distances for :class:`BFSResult`, parent pointers for
   :class:`ParentTreeResult`, component labels for :class:`ComponentsResult`);
2. the **counters** — per-kernel edges examined, frontier sizes and
   communication volumes, recorded per iteration in
   :class:`IterationRecord`; and
3. the **modeled performance** — the per-phase
   :class:`repro.utils.timing.TimingBreakdown` and the derived traversal rate
   (TEPS), computed from the counters through the hardware model.

The counters and timing machinery is shared by every algorithm; only the
answer-specific fields and derived metrics live on the subclasses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.cluster.comm import CommStats
from repro.utils.timing import TimingBreakdown

__all__ = [
    "IterationRecord",
    "TraversalResult",
    "BFSResult",
    "ParentTreeResult",
    "ComponentsResult",
    "ReachabilityResult",
    "BatchResult",
]


@dataclass
class IterationRecord:
    """Counters and modeled times for one super-step."""

    iteration: int
    #: Number of vertices in the input normal frontier, summed over GPUs.
    normal_frontier_size: int
    #: Number of newly-visited delegates entering this iteration.
    delegate_frontier_size: int
    #: Edges examined by each kernel class this iteration, summed over GPUs.
    edges_examined: dict = field(default_factory=dict)
    #: Direction used by each DO-capable kernel this iteration (True=backward).
    directions: dict = field(default_factory=dict)
    #: Newly discovered vertices this iteration (normals + delegates).
    discovered: int = 0
    #: Whether a delegate-mask reduction was needed this iteration.
    delegate_reduce: bool = False
    #: Modeled times (seconds) for this iteration.
    computation_s: float = 0.0
    local_communication_s: float = 0.0
    remote_normal_exchange_s: float = 0.0
    remote_delegate_reduce_s: float = 0.0
    elapsed_s: float = 0.0

    def total_edges_examined(self) -> int:
        """Edges examined across all kernels this iteration."""
        return int(sum(self.edges_examined.values()))


@dataclass
class TraversalResult:
    """Common outcome of one traversal-program run (any algorithm)."""

    #: Short algorithm name, set by each concrete result class.
    algorithm: ClassVar[str] = "traversal"

    iterations: int
    records: list[IterationRecord]
    timing: TimingBreakdown
    comm_stats: CommStats
    #: Edges examined by all kernels over the whole run (the DOBFS workload
    #: m' + d·p·b of §IV-B).
    total_edges_examined: int
    #: Directed edges of the input graph (for default TEPS accounting).
    num_directed_edges: int
    #: Wall-clock seconds the *simulation itself* spent, per engine phase
    #: (``kernels``, ``exchange``, ``delegate_reduce``, ``traversal``).  This
    #: is real time of the Python reproduction — the quantity the bench
    #: harness tracks — not the modeled cluster time above.
    wall_s: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Derived metrics
    # ------------------------------------------------------------------ #
    @property
    def elapsed_ms(self) -> float:
        """Modeled end-to-end elapsed time in milliseconds."""
        return self.timing.elapsed_ms

    def teps(self, counted_edges: int | None = None) -> float:
        """Traversal rate in edges per second.

        Parameters
        ----------
        counted_edges:
            Number of edges to count, following the Graph500 convention the
            paper uses (``m/2 = 2^N · 16`` for a scale-N RMAT graph).  The
            default is half the stored directed edge count, i.e. the number of
            undirected input edges.
        """
        edges = counted_edges if counted_edges is not None else self.num_directed_edges // 2
        if self.timing.elapsed_ms <= 0:
            raise ValueError("elapsed time is zero; TEPS undefined")
        return edges / (self.timing.elapsed_ms / 1000.0)

    def gteps(self, counted_edges: int | None = None) -> float:
        """Traversal rate in Giga-TEPS."""
        return self.teps(counted_edges) / 1e9

    def traversed_more_than_one_iteration(self) -> bool:
        """The paper only reports runs that executed more than one iteration."""
        return self.iterations > 1

    def workload_by_kernel(self) -> dict:
        """Total edges examined per kernel class across the run."""
        totals: dict[str, int] = {}
        for record in self.records:
            for kernel, edges in record.edges_examined.items():
                totals[kernel] = totals.get(kernel, 0) + int(edges)
        return totals

    def summary(self) -> dict:
        """Compact dictionary summary for logging / tabular output."""
        return {
            "algorithm": self.algorithm,
            "iterations": self.iterations,
            "elapsed_ms": self.timing.elapsed_ms,
            # Zero-super-step runs (e.g. 0-hop reachability) have no elapsed
            # time and therefore no rate.
            "gteps": self.gteps() if self.timing.elapsed_ms > 0 else 0.0,
            "edges_examined": self.total_edges_examined,
            "computation_ms": self.timing.computation,
            "local_comm_ms": self.timing.local_communication,
            "remote_normal_ms": self.timing.remote_normal_exchange,
            "remote_delegate_ms": self.timing.remote_delegate_reduce,
        }


@dataclass
class BFSResult(TraversalResult):
    """Full outcome of one BFS-levels run (the paper's algorithm)."""

    algorithm: ClassVar[str] = "bfs"

    source: int = 0
    distances: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    @property
    def num_visited(self) -> int:
        """Number of vertices reached from the source (including the source)."""
        return int(np.count_nonzero(self.distances >= 0))

    @property
    def depth(self) -> int:
        """Largest hop distance reached."""
        visited = self.distances[self.distances >= 0]
        return int(visited.max()) if visited.size else 0

    def summary(self) -> dict:
        """Compact dictionary summary for logging / tabular output."""
        base = super().summary()
        base.update(
            {
                "source": self.source,
                "visited": self.num_visited,
                "depth": self.depth,
            }
        )
        return base


@dataclass
class ParentTreeResult(TraversalResult):
    """Graph500-style parent tree: ``parents[v]`` is the BFS parent of ``v``.

    The source is its own parent; unreached vertices hold ``-1``.  The tree
    is deterministic: when several parents claim a vertex through the same
    channel in one super-step the smallest parent id wins, and cross-channel
    ties resolve by the engine's fixed update order (local dn discoveries are
    applied before exchange-delivered ones).
    """

    algorithm: ClassVar[str] = "bfs-parents"

    source: int = 0
    parents: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    @property
    def num_visited(self) -> int:
        """Number of vertices in the parent tree (including the source)."""
        return int(np.count_nonzero(self.parents >= 0))

    def tree_edges(self) -> np.ndarray:
        """The (parent, child) pairs of the tree, excluding the source's self-loop."""
        children = np.flatnonzero(self.parents >= 0)
        children = children[children != self.source]
        return np.stack([self.parents[children], children], axis=1)

    def summary(self) -> dict:
        base = super().summary()
        base.update({"source": self.source, "visited": self.num_visited})
        return base


@dataclass
class ComponentsResult(TraversalResult):
    """Connected-component labels: ``labels[v]`` is the smallest vertex id in
    ``v``'s component (isolated vertices label themselves)."""

    algorithm: ClassVar[str] = "components"

    labels: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    @property
    def num_components(self) -> int:
        """Number of connected components (isolated vertices count as one each)."""
        return int(np.unique(self.labels).size)

    @property
    def largest_component_size(self) -> int:
        """Vertex count of the largest component."""
        if self.labels.size == 0:
            return 0
        _, counts = np.unique(self.labels, return_counts=True)
        return int(counts.max())

    def component_sizes(self) -> dict:
        """Mapping from component label to component size."""
        labels, counts = np.unique(self.labels, return_counts=True)
        return {int(label): int(count) for label, count in zip(labels, counts)}

    def summary(self) -> dict:
        base = super().summary()
        base.update(
            {
                "components": self.num_components,
                "largest_component": self.largest_component_size,
            }
        )
        return base


@dataclass
class BatchResult(TraversalResult):
    """Outcome of one batched (MS-BFS style) run: B sources, one sweep.

    ``distances`` is a ``(B, num_vertices)`` matrix whose lane ``l`` is
    bit-identical to a sequential BFS (or k-hop, when ``max_hops`` is set)
    from ``sources[l]``.  The counters, records and timing describe the
    *shared* batched sweep — one traversal that answered B queries — so the
    per-lane views produced by :meth:`result_for_lane` carry the whole
    batch's cost, not a per-lane split (there is no physically meaningful
    way to split one fused sweep).
    """

    algorithm: ClassVar[str] = "batched-bfs"

    sources: list = field(default_factory=list)
    #: ``(B, num_vertices)`` hop levels, ``-1`` = unreached (within the cap).
    distances: np.ndarray = field(default_factory=lambda: np.zeros((0, 0), dtype=np.int64))
    #: Hop cap shared by every lane; ``None`` = plain BFS to completion.
    max_hops: int | None = None

    @property
    def width(self) -> int:
        """Batch width B (number of lanes / sources)."""
        return len(self.sources)

    def distances_for(self, lane: int) -> np.ndarray:
        """The per-vertex hop levels of one lane."""
        if not 0 <= lane < self.width:
            raise IndexError(f"lane {lane} out of range [0, {self.width})")
        return self.distances[lane]

    def result_for_lane(self, lane: int) -> TraversalResult:
        """A per-source view of one lane, in the sequential result vocabulary.

        The answer arrays are the lane's own; iterations are reconstructed
        from the lane's depth (a lane from source ``s`` reaching depth ``D``
        behaves like a sequential run of ``D + 1`` super-steps); counters and
        timing are the shared batch's.
        """
        values = self.distances_for(lane)
        reached = values[values >= 0]
        depth = int(reached.max()) if reached.size else 0
        iterations = depth + 1
        if self.max_hops is not None:
            iterations = min(iterations, self.max_hops)
        base = {
            "iterations": iterations,
            "records": self.records,
            "timing": self.timing,
            "comm_stats": self.comm_stats,
            "total_edges_examined": self.total_edges_examined,
            "num_directed_edges": self.num_directed_edges,
            "wall_s": self.wall_s,
        }
        if self.max_hops is not None:
            return ReachabilityResult(
                source=int(self.sources[lane]),
                max_hops=self.max_hops,
                distances=values,
                **base,
            )
        return BFSResult(source=int(self.sources[lane]), distances=values, **base)

    def per_source_results(self) -> list:
        """One per-lane view per source, in lane order."""
        return [self.result_for_lane(lane) for lane in range(self.width)]

    @property
    def num_visited(self) -> int:
        """Total (vertex, lane) pairs reached across the batch."""
        return int(np.count_nonzero(self.distances >= 0))

    def summary(self) -> dict:
        base = super().summary()
        base.update(
            {
                "batch_width": self.width,
                "visited": self.num_visited,
                "max_hops": self.max_hops,
            }
        )
        return base


@dataclass
class ReachabilityResult(TraversalResult):
    """K-hop reachability: distances capped at ``max_hops`` from the source."""

    algorithm: ClassVar[str] = "k-hop"

    source: int = 0
    max_hops: int = 0
    distances: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    @property
    def reachable(self) -> np.ndarray:
        """Boolean mask of vertices within ``max_hops`` of the source."""
        return self.distances >= 0

    @property
    def num_reached(self) -> int:
        """Number of vertices within ``max_hops`` of the source."""
        return int(np.count_nonzero(self.distances >= 0))

    def summary(self) -> dict:
        base = super().summary()
        base.update(
            {
                "source": self.source,
                "max_hops": self.max_hops,
                "reached": self.num_reached,
            }
        )
        return base
