"""Core distributed traversal engine — the paper's primary contribution,
generalized into an algorithm-agnostic machine.

The public entry points are :class:`repro.core.engine.TraversalEngine`, which
executes any :class:`repro.core.programs.FrontierProgram` over a
:class:`repro.partition.PartitionedGraph` on the simulated cluster, and the
seed-compatible :class:`repro.core.engine.DistributedBFS` wrapper, which runs
the paper's BFS (the :class:`repro.core.programs.BFSLevels` program) with
identical answers and modeled timings.

Modules
-------
``options``
    :class:`BFSOptions` — every switch from the paper's Figure 8 ablation
    (direction optimization, local all2all, uniquify, blocking vs non-blocking
    delegate reduction) plus the per-subgraph direction-switching factors.
``kernels``
    The forward-push and backward-pull visit kernels for the four subgraphs,
    as vectorized NumPy functions with exact workload counting.
``direction``
    Per-subgraph direction-optimization state: forward/backward workload
    estimates (FV / BV) and the factor-based switching rule of §IV-B.
``state``
    Per-GPU and replicated traversal state (normal values, delegate values,
    masks, frontiers); :class:`BFSState` keeps the level-array vocabulary.
``programs``
    The frontier-program protocol and the shipped algorithms: BFS levels,
    Graph500 parent trees, connected components, k-hop reachability.
``results``
    The :class:`TraversalResult` hierarchy (per-algorithm answers over shared
    counters and timing) and per-iteration records.
``campaign``
    :class:`Campaign` — the paper's many-sources reporting protocol
    (geometric means, single-iteration skips) as an aggregating sequence.
``engine``
    :class:`TraversalEngine` — the super-step orchestrator combining local
    computation (Fig. 3) and the communication model (Fig. 4).
"""

from repro.core.campaign import Campaign, run_campaign
from repro.core.engine import DistributedBFS, TraversalEngine
from repro.core.options import BFSOptions, DirectionFactors
from repro.core.programs import (
    BatchedBFSLevels,
    BatchedFrontierProgram,
    BatchedReachability,
    BFSLevels,
    BFSParents,
    ConnectedComponents,
    FrontierProgram,
    KHopReachability,
)
from repro.core.results import (
    BatchResult,
    BFSResult,
    ComponentsResult,
    IterationRecord,
    ParentTreeResult,
    ReachabilityResult,
    TraversalResult,
)

__all__ = [
    "TraversalEngine",
    "DistributedBFS",
    "FrontierProgram",
    "BFSLevels",
    "BFSParents",
    "ConnectedComponents",
    "KHopReachability",
    "BatchedFrontierProgram",
    "BatchedBFSLevels",
    "BatchedReachability",
    "BFSOptions",
    "DirectionFactors",
    "TraversalResult",
    "BFSResult",
    "ParentTreeResult",
    "ComponentsResult",
    "ReachabilityResult",
    "BatchResult",
    "IterationRecord",
    "Campaign",
    "run_campaign",
]
