"""Core distributed (DO)BFS engine — the paper's primary contribution.

The public entry point is :class:`repro.core.engine.DistributedBFS`, which
traverses a :class:`repro.partition.PartitionedGraph` on the simulated cluster
and returns a :class:`repro.core.results.BFSResult` carrying exact hop
distances, workload/communication counters and the modeled runtime breakdown.

Modules
-------
``options``
    :class:`BFSOptions` — every switch from the paper's Figure 8 ablation
    (direction optimization, local all2all, uniquify, blocking vs non-blocking
    delegate reduction) plus the per-subgraph direction-switching factors.
``kernels``
    The forward-push and backward-pull visit kernels for the four subgraphs,
    as vectorized NumPy functions with exact workload counting.
``direction``
    Per-subgraph direction-optimization state: forward/backward workload
    estimates (FV / BV) and the factor-based switching rule of §IV-B.
``state``
    Per-GPU and replicated BFS state (normal levels, delegate levels, masks,
    frontiers).
``results``
    :class:`BFSResult` and per-iteration records.
``engine``
    :class:`DistributedBFS` — the super-step orchestrator combining local
    computation (Fig. 3) and the communication model (Fig. 4).
"""

from repro.core.engine import DistributedBFS
from repro.core.options import BFSOptions, DirectionFactors
from repro.core.results import BFSResult, IterationRecord

__all__ = [
    "DistributedBFS",
    "BFSOptions",
    "DirectionFactors",
    "BFSResult",
    "IterationRecord",
]
