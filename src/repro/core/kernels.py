"""Local traversal kernels (paper §IV, Figure 3).

Each virtual GPU runs up to four *visit* kernels per super-step, one per
subgraph.  In the real system these are CUDA kernels with merge-based or
thread-warp-block load balancing; here they are vectorized NumPy functions
that produce the identical set of discovered vertices **and** count exactly
how many edges they examined, because the examined-edge count is what drives
the paper's performance results (workload is what the GPUs are throughput-
bound on).

Forward-push kernels gather the full neighbour lists of the frontier
(workload = FV, the sum of frontier out-degrees).  Backward-pull kernels scan
the parent list of each unvisited candidate only until the first parent in the
frontier is found (workload = edges examined before the first hit, or the full
list when there is none) — this early exit is the whole point of
direction-optimized BFS.

The ``batched_*`` variants are the MS-BFS-style kernels of the batched engine
path: the per-vertex frontier membership is a B-wide lane bitset
(:class:`repro.utils.bitmask.BatchBitmask` rows), and one sweep propagates all
B concurrent traversals at once by OR-combining the source rows' lane words
into the destinations.  A batched backward pull has no early exit — every lane
must collect its own parents — so its workload is the full candidate parent
lists, which is also what makes the forward/backward trade-off different from
the single-source case.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "KernelOutput",
    "BatchKernelOutput",
    "forward_visit",
    "weighted_forward_visit",
    "contrib_visit",
    "backward_visit",
    "frontier_workload",
    "filter_frontier",
    "batched_filter_frontier",
    "batched_forward_visit",
    "batched_backward_visit",
]


@dataclass
class KernelOutput:
    """Result of one visit kernel.

    Attributes
    ----------
    discovered:
        Destination ids discovered by this kernel.  For forward kernels these
        are raw gather outputs (duplicates possible, already-visited vertices
        possible — filtering happens at the destination, as on a real GPU
        where the atomicMin on the label does the filtering).  For backward
        kernels these are the candidate rows that found a parent (each appears
        exactly once).
    edges_examined:
        Exact number of edges the kernel touched; feeds the performance model.
    backward:
        Whether the kernel ran in backward-pull mode (pulls are cheaper per
        edge in the hardware model).
    sources:
        Per entry of ``discovered``, the id of the vertex that discovered it:
        the frontier row for forward kernels, the first frontier parent hit by
        the early-exit scan for backward kernels.  Frontier programs that
        attach a per-discovery value (parent pointers, component labels) read
        this; level-style programs may ignore it.
    weights:
        Per entry of ``discovered``, the ``float64`` weight of the traversed
        edge.  Populated only by :func:`weighted_forward_visit` (SSSP-style
        programs whose ``needs_weights`` attribute is set); ``None``
        otherwise.
    values:
        Per entry of ``discovered``, an ``int64`` value carried along the
        edge.  Populated only by :func:`contrib_visit` (PageRank-style
        contribution scatter); ``None`` otherwise.
    """

    discovered: np.ndarray
    edges_examined: int
    backward: bool
    sources: np.ndarray = None  # type: ignore[assignment]
    weights: np.ndarray | None = None
    values: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.sources is None:
            self.sources = np.zeros(0, dtype=np.int64)


def frontier_workload(csr: CSRGraph, frontier: np.ndarray) -> int:
    """Forward workload FV: total out-degree of the frontier in this subgraph."""
    return csr.frontier_workload(frontier)


def filter_frontier(frontier: np.ndarray, out_degrees: np.ndarray) -> np.ndarray:
    """Previsit filtering: deduplicate and drop zero-out-degree vertices.

    This mirrors the paper's previsit kernels, which "mark level labels for
    input vertices, filter out duplicates and zero-out-degree vertices, and
    form the queues of vertices to be visited by the visit kernels".

    Dense frontiers deduplicate through a scatter into a boolean flag array
    (one linear pass, like the GPU previsit bitmap) instead of sorting/hashing
    with ``np.unique``; tiny frontiers keep the ``np.unique`` path, where the
    flag array's O(num_rows) cost would dominate.  Both return the same
    sorted, unique, positive-degree queue.
    """
    frontier = np.asarray(frontier, dtype=np.int64).ravel()
    if frontier.size == 0:
        return frontier
    if frontier.size * 16 >= out_degrees.size:
        flags = np.zeros(out_degrees.size, dtype=bool)
        flags[frontier] = True
        flags &= out_degrees > 0
        return np.flatnonzero(flags)
    unique = np.unique(frontier)
    return unique[out_degrees[unique] > 0]


def forward_visit(csr: CSRGraph, frontier: np.ndarray) -> KernelOutput:
    """Forward-push visit: gather all neighbours of the frontier rows.

    Parameters
    ----------
    csr:
        The subgraph to traverse (rows = frontier id space).
    frontier:
        Row ids to expand (assumed pre-filtered by :func:`filter_frontier`).

    Returns
    -------
    KernelOutput
        ``discovered`` holds the raw destination ids (column id space of the
        subgraph); ``edges_examined`` equals the frontier's total out-degree.
    """
    frontier = np.asarray(frontier, dtype=np.int64).ravel()
    if frontier.size == 0:
        return KernelOutput(np.zeros(0, dtype=np.int64), 0, backward=False)
    rows, destinations = csr.gather_neighbors(frontier)
    return KernelOutput(
        discovered=np.asarray(destinations, dtype=np.int64),
        edges_examined=int(destinations.size),
        backward=False,
        sources=np.asarray(rows, dtype=np.int64),
    )


def weighted_forward_visit(csr: CSRGraph, frontier: np.ndarray) -> KernelOutput:
    """Forward-push visit that also gathers the traversed edges' weights.

    The weighted twin of :func:`forward_visit` for value-propagation programs
    (SSSP relaxation): same discovered set, same workload accounting, plus a
    ``weights`` array parallel to ``discovered``.  Requires the subgraph to
    carry ``edge_weights``.
    """
    frontier = np.asarray(frontier, dtype=np.int64).ravel()
    if frontier.size == 0:
        return KernelOutput(np.zeros(0, dtype=np.int64), 0, backward=False)
    rows, destinations, weights = csr.gather_neighbors_with_weights(frontier)
    return KernelOutput(
        discovered=np.asarray(destinations, dtype=np.int64),
        edges_examined=int(destinations.size),
        backward=False,
        sources=np.asarray(rows, dtype=np.int64),
        weights=weights,
    )


def contrib_visit(csr: CSRGraph, rows: np.ndarray, row_values: np.ndarray) -> KernelOutput:
    """Contribution scatter: push one ``int64`` value per row to its neighbours.

    The PageRank work-horse: every active row ``rows[i]`` sends
    ``row_values[i]`` along each of its out-edges.  The receiver folds the
    per-edge values with an order-free integer add, so the result is
    bit-identical regardless of which backend, provider, or storage mode ran
    the scatter.

    Returns
    -------
    KernelOutput
        ``discovered`` holds the destination ids, ``values`` the per-edge
        contribution (the emitting row's value repeated over its out-degree),
        and ``edges_examined`` the total out-degree of the active rows.
    """
    rows = np.asarray(rows, dtype=np.int64).ravel()
    row_values = np.asarray(row_values, dtype=np.int64).ravel()
    if rows.size != row_values.size:
        raise ValueError("row_values must be parallel to rows")
    if rows.size == 0:
        return KernelOutput(np.zeros(0, dtype=np.int64), 0, backward=False)
    srcs, destinations = csr.gather_neighbors(rows)
    if destinations.size == 0:
        return KernelOutput(np.zeros(0, dtype=np.int64), 0, backward=False)
    # gather_neighbors emits edges grouped by row in input order, so the
    # per-edge value is the row's value repeated over its out-degree.
    lengths = csr.row_offsets[rows + 1] - csr.row_offsets[rows]
    values = np.repeat(row_values, lengths)
    return KernelOutput(
        discovered=np.asarray(destinations, dtype=np.int64),
        edges_examined=int(destinations.size),
        backward=False,
        sources=np.asarray(srcs, dtype=np.int64),
        values=values,
    )


def backward_visit(
    reverse_csr: CSRGraph,
    candidates: np.ndarray,
    parent_in_frontier: np.ndarray,
) -> KernelOutput:
    """Backward-pull visit with early exit and exact workload counting.

    Parameters
    ----------
    reverse_csr:
        CSR whose rows are the *unvisited candidates* and whose columns are
        their potential parents (i.e. the reverse of the subgraph being
        traversed; for the locally-symmetric dd subgraph it is the subgraph
        itself).
    candidates:
        Row ids of unvisited vertices to test.
    parent_in_frontier:
        Boolean array over the column id space: ``True`` where the potential
        parent was newly visited in the previous super-step.

    Returns
    -------
    KernelOutput
        ``discovered`` lists the candidate rows that found a parent in the
        frontier (each exactly once); ``edges_examined`` counts, per
        candidate, the parents scanned up to and including the first hit (or
        the whole list when no parent is in the frontier), which is the exact
        workload of a serial early-exit scan — the quantity the paper's BV
        formula estimates.
    """
    candidates = np.asarray(candidates, dtype=np.int64).ravel()
    parent_in_frontier = np.asarray(parent_in_frontier, dtype=bool)
    if candidates.size == 0:
        return KernelOutput(np.zeros(0, dtype=np.int64), 0, backward=True)

    rows, parents = reverse_csr.gather_neighbors(candidates)
    if parents.size == 0:
        return KernelOutput(np.zeros(0, dtype=np.int64), 0, backward=True)

    hits = parent_in_frontier[np.asarray(parents, dtype=np.int64)]

    # Segment bookkeeping: edges are emitted grouped by candidate (gather
    # preserves row order).  For each candidate segment we need (a) whether a
    # hit exists and (b) the position of the first hit, to count the
    # early-exit workload.
    all_lengths = reverse_csr.row_offsets[candidates + 1] - reverse_csr.row_offsets[candidates]
    nonzero_mask = all_lengths > 0
    seg_lengths = all_lengths[nonzero_mask]
    seg_candidates = candidates[nonzero_mask]
    seg_starts = np.zeros(seg_lengths.size, dtype=np.int64)
    np.cumsum(seg_lengths[:-1], out=seg_starts[1:])

    # First-hit position per segment: a segmented minimum over the within-
    # segment offsets of hit edges, with non-hits masked to a sentinel larger
    # than any offset.  One reduceat pass over the edges — no per-hit sort.
    no_hit = np.iinfo(np.int64).max
    within = np.arange(hits.size, dtype=np.int64) - np.repeat(seg_starts, seg_lengths)
    first_hit = np.minimum.reduceat(np.where(hits, within, no_hit), seg_starts)

    found = first_hit != no_hit
    examined = np.where(found, first_hit, seg_lengths - 1) + 1
    discovered = seg_candidates[found]
    # The early-exit scan stops at the first frontier parent; that parent is
    # the discovering source of the candidate (the edge at offset first_hit
    # within the candidate's segment).
    hit_parents = np.asarray(parents, dtype=np.int64)[seg_starts[found] + first_hit[found]]
    return KernelOutput(
        discovered=discovered.astype(np.int64),
        edges_examined=int(examined.sum()),
        backward=True,
        sources=hit_parents,
    )


# --------------------------------------------------------------------------- #
# Batched (MS-BFS style) kernels
# --------------------------------------------------------------------------- #
@dataclass
class BatchKernelOutput:
    """Result of one batched visit kernel.

    Attributes
    ----------
    discovered:
        Unique destination ids this kernel proposed updates for (sorted).
    words:
        Per entry of ``discovered``, the OR-combined ``uint64`` lane words of
        every source that reached it this super-step — shape
        ``(len(discovered), nwords)``.  Destination-side filtering (dropping
        lanes already visited) happens at the state update, as on a real GPU
        where an atomicOr on the lane word does the filtering.
    edges_examined:
        Exact number of edges the kernel touched; feeds the performance model.
    backward:
        Whether the kernel ran in backward-pull mode.
    """

    discovered: np.ndarray
    words: np.ndarray
    edges_examined: int
    backward: bool


def _empty_batch_output(nwords: int, backward: bool) -> BatchKernelOutput:
    return BatchKernelOutput(
        discovered=np.zeros(0, dtype=np.int64),
        words=np.zeros((0, nwords), dtype=np.uint64),
        edges_examined=0,
        backward=backward,
    )


def batched_filter_frontier(
    rows: np.ndarray, words: np.ndarray, out_degrees: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Previsit filtering for a batched frontier: drop zero-out-degree rows.

    ``rows`` are already unique (they come from
    :meth:`repro.utils.bitmask.BatchBitmask.nonzero_rows`), so unlike the
    single-source :func:`filter_frontier` no deduplication is needed — only
    the zero-degree drop, applied to the rows and their lane words in step.
    """
    rows = np.asarray(rows, dtype=np.int64).ravel()
    words = np.asarray(words, dtype=np.uint64)
    if rows.size == 0:
        return rows, words
    keep = out_degrees[rows] > 0
    return rows[keep], words[keep]


def batched_forward_visit(
    csr: CSRGraph, frontier_rows: np.ndarray, frontier_words: np.ndarray
) -> BatchKernelOutput:
    """Batched forward push: propagate every lane of the frontier at once.

    Parameters
    ----------
    csr:
        The subgraph to traverse (rows = frontier id space).
    frontier_rows:
        Sorted unique row ids to expand (pre-filtered by
        :func:`batched_filter_frontier`).
    frontier_words:
        Lane words parallel to ``frontier_rows`` (``(len, nwords)`` uint64).

    Returns
    -------
    BatchKernelOutput
        One entry per unique destination with the OR of the lane words of all
        frontier rows that reach it; ``edges_examined`` equals the frontier's
        total out-degree, exactly as in the single-source forward push — the
        batch amortizes the sweep, it does not change the edge workload.
    """
    frontier_rows = np.asarray(frontier_rows, dtype=np.int64).ravel()
    frontier_words = np.asarray(frontier_words, dtype=np.uint64)
    nwords = frontier_words.shape[1] if frontier_words.ndim == 2 else 1
    if frontier_rows.size == 0:
        return _empty_batch_output(nwords, backward=False)
    rows, destinations = csr.gather_neighbors(frontier_rows)
    if destinations.size == 0:
        return _empty_batch_output(nwords, backward=False)
    # Lane word of the discovering source, per edge: frontier_rows is sorted
    # unique, so the edge's position in it is a binary search.
    edge_words = frontier_words[
        np.searchsorted(frontier_rows, np.asarray(rows, dtype=np.int64))
    ]
    unique, inverse = np.unique(np.asarray(destinations, dtype=np.int64), return_inverse=True)
    out_words = np.zeros((unique.size, nwords), dtype=np.uint64)
    np.bitwise_or.at(out_words, inverse, edge_words)
    return BatchKernelOutput(
        discovered=unique,
        words=out_words,
        edges_examined=int(destinations.size),
        backward=False,
    )


def batched_backward_visit(
    reverse_csr: CSRGraph,
    candidates: np.ndarray,
    parent_words: np.ndarray,
    wanted_words: np.ndarray,
) -> BatchKernelOutput:
    """Batched backward pull: each candidate collects all its parents' lanes.

    Parameters
    ----------
    reverse_csr:
        CSR whose rows are the candidates and whose columns are their
        potential parents.
    candidates:
        Sorted unique row ids still missing at least one lane.
    parent_words:
        Dense ``(num_cols, nwords)`` array of the previous super-step's
        frontier lane words over the parent id space (zero rows = not in the
        frontier).
    wanted_words:
        Per candidate, the lanes it still wants (``~visited``), parallel to
        ``candidates``; pulled lanes outside this set are dropped here, the
        free local filter of the batched pull.

    Returns
    -------
    BatchKernelOutput
        Candidates that gained at least one wanted lane, with the gained
        words.  ``edges_examined`` counts the *full* parent lists: a batched
        pull cannot early-exit because every lane needs its own first parent,
        so its workload is the whole candidate neighbourhood — the price that
        shifts the direction trade-off relative to single-source DOBFS.
    """
    candidates = np.asarray(candidates, dtype=np.int64).ravel()
    parent_words = np.asarray(parent_words, dtype=np.uint64)
    wanted_words = np.asarray(wanted_words, dtype=np.uint64)
    nwords = parent_words.shape[1] if parent_words.ndim == 2 else 1
    if candidates.size == 0:
        return _empty_batch_output(nwords, backward=True)
    rows, parents = reverse_csr.gather_neighbors(candidates)
    if parents.size == 0:
        return _empty_batch_output(nwords, backward=True)

    all_lengths = (
        reverse_csr.row_offsets[candidates + 1] - reverse_csr.row_offsets[candidates]
    )
    nonzero_mask = all_lengths > 0
    seg_lengths = all_lengths[nonzero_mask]
    seg_candidates = candidates[nonzero_mask]
    seg_starts = np.zeros(seg_lengths.size, dtype=np.int64)
    np.cumsum(seg_lengths[:-1], out=seg_starts[1:])

    pulled = np.bitwise_or.reduceat(
        parent_words[np.asarray(parents, dtype=np.int64)], seg_starts, axis=0
    )
    gained = pulled & wanted_words[nonzero_mask]
    found = gained.any(axis=1)
    return BatchKernelOutput(
        discovered=seg_candidates[found],
        words=gained[found],
        edges_examined=int(parents.size),
        backward=True,
    )
