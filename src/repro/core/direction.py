"""Per-subgraph direction optimization (paper §IV-B).

The traversal direction of the dd, dn and nd visit kernels is decided every
super-step by comparing the *forward* workload FV (sum of the frontier's
neighbour-list lengths in that subgraph) against an *estimate* of the
*backward* workload BV.  The paper derives

.. math::

    BV = \\sum_{u \\in U} \\frac{1 - (1-a)^{od(u)}}{a} \\approx |U| \\frac{q+s}{q}

where ``U`` is the set of unvisited sources of the reversed subgraph, ``q``
the input frontier length, ``s`` the number of unvisited sources of the
forward subgraph and ``a = q / (q + s)`` the probability that a potential
parent was newly visited.

The switching rule, with per-subgraph factors:

* forward → backward when ``FV > factor0 · BV``;
* backward → forward when ``FV < factor1 · BV``;
* otherwise keep the current direction.

Each DO-capable subgraph keeps its own :class:`DirectionState`, so the three
kernels can switch at their individually optimal points (nn never uses DO).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.options import DirectionFactors

__all__ = ["DirectionState", "estimate_backward_workload"]


def estimate_backward_workload(num_unvisited_reverse_sources: int, q: int, s: int) -> float:
    """The paper's BV estimate ``|U| (q + s) / q``.

    Parameters
    ----------
    num_unvisited_reverse_sources:
        ``|U|`` — unvisited vertices that would pull in the backward pass.
    q:
        Input frontier length (newly-visited potential parents).
    s:
        Number of still-unvisited forward sources.

    Returns
    -------
    float
        Estimated number of edges a backward-pull pass would examine.  When
        the frontier is empty the backward pass cannot discover anything, so
        the estimate is ``+inf`` to force the (free) forward direction.
    """
    if num_unvisited_reverse_sources < 0 or q < 0 or s < 0:
        raise ValueError("workload estimate inputs must be non-negative")
    if q == 0:
        return float("inf")
    return num_unvisited_reverse_sources * (q + s) / q


@dataclass
class DirectionState:
    """Direction-switching state of one DO-capable subgraph."""

    factors: DirectionFactors
    enabled: bool = True
    backward: bool = False
    switches: int = 0
    history: list = field(default_factory=list)

    def decide(self, forward_workload: float, backward_workload: float) -> bool:
        """Update and return the direction for the next visit.

        Returns ``True`` when the kernel should run backward-pull.
        """
        if not self.enabled:
            self.history.append(False)
            return False
        if forward_workload < 0 or backward_workload < 0:
            raise ValueError("workloads must be non-negative")
        previous = self.backward
        if not self.backward:
            if forward_workload > self.factors.factor0 * backward_workload:
                self.backward = True
        else:
            if forward_workload < self.factors.factor1 * backward_workload:
                self.backward = False
        if self.backward != previous:
            self.switches += 1
        self.history.append(self.backward)
        return self.backward

    def reset(self) -> None:
        """Return to the initial forward direction (used between BFS runs)."""
        self.backward = False
        self.switches = 0
        self.history.clear()
