"""Graph500-style BFS producing a parent tree.

The paper's implementation "outputs the hop-distances from the source vertex,
instead of the BFS tree required by Graph500"; this program closes that gap.
Each discovered vertex stores the *global id of the vertex that discovered
it*, which requires two things level-BFS does not need:

* the normal-vertex exchange carries an 8-byte parent payload next to each
  4-byte local slot id (``payload_exchange``), and
* the delegate channel reduces 64-bit parent values instead of 1-bit masks
  (``delegate_channel = "values"``), since a delegate's parent cannot be
  reconstructed from the iteration number alone.

Direction optimization stays sound: the backward-pull kernels report the
exact frontier parent their early-exit scan hit.  Trees are deterministic:
when several parents claim one vertex through the same channel in a
super-step the smallest global id wins, and cross-channel ties resolve by
the engine's fixed update order (local dn discoveries before
exchange-delivered ones).
"""

from __future__ import annotations

import numpy as np  # noqa: F401  (np.ndarray in hook signatures)

from repro.core.programs.base import (
    FrontierProgram,
    ProgramInit,
    VisitContext,
    single_source_init,
)
from repro.core.results import ParentTreeResult
from repro.partition.subgraphs import PartitionedGraph

__all__ = ["BFSParents"]


class BFSParents(FrontierProgram):
    """BFS from one source; values are parent pointers (source parents itself)."""

    name = "bfs-parents"
    payload_exchange = True
    delegate_channel = "values"
    direction_optimized_ok = True

    def __init__(self, source: int) -> None:
        self.source = int(source)

    def init_state(self, graph: PartitionedGraph) -> ProgramInit:
        # Graph500 convention: the source is its own parent.
        return single_source_init(graph, self.source, value=self.source)

    def visit_value(self, ctx: VisitContext) -> np.ndarray:
        if ctx.source_ids is None:
            raise RuntimeError(
                "BFSParents needs discovering-source ids; the engine must run it "
                "with payload support"
            )
        return ctx.source_ids

    def make_result(self, values: np.ndarray, base: dict) -> ParentTreeResult:
        return ParentTreeResult(source=self.source, parents=values, **base)
