"""K-hop reachability: BFS truncated after a fixed number of super-steps.

The workhorse of "friends of friends" style queries: identical to
:class:`repro.core.programs.BFSLevels` in every mechanism (visit-once, mask
channel, direction optimization), but the engine stops after ``max_hops``
levels even though the frontier may be non-empty, so the cost scales with the
neighbourhood size instead of the component size.
"""

from __future__ import annotations

import numpy as np

from repro.core.programs.bfs_levels import BFSLevels
from repro.core.results import ReachabilityResult

__all__ = ["KHopReachability"]


class KHopReachability(BFSLevels):
    """Distances from the source, capped at ``max_hops`` levels.

    ``max_hops=0`` is legal and degenerate: the result covers only the source
    and, having run zero super-steps, carries no modeled time (``summary()``
    reports a 0.0 rate; ``teps()`` raises as for any zero-time run).
    """

    name = "k-hop"

    def __init__(self, source: int, max_hops: int) -> None:
        super().__init__(source)
        if max_hops < 0:
            raise ValueError(f"max_hops must be >= 0, got {max_hops}")
        self.max_levels = int(max_hops)

    def make_result(self, values: np.ndarray, base: dict) -> ReachabilityResult:
        return ReachabilityResult(
            source=self.source,
            max_hops=self.max_levels,
            distances=values,
            **base,
        )
