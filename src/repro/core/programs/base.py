"""The frontier-program protocol: what a traversal *means*.

The degree-separated engine (:class:`repro.core.engine.TraversalEngine`) owns
the mechanics every algorithm shares — per-subgraph direction optimization,
the nn point-to-point exchange, the delegate reductions, the performance
model.  What a discovered vertex *means* is delegated to a
:class:`FrontierProgram` through five hooks, in the spirit of Gunrock's
advance/filter operator decomposition:

``init_state``
    Seed the per-vertex values and the initial frontiers.
``visit_value``
    The value a kernel's discoveries propose for their destinations (the hop
    level, the discovering parent, a component label, …).
``accept``
    Which proposed values beat the destination's current value (visit-once
    for BFS-style programs, monotone improvement for label propagation).
``merge_remote``
    Combine duplicate proposals for the same vertex arriving from several
    sources or GPUs.
``make_result``
    Wrap the final gathered values into the algorithm's result type.

Class-level attributes describe what the program needs from the engine: a
per-discovery payload on the nn exchange (``payload_exchange``), a value
reduction instead of the 1-bit visited masks on the delegate channel
(``delegate_channel``) and whether backward-pull direction optimization is
meaningful (``direction_optimized_ok``).  Whether already-valued vertices
may be updated again is entirely the ``accept`` hook's decision — the
default is visit-once; label-propagation programs accept any improvement.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.core.state import UNVISITED
from repro.partition.subgraphs import PartitionedGraph

__all__ = ["ProgramInit", "VisitContext", "FrontierProgram", "single_source_init"]

#: Sentinel for "no proposal" in delegate value reductions (larger than any
#: vertex id or level, so ``np.minimum`` treats it as the identity).
COMBINE_IDENTITY = np.int64(np.iinfo(np.int64).max)


@dataclass
class ProgramInit:
    """Initial traversal state produced by :meth:`FrontierProgram.init_state`."""

    #: Per GPU, the int64 value of every local normal slot (-1 = unset).
    normal_values: list[np.ndarray]
    #: Replicated int64 value per delegate (-1 = unset).
    delegate_values: np.ndarray
    #: Per GPU, local slots forming the initial normal frontier.
    normal_frontiers: list[np.ndarray]
    #: Delegate ids forming the initial (shared) delegate frontier.
    delegate_frontier: np.ndarray


def single_source_init(graph: PartitionedGraph, source: int, value: int) -> ProgramInit:
    """Seed a single-source traversal: every vertex unset except ``source``.

    The source receives ``value`` and forms the initial frontier on whichever
    side (delegate or local normal slot) the degree separation placed it —
    the shared starting point of the BFS-style programs.
    """
    if not 0 <= source < graph.num_vertices:
        raise ValueError(f"source {source} out of range [0, {graph.num_vertices})")
    d = graph.num_delegates
    init = ProgramInit(
        normal_values=[
            np.full(gpu.num_local, UNVISITED, dtype=np.int64) for gpu in graph.gpus
        ],
        delegate_values=np.full(d, UNVISITED, dtype=np.int64),
        normal_frontiers=[np.zeros(0, dtype=np.int64) for _ in graph.gpus],
        delegate_frontier=np.zeros(0, dtype=np.int64),
    )
    delegate_id = int(graph.separation.delegate_id_of[source])
    if delegate_id >= 0:
        init.delegate_values[delegate_id] = value
        init.delegate_frontier = np.asarray([delegate_id], dtype=np.int64)
    else:
        owner = int(graph.layout.flat_gpu_of(source))
        slot = int(graph.layout.local_index_of(source))
        init.normal_values[owner][slot] = value
        init.normal_frontiers[owner] = np.asarray([slot], dtype=np.int64)
    return init


@dataclass
class VisitContext:
    """What one visit kernel discovered, handed to :meth:`visit_value`.

    ``discovered`` ids live in the kernel's destination space (global vertex
    ids for nn, delegate ids for nd/dd, local slots for dn and for received
    exchange traffic); the engine handles the space conversions.  The parallel
    ``source_ids`` / ``source_values`` arrays are only populated for programs
    that declare they need them (``payload_exchange`` or a ``values`` delegate
    channel); level-style programs ignore them.
    """

    #: Which kernel produced the discoveries: "nn", "nd", "dn", "dd", or
    #: "recv" for updates arriving through the normal-vertex exchange.
    kernel: str
    #: Flat GPU index that ran the kernel; for "recv" contexts, the
    #: destination GPU whose inbox is being applied.
    gpu: int
    #: Super-step number (1-based; the source sits at level 0).
    level: int
    #: Whether the kernel ran backward-pull.
    backward: bool
    #: Destination ids discovered (kernel destination id space).
    discovered: np.ndarray
    #: Global vertex id of the discovering source, per entry of ``discovered``.
    source_ids: np.ndarray | None = None
    #: Current program value of the discovering source, per entry.
    source_values: np.ndarray | None = None
    #: Weight of the traversed edge, per entry — populated only for programs
    #: declaring :attr:`FrontierProgram.needs_weights` on forward kernels
    #: ("recv" contexts never carry weights: weighted programs exchange
    #: payloads, so received values are already folded).
    edge_weights: np.ndarray | None = None


class FrontierProgram(ABC):
    """One traversal algorithm expressed over the degree-separated engine.

    Subclasses override the hooks and tune the class attributes; see the
    module docstring for the contract and
    :mod:`repro.core.programs.bfs_levels` for the canonical example.
    """

    #: Short name used in result summaries and CLI output.
    name: str = "traversal"
    #: Whether the nn exchange must carry a per-discovery value payload.
    payload_exchange: bool = False
    #: "mask": delegate updates are 1-bit visited flags OR-reduced as in the
    #: paper; "values": delegate updates carry int64 values combined with
    #: :attr:`combine` (64x the mask volume — the engine charges it).
    delegate_channel: str = "mask"
    #: Whether backward-pull direction optimization is sound for this program
    #: (requires visit-once semantics: any frontier parent is as good as any
    #: other).
    direction_optimized_ok: bool = True
    #: Stop after this many super-steps even if the frontier is non-empty
    #: (``None`` = run to fixpoint).
    max_levels: int | None = None
    #: Whether forward visits must gather the traversed edges' weights into
    #: :attr:`VisitContext.edge_weights` (SSSP-style relaxations).  Requires
    #: the partitioned graph to carry ``edge_weights`` and implies
    #: forward-only traversal (``direction_optimized_ok = False``) — a
    #: backward pull's early exit cannot pick the lightest parent edge.
    needs_weights: bool = False
    #: Binary ufunc merging duplicate proposals for one vertex.
    combine = np.minimum
    #: Neutral element of :attr:`combine` for dense proposal arrays.
    combine_identity: np.int64 = COMBINE_IDENTITY

    # ------------------------------------------------------------------ #
    # Hooks
    # ------------------------------------------------------------------ #
    @abstractmethod
    def init_state(self, graph: PartitionedGraph) -> ProgramInit:
        """Seed per-vertex values and the initial frontiers."""

    @abstractmethod
    def visit_value(self, ctx: VisitContext) -> np.ndarray:
        """Value proposed for each entry of ``ctx.discovered`` (int64)."""

    def accept(self, current: np.ndarray, proposed: np.ndarray) -> np.ndarray:
        """Boolean mask of proposals that beat the current values.

        The default is visit-once: only vertices with no value yet accept.
        """
        return current == UNVISITED

    def merge_remote(
        self, ids: np.ndarray, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Combine duplicate proposals for the same vertex id.

        Returns deduplicated ids (sorted) with one combined value each; the
        default keeps the :attr:`combine` of all proposals (e.g. the smallest
        parent id), which is also what a real GPU's atomicMin performs.
        """
        ids = np.asarray(ids, dtype=np.int64).ravel()
        values = np.asarray(values, dtype=np.int64).ravel()
        if ids.size == 0:
            return ids, values
        unique, inverse = np.unique(ids, return_inverse=True)
        if unique.size == ids.size:
            return unique, values[np.argsort(ids, kind="stable")]
        merged = np.full(unique.size, self.combine_identity, dtype=np.int64)
        self.combine.at(merged, inverse, values)
        return unique, merged

    @abstractmethod
    def make_result(self, values: np.ndarray, base: dict):
        """Wrap the final global value array into the result type.

        ``base`` holds the engine-supplied constructor kwargs every
        :class:`repro.core.results.TraversalResult` shares (iterations,
        records, timing, comm_stats, total_edges_examined,
        num_directed_edges).
        """

    # ------------------------------------------------------------------ #
    # Mask-channel support
    # ------------------------------------------------------------------ #
    def level_value(self, level: int) -> int:
        """Value assigned to delegates discovered through the mask channel.

        Mask-channel programs carry no payload, so a fresh delegate's value
        must be computable from the super-step number alone; the default (the
        level itself) suits level-style programs.
        """
        return level

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        attrs = ", ".join(
            f"{k}={v!r}" for k, v in sorted(vars(self).items()) if not k.startswith("_")
        )
        return f"{type(self).__name__}({attrs})"
