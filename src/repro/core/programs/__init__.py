"""Frontier programs: traversal algorithms over the degree-separated engine.

A :class:`FrontierProgram` captures what a traversal *means* — the value a
discovered vertex stores, when a proposal beats the current value, how
duplicate proposals merge — while :class:`repro.core.engine.TraversalEngine`
owns the mechanics every algorithm shares (four-subgraph kernels, direction
optimization, the exchange and reduction channels, the performance model).

Shipped programs
----------------
:class:`BFSLevels`
    The paper's algorithm: hop distances from one source (visit-once, 1-bit
    delegate masks, full direction optimization).
:class:`BFSParents`
    Graph500-style parent tree; parent payloads ride the normal-vertex
    exchange and a 64-bit min-reduction replaces the delegate masks.
:class:`ConnectedComponents`
    Min-label propagation to a fixpoint over the (symmetric) edges.
:class:`KHopReachability`
    BFS truncated after ``max_hops`` super-steps.
:class:`BatchedBFSLevels` / :class:`BatchedReachability`
    MS-BFS style batches: B sources share one frontier sweep through
    :meth:`repro.core.engine.TraversalEngine.run_batch`, with per-lane
    answers bit-identical to the sequential programs (the serving path's
    workhorse; see :mod:`repro.core.programs.batched`).

Writing your own program means subclassing :class:`FrontierProgram` and
implementing ``init_state`` / ``visit_value`` / ``make_result`` (plus
``accept`` / ``merge_remote`` when the defaults don't fit); see
:mod:`repro.core.programs.base` for the full contract.
"""

from repro.core.programs.base import FrontierProgram, ProgramInit, VisitContext
from repro.core.programs.batched import (
    BatchedBFSLevels,
    BatchedFrontierProgram,
    BatchedReachability,
)
from repro.core.programs.bfs_levels import BFSLevels
from repro.core.programs.bfs_parents import BFSParents
from repro.core.programs.components import ConnectedComponents
from repro.core.programs.khop import KHopReachability

__all__ = [
    "FrontierProgram",
    "ProgramInit",
    "VisitContext",
    "BFSLevels",
    "BFSParents",
    "ConnectedComponents",
    "KHopReachability",
    "BatchedFrontierProgram",
    "BatchedBFSLevels",
    "BatchedReachability",
]
