"""Connected components by min-label propagation over undirected edges.

Every vertex starts labelled with its own global id and the whole graph forms
the initial frontier; each super-step, frontier vertices push their label to
their neighbours through the same four subgraph kernels BFS uses, and a
vertex that receives a smaller label adopts it and re-enters the frontier.
At the fixpoint every vertex holds the smallest vertex id of its (weakly)
connected component — the prepared edge lists are symmetric, so weak and
undirected components coincide.

Differences from the BFS-style programs, all expressed through the protocol:

* the ``accept`` hook takes any *smaller* label, so labelled vertices are
  revisited; the visit-once candidate machinery (and with it backward-pull
  direction optimization, which assumes "any frontier parent is final") is
  off via ``direction_optimized_ok``;
* both communication channels carry labels: an 8-byte payload on the
  normal-vertex exchange and a 64-bit min-reduction on the delegate channel.
"""

from __future__ import annotations

import numpy as np

from repro.core.programs.base import FrontierProgram, ProgramInit, VisitContext
from repro.core.results import ComponentsResult
from repro.core.state import UNVISITED
from repro.partition.subgraphs import PartitionedGraph

__all__ = ["ConnectedComponents"]


class ConnectedComponents(FrontierProgram):
    """Label propagation to a fixpoint; values are component labels."""

    name = "components"
    payload_exchange = True
    delegate_channel = "values"
    direction_optimized_ok = False

    def init_state(self, graph: PartitionedGraph) -> ProgramInit:
        normal_values = []
        normal_frontiers = []
        for gpu in graph.gpus:
            values = np.full(gpu.num_local, UNVISITED, dtype=np.int64)
            normal_slots = np.flatnonzero(gpu.local_is_normal).astype(np.int64)
            values[normal_slots] = gpu.global_ids_of_locals(normal_slots)
            normal_values.append(values)
            normal_frontiers.append(normal_slots)
        d = graph.num_delegates
        return ProgramInit(
            normal_values=normal_values,
            delegate_values=graph.delegate_vertices.astype(np.int64).copy(),
            normal_frontiers=normal_frontiers,
            delegate_frontier=np.arange(d, dtype=np.int64),
        )

    def visit_value(self, ctx: VisitContext) -> np.ndarray:
        if ctx.source_values is None:
            raise RuntimeError(
                "ConnectedComponents needs source labels; the engine must run it "
                "with payload support"
            )
        return ctx.source_values

    def accept(self, current: np.ndarray, proposed: np.ndarray) -> np.ndarray:
        return proposed < current

    def make_result(self, values: np.ndarray, base: dict) -> ComponentsResult:
        return ComponentsResult(labels=values, **base)
