"""Breadth-first search producing hop levels — the paper's algorithm.

This program reproduces the seed :class:`repro.core.engine.DistributedBFS`
behaviour exactly: visit-once semantics, 1-bit delegate masks, no payload on
the normal-vertex exchange, and full per-subgraph direction optimization.
Its per-vertex value is the hop distance from the source.
"""

from __future__ import annotations

import numpy as np

from repro.core.programs.base import (
    FrontierProgram,
    ProgramInit,
    VisitContext,
    single_source_init,
)
from repro.core.results import BFSResult
from repro.partition.subgraphs import PartitionedGraph

__all__ = ["BFSLevels"]


class BFSLevels(FrontierProgram):
    """Level-synchronous (DO)BFS from one source; values are hop distances."""

    name = "bfs"
    payload_exchange = False
    delegate_channel = "mask"
    direction_optimized_ok = True

    def __init__(self, source: int) -> None:
        self.source = int(source)

    def init_state(self, graph: PartitionedGraph) -> ProgramInit:
        return single_source_init(graph, self.source, value=0)

    def visit_value(self, ctx: VisitContext) -> np.ndarray:
        return np.full(ctx.discovered.size, ctx.level, dtype=np.int64)

    def make_result(self, values: np.ndarray, base: dict) -> BFSResult:
        return BFSResult(source=self.source, distances=values, **base)
