"""Batched (MS-BFS style) frontier programs: B sources, one frontier sweep.

The sequential engine answers one traversal per run; serving workloads want
*throughput*.  The classic fix — Then et al.'s multi-source BFS, a natural
extension of the paper's packed delegate bitmasks — runs a whole batch of B
sources through one level-synchronous sweep: every vertex carries a B-wide
lane bitset (:class:`repro.utils.bitmask.BatchBitmask` rows) recording which
sources have reached it, the visit kernels OR-propagate lane words instead of
marking single bits, the nn exchange ships (vertex, source-bitset) pairs, and
one delegate reduction of ``d x B`` bits serves the whole batch.

Because every lane advances in lock-step through the same level-synchronous
super-steps, each lane's answer is *bit-identical* to a sequential run from
that lane's source — the batch changes the execution schedule, never the
answers.  The engine entry point is
:meth:`repro.core.engine.TraversalEngine.run_batch`.

A :class:`BatchedFrontierProgram` is intentionally narrower than the
sequential :class:`repro.core.programs.FrontierProgram`: batched traversals
are visit-once, mask-channel, level-valued by construction (that is what
makes the lane-bitset representation exact), so the hooks reduce to seeding,
recording newly-visited (vertex, lanes) pairs per level, and wrapping the
result.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.results import BatchResult
from repro.core.state import UNVISITED
from repro.partition.subgraphs import PartitionedGraph

__all__ = ["BatchedFrontierProgram", "BatchedBFSLevels", "BatchedReachability"]


class BatchedFrontierProgram(ABC):
    """One batch of B single-source traversals sharing a frontier sweep.

    Parameters
    ----------
    sources:
        One source vertex per batch lane.  Duplicates are legal (lanes are
        independent) but wasteful; the serving layer deduplicates upstream.
    """

    #: Short name used in result summaries.
    name: str = "batched"
    #: Stop after this many super-steps (``None`` = run to fixpoint).
    max_levels: int | None = None

    def __init__(self, sources) -> None:
        self.sources = [int(s) for s in np.asarray(sources, dtype=np.int64).ravel()]
        if not self.sources:
            raise ValueError("a batched program needs at least one source")

    @property
    def width(self) -> int:
        """Batch width B: one lane per source."""
        return len(self.sources)

    # ------------------------------------------------------------------ #
    # Hooks
    # ------------------------------------------------------------------ #
    def begin(self, graph: PartitionedGraph) -> None:
        """Allocate the per-lane answer arrays and record the sources (level 0)."""
        for source in self.sources:
            if not 0 <= source < graph.num_vertices:
                raise ValueError(
                    f"source {source} out of range [0, {graph.num_vertices})"
                )
        self._levels = np.full(
            (self.width, graph.num_vertices), UNVISITED, dtype=np.int64
        )
        self._levels[np.arange(self.width), self.sources] = 0

    def record(self, global_ids: np.ndarray, words: np.ndarray, level: int) -> None:
        """Record newly-visited vertices: lane ``l`` of ``words[i]`` set means
        ``global_ids[i]`` was first reached at ``level`` by source ``l``."""
        if global_ids.size == 0:
            return
        words = np.asarray(words, dtype=np.uint64)
        for lane in range(self.width):
            bit = (words[:, lane >> 6] >> np.uint64(lane & 63)) & np.uint64(1)
            hit = global_ids[bit.astype(bool)]
            if hit.size:
                self._levels[lane, hit] = level

    @abstractmethod
    def make_result(self, base: dict) -> BatchResult:
        """Wrap the per-lane level matrix into the batch result type."""


class BatchedBFSLevels(BatchedFrontierProgram):
    """MS-BFS: hop distances from B sources in one sweep.

    Lane ``l`` of the result's ``distances`` matrix is bit-identical to
    ``BFSLevels(source=sources[l])`` run sequentially.
    """

    name = "batched-bfs"

    def make_result(self, base: dict) -> BatchResult:
        return BatchResult(sources=list(self.sources), distances=self._levels, **base)


class BatchedReachability(BatchedFrontierProgram):
    """Batched k-hop reachability: B sources, distances capped at ``max_hops``.

    Lane ``l`` is bit-identical to ``KHopReachability(sources[l], max_hops)``.
    """

    name = "batched-k-hop"

    def __init__(self, sources, max_hops: int) -> None:
        super().__init__(sources)
        if max_hops < 0:
            raise ValueError(f"max_hops must be >= 0, got {max_hops}")
        self.max_levels = int(max_hops)

    def make_result(self, base: dict) -> BatchResult:
        return BatchResult(
            sources=list(self.sources),
            distances=self._levels,
            max_hops=self.max_levels,
            **base,
        )
