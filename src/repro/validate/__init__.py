"""Validation of BFS outputs.

The Graph500 benchmark prescribes a validation phase after every BFS; the
paper's implementation outputs hop distances rather than a parent tree, so the
checks here are the distance-based equivalents (every edge spans at most one
level, every visited vertex other than the source has a visited neighbour one
level closer, unreachable vertices stay unreachable), plus a direct comparison
against an independent serial oracle.
"""

from repro.validate.graph500 import (
    ValidationReport,
    validate_distances,
    validate_parent_tree,
)

__all__ = ["ValidationReport", "validate_distances", "validate_parent_tree"]
