"""Graph500-style validation of hop-distance outputs.

Given the input edge list, a source and a distance array, the checks are:

1. the source has distance 0 and non-source vertices have distance != 0;
2. every edge (u, v) with both endpoints visited satisfies
   ``|dist(u) - dist(v)| <= 1`` (no edge skips a level);
3. every visited vertex at distance k > 0 has at least one in-neighbour at
   distance k - 1 (a valid BFS parent exists);
4. no edge connects a visited and an unvisited vertex (reachability is
   closed), which for a symmetric graph also guarantees unreachable vertices
   are genuinely outside the source's component;
5. distances exactly match an independently computed reference when one is
   supplied.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.edgelist import EdgeList

__all__ = ["ValidationReport", "validate_distances"]


@dataclass
class ValidationReport:
    """Outcome of validating one BFS result."""

    valid: bool
    errors: list = field(default_factory=list)
    num_visited: int = 0
    depth: int = 0

    def raise_if_invalid(self) -> None:
        """Raise ``AssertionError`` with all collected problems if invalid."""
        if not self.valid:
            raise AssertionError("BFS validation failed:\n" + "\n".join(self.errors))


def validate_distances(
    edges: EdgeList,
    source: int,
    distances: np.ndarray,
    reference: np.ndarray | None = None,
    max_reported_errors: int = 10,
) -> ValidationReport:
    """Validate a hop-distance array against the rules in the module docstring.

    Parameters
    ----------
    edges:
        The traversed (symmetric) edge list.
    source:
        BFS source vertex.
    distances:
        Hop distances, ``-1`` for unreachable vertices.
    reference:
        Optional independently computed distances to compare against exactly.
    max_reported_errors:
        Cap on how many individual violations are recorded per rule.
    """
    distances = np.asarray(distances, dtype=np.int64)
    errors: list[str] = []

    if distances.shape != (edges.num_vertices,):
        errors.append(
            f"distance array has shape {distances.shape}, expected ({edges.num_vertices},)"
        )
        return ValidationReport(valid=False, errors=errors)

    visited = distances >= 0
    num_visited = int(np.count_nonzero(visited))
    depth = int(distances[visited].max()) if num_visited else 0

    # Rule 1: source level.
    if not 0 <= source < edges.num_vertices:
        errors.append(f"source {source} out of range")
    elif distances[source] != 0:
        errors.append(f"source {source} has distance {distances[source]}, expected 0")
    if num_visited and int(np.count_nonzero(distances == 0)) != 1:
        errors.append(
            f"{int(np.count_nonzero(distances == 0))} vertices have distance 0, expected exactly 1"
        )

    src_d = distances[edges.src]
    dst_d = distances[edges.dst]
    both_visited = (src_d >= 0) & (dst_d >= 0)

    # Rule 2: no edge skips a level.
    gap = np.abs(src_d[both_visited] - dst_d[both_visited])
    bad_gap = np.flatnonzero(gap > 1)
    if bad_gap.size:
        idx = np.flatnonzero(both_visited)[bad_gap[:max_reported_errors]]
        for i in idx:
            errors.append(
                f"edge ({edges.src[i]}, {edges.dst[i]}) spans levels "
                f"{distances[edges.src[i]]} -> {distances[edges.dst[i]]}"
            )

    # Rule 3: every visited non-source vertex has a parent one level closer.
    # Compute, per destination vertex, the minimum source distance over its
    # incoming edges among visited sources.
    min_parent = np.full(edges.num_vertices, np.iinfo(np.int64).max, dtype=np.int64)
    ok_edges = src_d >= 0
    if np.any(ok_edges):
        np.minimum.at(min_parent, edges.dst[ok_edges], src_d[ok_edges])
    needs_parent = visited.copy()
    if 0 <= source < edges.num_vertices:
        needs_parent[source] = False
    bad_parent = np.flatnonzero(
        needs_parent & (min_parent != distances - 1)
    )
    for v in bad_parent[:max_reported_errors]:
        errors.append(
            f"vertex {v} at distance {distances[v]} has best in-neighbour distance "
            f"{min_parent[v] if min_parent[v] != np.iinfo(np.int64).max else 'none'}"
        )

    # Rule 4: no edge crosses the visited/unvisited boundary.
    crossing = (src_d >= 0) != (dst_d >= 0)
    bad_cross = np.flatnonzero(crossing)
    for i in bad_cross[:max_reported_errors]:
        errors.append(
            f"edge ({edges.src[i]}, {edges.dst[i]}) connects visited and unvisited vertices"
        )

    # Rule 5: exact match against the reference.
    if reference is not None:
        reference = np.asarray(reference, dtype=np.int64)
        if reference.shape != distances.shape:
            errors.append("reference distance array has a different shape")
        else:
            mismatch = np.flatnonzero(reference != distances)
            for v in mismatch[:max_reported_errors]:
                errors.append(
                    f"vertex {v}: distance {distances[v]} != reference {reference[v]}"
                )
            if mismatch.size > max_reported_errors:
                errors.append(f"... and {mismatch.size - max_reported_errors} more mismatches")

    return ValidationReport(
        valid=not errors,
        errors=errors,
        num_visited=num_visited,
        depth=depth,
    )
