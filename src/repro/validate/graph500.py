"""Graph500-style validation of hop-distance outputs.

Given the input edge list, a source and a distance array, the checks are:

1. the source has distance 0 and non-source vertices have distance != 0;
2. every edge (u, v) with both endpoints visited satisfies
   ``|dist(u) - dist(v)| <= 1`` (no edge skips a level);
3. every visited vertex at distance k > 0 has at least one in-neighbour at
   distance k - 1 (a valid BFS parent exists);
4. no edge connects a visited and an unvisited vertex (reachability is
   closed), which for a symmetric graph also guarantees unreachable vertices
   are genuinely outside the source's component;
5. distances exactly match an independently computed reference when one is
   supplied.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.edgelist import EdgeList

__all__ = ["ValidationReport", "validate_distances", "validate_parent_tree"]


@dataclass
class ValidationReport:
    """Outcome of validating one BFS result."""

    valid: bool
    errors: list = field(default_factory=list)
    num_visited: int = 0
    depth: int = 0

    def raise_if_invalid(self) -> None:
        """Raise ``AssertionError`` with all collected problems if invalid."""
        if not self.valid:
            raise AssertionError("BFS validation failed:\n" + "\n".join(self.errors))


def validate_distances(
    edges: EdgeList,
    source: int,
    distances: np.ndarray,
    reference: np.ndarray | None = None,
    max_reported_errors: int = 10,
) -> ValidationReport:
    """Validate a hop-distance array against the rules in the module docstring.

    Parameters
    ----------
    edges:
        The traversed (symmetric) edge list.
    source:
        BFS source vertex.
    distances:
        Hop distances, ``-1`` for unreachable vertices.
    reference:
        Optional independently computed distances to compare against exactly.
    max_reported_errors:
        Cap on how many individual violations are recorded per rule.
    """
    distances = np.asarray(distances, dtype=np.int64)
    errors: list[str] = []

    if distances.shape != (edges.num_vertices,):
        errors.append(
            f"distance array has shape {distances.shape}, expected ({edges.num_vertices},)"
        )
        return ValidationReport(valid=False, errors=errors)

    visited = distances >= 0
    num_visited = int(np.count_nonzero(visited))
    depth = int(distances[visited].max()) if num_visited else 0

    # Rule 1: source level.
    if not 0 <= source < edges.num_vertices:
        errors.append(f"source {source} out of range")
    elif distances[source] != 0:
        errors.append(f"source {source} has distance {distances[source]}, expected 0")
    if num_visited and int(np.count_nonzero(distances == 0)) != 1:
        errors.append(
            f"{int(np.count_nonzero(distances == 0))} vertices have distance 0, expected exactly 1"
        )

    src_d = distances[edges.src]
    dst_d = distances[edges.dst]
    both_visited = (src_d >= 0) & (dst_d >= 0)

    # Rule 2: no edge skips a level.
    gap = np.abs(src_d[both_visited] - dst_d[both_visited])
    bad_gap = np.flatnonzero(gap > 1)
    if bad_gap.size:
        idx = np.flatnonzero(both_visited)[bad_gap[:max_reported_errors]]
        for i in idx:
            errors.append(
                f"edge ({edges.src[i]}, {edges.dst[i]}) spans levels "
                f"{distances[edges.src[i]]} -> {distances[edges.dst[i]]}"
            )

    # Rule 3: every visited non-source vertex has a parent one level closer.
    # Compute, per destination vertex, the minimum source distance over its
    # incoming edges among visited sources.
    min_parent = np.full(edges.num_vertices, np.iinfo(np.int64).max, dtype=np.int64)
    ok_edges = src_d >= 0
    if np.any(ok_edges):
        np.minimum.at(min_parent, edges.dst[ok_edges], src_d[ok_edges])
    needs_parent = visited.copy()
    if 0 <= source < edges.num_vertices:
        needs_parent[source] = False
    bad_parent = np.flatnonzero(
        needs_parent & (min_parent != distances - 1)
    )
    for v in bad_parent[:max_reported_errors]:
        errors.append(
            f"vertex {v} at distance {distances[v]} has best in-neighbour distance "
            f"{min_parent[v] if min_parent[v] != np.iinfo(np.int64).max else 'none'}"
        )

    # Rule 4: no edge crosses the visited/unvisited boundary.
    crossing = (src_d >= 0) != (dst_d >= 0)
    bad_cross = np.flatnonzero(crossing)
    for i in bad_cross[:max_reported_errors]:
        errors.append(
            f"edge ({edges.src[i]}, {edges.dst[i]}) connects visited and unvisited vertices"
        )

    # Rule 5: exact match against the reference.
    if reference is not None:
        reference = np.asarray(reference, dtype=np.int64)
        if reference.shape != distances.shape:
            errors.append("reference distance array has a different shape")
        else:
            mismatch = np.flatnonzero(reference != distances)
            for v in mismatch[:max_reported_errors]:
                errors.append(
                    f"vertex {v}: distance {distances[v]} != reference {reference[v]}"
                )
            if mismatch.size > max_reported_errors:
                errors.append(f"... and {mismatch.size - max_reported_errors} more mismatches")

    return ValidationReport(
        valid=not errors,
        errors=errors,
        num_visited=num_visited,
        depth=depth,
    )


def validate_parent_tree(
    edges: EdgeList,
    source: int,
    parents: np.ndarray,
    reference_distances: np.ndarray,
    max_reported_errors: int = 10,
) -> ValidationReport:
    """Validate a Graph500-style parent array against reference distances.

    The rules (Graph500 spec §"validation", adapted to the parent output):

    1. the source is its own parent;
    2. exactly the vertices the reference reaches appear in the tree;
    3. every tree edge ``(parents[v], v)`` is an edge of the graph;
    4. every non-source tree vertex's parent sits exactly one level closer
       to the source than the vertex itself.
    """
    parents = np.asarray(parents, dtype=np.int64)
    reference_distances = np.asarray(reference_distances, dtype=np.int64)
    errors: list[str] = []

    if parents.shape != (edges.num_vertices,):
        errors.append(
            f"parent array has shape {parents.shape}, expected ({edges.num_vertices},)"
        )
        return ValidationReport(valid=False, errors=errors)

    visited = parents >= 0
    num_visited = int(np.count_nonzero(visited))
    depth = int(reference_distances.max()) if reference_distances.size else 0

    # Rule 1: the source parents itself.
    if not 0 <= source < edges.num_vertices:
        errors.append(f"source {source} out of range")
    elif parents[source] != source:
        errors.append(f"source {source} has parent {parents[source]}, expected itself")

    # Rule 2: the tree covers exactly the reachable set.
    mismatch = np.flatnonzero(visited != (reference_distances >= 0))
    for v in mismatch[:max_reported_errors]:
        state = "in tree" if visited[v] else "missing from tree"
        errors.append(f"vertex {v} is {state} but the reference disagrees")

    children = np.flatnonzero(visited)
    children = children[children != source]
    tree_parents = parents[children]

    # Rule 3: tree edges exist in the graph (directed parent -> child).
    n = edges.num_vertices
    edge_keys = np.sort(edges.src.astype(np.int64) * n + edges.dst.astype(np.int64))
    child_keys = tree_parents * n + children
    pos = np.searchsorted(edge_keys, child_keys)
    pos = np.minimum(pos, edge_keys.size - 1) if edge_keys.size else pos
    present = edge_keys.size > 0
    missing = (
        np.flatnonzero(edge_keys[pos] != child_keys) if present else np.arange(children.size)
    )
    for i in missing[:max_reported_errors]:
        errors.append(
            f"tree edge ({tree_parents[i]}, {children[i]}) is not an edge of the graph"
        )

    # Rule 4: parent distance = child distance - 1.
    bad_level = np.flatnonzero(
        reference_distances[tree_parents] != reference_distances[children] - 1
    )
    for i in bad_level[:max_reported_errors]:
        errors.append(
            f"vertex {children[i]} at distance {reference_distances[children[i]]} has "
            f"parent {tree_parents[i]} at distance {reference_distances[tree_parents[i]]}"
        )

    return ValidationReport(
        valid=not errors,
        errors=errors,
        num_visited=num_visited,
        depth=depth,
    )
