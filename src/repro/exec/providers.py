"""Kernel providers: *how* a visit kernel computes, independent of *where*.

The execution backends (:mod:`repro.exec.backend`, :mod:`repro.exec.process`,
:mod:`repro.exec.thread`) decide where the per-GPU kernel tasks of a
super-step run — in-process, on a worker pool, on a thread pool.  A
:class:`KernelProvider` decides how each task computes: the vectorized NumPy
kernels of :mod:`repro.core.kernels` (:class:`NumpyProvider`, the default,
zero dependencies) or their Numba-compiled scalar-loop twins
(:class:`NumbaProvider` — ``nopython``, ``nogil=True``, ``cache=True``, so a
thread pool genuinely overlaps them on multi-core hosts).

The two axes compose freely: any backend can run any provider, and because
both providers produce bit-identical kernel outputs (same discovered sets,
same order, same exact ``edges_examined`` accounting), results, workload
counters and modeled times are **provider-invariant by construction** — only
wall-clock changes.  The CI counter gate compares artifacts across providers
to enforce this, just as it does across backends.

Providers are addressed by name — ``"numpy"``, ``"numba"``, or ``"auto"``
(Numba when importable, NumPy otherwise) — via :func:`resolve_provider`,
with the ``REPRO_KERNELS`` environment variable supplying the process-wide
default.  A request for ``"numba"`` on a host without Numba warns once and
falls back to NumPy rather than failing: the compiled tier is an
acceleration, never a requirement.
"""

from __future__ import annotations

import abc
import os
import warnings

import numpy as np

from repro.core import kernels as _kernels
from repro.core.kernels import BatchKernelOutput, KernelOutput

__all__ = [
    "PROVIDER_NAMES",
    "KERNELS_ENV_VAR",
    "KernelProvider",
    "NumpyProvider",
    "NumbaProvider",
    "default_kernels_name",
    "numba_available",
    "get_provider",
    "resolve_provider",
]

#: Names accepted wherever a kernel provider can be chosen (engine, session,
#: CLI ``--kernels``, ``REPRO_KERNELS``).  ``"auto"`` resolves at first use.
PROVIDER_NAMES = ("numpy", "numba", "auto")

#: Environment variable supplying the default provider name.
KERNELS_ENV_VAR = "REPRO_KERNELS"


def default_kernels_name() -> str:
    """The provider used when none is requested (``REPRO_KERNELS`` or auto)."""
    name = os.environ.get(KERNELS_ENV_VAR, "").strip().lower() or "auto"
    if name not in PROVIDER_NAMES:
        raise ValueError(
            f"{KERNELS_ENV_VAR}={name!r} is not a known kernel provider; "
            f"expected one of {PROVIDER_NAMES}"
        )
    return name


def numba_available() -> bool:
    """Whether the Numba-compiled provider can be constructed on this host."""
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


class KernelProvider(abc.ABC):
    """Computes the visit kernels and bitmask bulk ops of one super-step.

    Implementations must be stateless (safe to share across engines, threads
    and — by name — worker processes) and bit-identical to one another: same
    discovered vertices in the same order, same per-discovery sources, same
    exact ``edges_examined`` counts, same lane-word combinations.  Anything
    observable beyond wall-clock time is part of the contract.
    """

    #: Registry name of this provider (recorded in bench artifact records).
    name: str = "?"

    # -- sequential kernels -------------------------------------------- #
    @abc.abstractmethod
    def filter_frontier(self, frontier: np.ndarray, out_degrees: np.ndarray) -> np.ndarray:
        """Previsit filter: sorted unique frontier rows with out-degree > 0."""

    @abc.abstractmethod
    def forward_visit(self, csr, frontier: np.ndarray) -> KernelOutput:
        """Forward-push visit over a pre-filtered frontier."""

    @abc.abstractmethod
    def backward_visit(
        self, reverse_csr, candidates: np.ndarray, parent_in_frontier: np.ndarray
    ) -> KernelOutput:
        """Backward-pull visit with early exit and exact workload counting."""

    # -- weighted / value-propagation kernels --------------------------- #
    def weighted_forward_visit(self, csr, frontier: np.ndarray) -> KernelOutput:
        """Forward push that also gathers the traversed edges' weights.

        Concrete default (NumPy) so every provider supports weighted
        programs; compiled providers override with a bit-exact twin.
        """
        return _kernels.weighted_forward_visit(csr, frontier)

    def contrib_visit(self, csr, rows: np.ndarray, row_values: np.ndarray) -> KernelOutput:
        """Contribution scatter: push one int64 value per row to its neighbours."""
        return _kernels.contrib_visit(csr, rows, row_values)

    # -- batched (MS-BFS) kernels -------------------------------------- #
    @abc.abstractmethod
    def batched_filter_frontier(
        self, rows: np.ndarray, words: np.ndarray, out_degrees: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Previsit filter for a batched frontier (zero-degree drop)."""

    @abc.abstractmethod
    def batched_forward_visit(
        self, csr, frontier_rows: np.ndarray, frontier_words: np.ndarray
    ) -> BatchKernelOutput:
        """Batched forward push: propagate every lane of the frontier."""

    @abc.abstractmethod
    def batched_backward_visit(
        self,
        reverse_csr,
        candidates: np.ndarray,
        parent_words: np.ndarray,
        wanted_words: np.ndarray,
    ) -> BatchKernelOutput:
        """Batched backward pull: each candidate collects its parents' lanes."""

    # -- bitmask bulk ops ---------------------------------------------- #
    @abc.abstractmethod
    def bitmask_set_many(self, mask, indices: np.ndarray) -> None:
        """Set many bit positions of a :class:`~repro.utils.bitmask.Bitmask`."""

    @abc.abstractmethod
    def bitmask_test_many(self, mask, indices: np.ndarray) -> np.ndarray:
        """Test many bit positions of a :class:`~repro.utils.bitmask.Bitmask`."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class NumpyProvider(KernelProvider):
    """The vectorized NumPy kernels — the historical code path, unchanged.

    Every method delegates to :mod:`repro.core.kernels` or the
    :class:`~repro.utils.bitmask.Bitmask` bulk ops; this class only gives the
    existing implementation a registry name and the provider interface.
    """

    name = "numpy"

    def filter_frontier(self, frontier, out_degrees):
        return _kernels.filter_frontier(frontier, out_degrees)

    def forward_visit(self, csr, frontier):
        return _kernels.forward_visit(csr, frontier)

    def backward_visit(self, reverse_csr, candidates, parent_in_frontier):
        return _kernels.backward_visit(reverse_csr, candidates, parent_in_frontier)

    def batched_filter_frontier(self, rows, words, out_degrees):
        return _kernels.batched_filter_frontier(rows, words, out_degrees)

    def batched_forward_visit(self, csr, frontier_rows, frontier_words):
        return _kernels.batched_forward_visit(csr, frontier_rows, frontier_words)

    def batched_backward_visit(self, reverse_csr, candidates, parent_words, wanted_words):
        return _kernels.batched_backward_visit(
            reverse_csr, candidates, parent_words, wanted_words
        )

    def bitmask_set_many(self, mask, indices):
        mask.set_many(indices)

    def bitmask_test_many(self, mask, indices):
        return mask.test_many(indices)


class NumbaProvider(NumpyProvider):
    """Numba-compiled scalar-loop kernels (``nopython, nogil, cache=True``).

    Overrides the hot kernels with the compiled twins from
    :mod:`repro.exec._numba_kernels`; everything not worth compiling (the
    previsit filters, whose flag-scatter is already one vectorized pass, and
    ``bitmask_test_many``) inherits the NumPy path.  Constructing this class
    raises :class:`ImportError` on hosts without Numba — callers go through
    :func:`resolve_provider`, which turns that into a warn-once NumPy
    fallback.

    The compiled backward pull is the headline win: it early-exits each
    candidate's parent scan *for real*, where the NumPy twin must gather every
    edge first and reconstruct the early-exit workload afterwards.
    """

    name = "numba"

    def __init__(self) -> None:
        from repro.exec import _numba_kernels

        self._jit = _numba_kernels

    def forward_visit(self, csr, frontier):
        frontier = np.asarray(frontier, dtype=np.int64).ravel()
        if frontier.size == 0:
            return KernelOutput(np.zeros(0, dtype=np.int64), 0, backward=False)
        discovered, sources = self._jit.forward_gather(
            csr.row_offsets, csr.column_indices, frontier
        )
        return KernelOutput(
            discovered=discovered,
            edges_examined=int(discovered.size),
            backward=False,
            sources=sources,
        )

    def backward_visit(self, reverse_csr, candidates, parent_in_frontier):
        candidates = np.asarray(candidates, dtype=np.int64).ravel()
        if candidates.size == 0:
            return KernelOutput(np.zeros(0, dtype=np.int64), 0, backward=True)
        in_frontier = np.ascontiguousarray(parent_in_frontier, dtype=np.bool_)
        discovered, sources, examined = self._jit.backward_scan(
            reverse_csr.row_offsets, reverse_csr.column_indices, candidates, in_frontier
        )
        return KernelOutput(
            discovered=discovered,
            edges_examined=int(examined),
            backward=True,
            sources=sources,
        )

    def weighted_forward_visit(self, csr, frontier):
        if csr.edge_weights is None:
            # Delegate to the NumPy twin for its clear missing-weights error.
            return _kernels.weighted_forward_visit(csr, frontier)
        frontier = np.asarray(frontier, dtype=np.int64).ravel()
        if frontier.size == 0:
            return KernelOutput(np.zeros(0, dtype=np.int64), 0, backward=False)
        discovered, sources, weights = self._jit.weighted_forward_gather(
            csr.row_offsets, csr.column_indices, csr.edge_weights, frontier
        )
        return KernelOutput(
            discovered=discovered,
            edges_examined=int(discovered.size),
            backward=False,
            sources=sources,
            weights=weights,
        )

    def contrib_visit(self, csr, rows, row_values):
        rows = np.asarray(rows, dtype=np.int64).ravel()
        row_values = np.asarray(row_values, dtype=np.int64).ravel()
        if rows.size != row_values.size:
            raise ValueError("row_values must be parallel to rows")
        if rows.size == 0:
            return KernelOutput(np.zeros(0, dtype=np.int64), 0, backward=False)
        discovered, sources, values = self._jit.contrib_gather(
            csr.row_offsets, csr.column_indices, rows, row_values
        )
        if discovered.size == 0:
            return KernelOutput(np.zeros(0, dtype=np.int64), 0, backward=False)
        return KernelOutput(
            discovered=discovered,
            edges_examined=int(discovered.size),
            backward=False,
            sources=sources,
            values=values,
        )

    def batched_forward_visit(self, csr, frontier_rows, frontier_words):
        frontier_rows = np.asarray(frontier_rows, dtype=np.int64).ravel()
        frontier_words = np.ascontiguousarray(frontier_words, dtype=np.uint64)
        nwords = frontier_words.shape[1] if frontier_words.ndim == 2 else 1
        if frontier_rows.size == 0:
            return _kernels._empty_batch_output(nwords, backward=False)
        discovered, words, edges = self._jit.batched_forward_scatter(
            csr.row_offsets, csr.column_indices, frontier_rows, frontier_words, csr.num_cols
        )
        if discovered.size == 0:
            return _kernels._empty_batch_output(nwords, backward=False)
        return BatchKernelOutput(
            discovered=discovered, words=words, edges_examined=int(edges), backward=False
        )

    def batched_backward_visit(self, reverse_csr, candidates, parent_words, wanted_words):
        candidates = np.asarray(candidates, dtype=np.int64).ravel()
        parent_words = np.ascontiguousarray(parent_words, dtype=np.uint64)
        wanted_words = np.ascontiguousarray(wanted_words, dtype=np.uint64)
        nwords = parent_words.shape[1] if parent_words.ndim == 2 else 1
        if candidates.size == 0:
            return _kernels._empty_batch_output(nwords, backward=True)
        discovered, words, edges = self._jit.batched_backward_pull(
            reverse_csr.row_offsets,
            reverse_csr.column_indices,
            candidates,
            parent_words,
            wanted_words,
        )
        if edges == 0:
            return _kernels._empty_batch_output(nwords, backward=True)
        return BatchKernelOutput(
            discovered=discovered, words=words, edges_examined=int(edges), backward=True
        )

    def bitmask_set_many(self, mask, indices):
        idx = np.asarray(indices, dtype=np.int64).ravel()
        if idx.size == 0:
            return
        mask._check_bounds(idx)
        self._jit.bitmask_set_bits(mask.buffer, idx)


_SINGLETONS: dict = {}


def get_provider(name: str) -> KernelProvider:
    """The shared singleton provider for a *resolved* name (numpy / numba).

    Providers are stateless, so one instance per process suffices; worker
    processes resolve providers from the name carried in their task tuples
    through this same cache (each worker compiles — or loads the on-disk
    Numba cache — once).  Unlike :func:`resolve_provider` this raises on an
    unavailable ``"numba"`` rather than falling back; it is the internal
    constructor, not the user-facing resolver.
    """
    provider = _SINGLETONS.get(name)
    if provider is None:
        if name == "numpy":
            provider = NumpyProvider()
        elif name == "numba":
            provider = NumbaProvider()
        else:
            raise ValueError(
                f"unknown kernel provider {name!r}; expected 'numpy' or 'numba'"
            )
        _SINGLETONS[name] = provider
    return provider


def resolve_provider(spec) -> KernelProvider:
    """Turn a kernel-provider request into a live provider.

    Parameters
    ----------
    spec:
        ``None`` (use :func:`default_kernels_name`), one of
        :data:`PROVIDER_NAMES`, or a live :class:`KernelProvider` instance.

    ``"auto"`` resolves to Numba when importable and NumPy otherwise, with no
    warning either way.  An explicit ``"numba"`` on a host without Numba
    warns once and falls back to NumPy — counters are provider-invariant, so
    the fallback changes nothing but speed.
    """
    if isinstance(spec, KernelProvider):
        return spec
    name = default_kernels_name() if spec is None else str(spec).strip().lower()
    if name not in PROVIDER_NAMES:
        raise ValueError(
            f"unknown kernel provider {spec!r}; expected one of {PROVIDER_NAMES} "
            "or a KernelProvider instance"
        )
    if name == "auto":
        name = "numba" if numba_available() else "numpy"
    elif name == "numba" and not numba_available():
        warnings.warn(
            "kernel provider 'numba' requested but Numba is not importable; "
            "falling back to the NumPy provider (identical results, slower kernels)",
            RuntimeWarning,
            stacklevel=2,
        )
        name = "numpy"
    return get_provider(name)
