"""The process execution backend: a persistent worker pool over shared memory.

:class:`ProcessBackend` runs the per-GPU kernel tasks of every super-step in
a pool of worker processes, so the kernel stage — the compute-bound part of
a traversal — actually runs in parallel on multi-core hosts instead of
iterating the virtual GPUs in one Python loop.

Design notes:

* **The pool is persistent and process-global.**  Worker startup is paid
  once per interpreter, not per engine: every :class:`ProcessBackend`
  instance (there can be many — each engine owns one) dispatches into the
  same pool, keyed by (start method, worker count).  ``atexit`` tears the
  pools down.
* **Graph data crosses the process boundary through shared memory, not
  pickles.**  Each backend exports its graph's CSR subgraphs once into a
  :class:`~repro.exec.shm.SharedGraphStore`; the per-step frontier bitmask
  buffers (delegate flags, dense normal flags, batched lane words) are
  rewritten in place before each dispatch.  Tasks carry only queues,
  candidate sets and small descriptors; workers attach lazily and cache
  attachments, so steady-state IPC is the frontier in and the discoveries
  out.
* **Workers return bit-identical kernel outputs** (the kernels are pure
  functions), so results, workload counters and modeled times match the
  inline backend exactly; only wall-clock changes.  Outputs whose
  ``sources`` the fold never reads are stripped before the return trip.

The default worker count is ``min(num_gpus, cpu_count, 8)`` — more workers
than virtual GPUs can never help, and past the physical cores they only add
scheduler pressure.  On a single-core host the pool degenerates to one
worker and the backend is strictly slower than inline (every byte still
crosses the process boundary); it exists there only to exercise the same
code path CI and multi-core hosts run.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import weakref

import numpy as np

from repro.exec.backend import ExecutionBackend
from repro.exec.plan import (
    BatchedGPUPlan,
    GPUPlan,
    SuperStepPlan,
    execute_batched_gpu_plan,
    execute_gpu_plan,
)
from repro.exec.providers import resolve_provider
from repro.exec.shm import (
    SegmentCache,
    SharedGraphStore,
    batch_views_from_descriptor,
    csrs_from_descriptor,
)

__all__ = ["ProcessBackend", "shutdown_pools"]

#: Hard cap on pool width; the paper's clusters have at most 8 GPUs per node
#: and a wider pool only shreds caches.
MAX_WORKERS = 8

#: Environment override for the multiprocessing start method.
START_METHOD_ENV = "REPRO_MP_START"


def _default_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    override = os.environ.get(START_METHOD_ENV, "").strip()
    if override:
        if override not in methods:
            raise ValueError(
                f"{START_METHOD_ENV}={override!r} is not available here; "
                f"choose one of {methods}"
            )
        return override
    # fork makes worker startup (and spawn-free numpy import) essentially
    # free on Linux; platforms without it fall back to spawn.
    return "fork" if "fork" in methods else "spawn"


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #
_WORKER_CACHE: SegmentCache | None = None


def _disable_shm_tracking() -> None:
    """Stop this worker's resource tracker from adopting attached segments.

    On CPython < 3.13, merely *attaching* to a shared-memory segment
    registers it with the process's resource tracker, which unlinks the
    segment when the process exits — destroying buffers the coordinator
    still owns (bpo-39959).  The coordinator is the sole owner here and
    unlinks everything itself, so workers must not track attachments.
    (Python 3.13+ exposes ``track=False`` for exactly this reason.)
    """
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register
    original_unregister = resource_tracker.unregister

    def register(name, rtype):  # pragma: no cover - runs in workers
        if rtype != "shared_memory":
            original_register(name, rtype)

    def unregister(name, rtype):  # pragma: no cover - runs in workers
        if rtype != "shared_memory":
            original_unregister(name, rtype)

    resource_tracker.register = register
    resource_tracker.unregister = unregister


def _init_worker() -> None:  # pragma: no cover - runs in workers
    global _WORKER_CACHE
    _disable_shm_tracking()
    _WORKER_CACHE = SegmentCache()


def _run_task(task: tuple):
    """Execute one GPU's kernel tasks inside a worker; returns (gpu, outputs)."""
    (
        batched,
        gpu,
        visits,
        graph_descriptor,
        flags_descriptor,
        batch_descriptor,
        nwords,
        has_own_flags,
        provider_name,
        collect_spans,
    ) = task
    cache = _WORKER_CACHE if _WORKER_CACHE is not None else SegmentCache()
    csrs = csrs_from_descriptor(cache, graph_descriptor)
    # Providers cross the process boundary by name; each worker resolves (and
    # for Numba, loads the on-disk JIT cache) once via the singleton registry.
    provider = resolve_provider(provider_name)
    if graph_descriptor.get("compressed"):
        # Compressed-store graphs: decode frontier/candidate rows lazily
        # before each visit so the kernels see raw adjacency.
        from repro.storage.codec import DecodingProvider

        provider = DecodingProvider(provider)

    def resolve_csr(g: int, name: str):
        return csrs[(g, name)]

    if batched:
        dense_delegate, dense_normal = batch_views_from_descriptor(
            cache, batch_descriptor, gpu, nwords
        )
        plan = BatchedGPUPlan(gpu, visits, dense_normal if has_own_flags else None)
        return gpu, execute_batched_gpu_plan(
            plan, resolve_csr, dense_delegate, provider=provider,
            collect_spans=collect_spans,
        )

    segment, num_delegates, offsets, num_locals = flags_descriptor
    delegate_flags = cache.array(segment, 0, np.bool_, (num_delegates,))
    normal_flags = (
        cache.array(segment, offsets[gpu], np.bool_, (num_locals[gpu],))
        if has_own_flags
        else None
    )
    plan = GPUPlan(gpu, visits, normal_flags)
    return gpu, execute_gpu_plan(
        plan, resolve_csr, delegate_flags, strip_sources=True, provider=provider,
        collect_spans=collect_spans,
    )


# --------------------------------------------------------------------------- #
# Coordinator side
# --------------------------------------------------------------------------- #
_POOLS: dict = {}


def _get_pool(method: str, workers: int):
    key = (method, workers)
    pool = _POOLS.get(key)
    if pool is None:
        context = multiprocessing.get_context(method)
        pool = context.Pool(processes=workers, initializer=_init_worker)
        _POOLS[key] = pool
    return pool


def shutdown_pools() -> None:
    """Terminate every worker pool (called automatically at exit)."""
    for pool in _POOLS.values():
        pool.terminate()
        pool.join()
    _POOLS.clear()


atexit.register(shutdown_pools)


class ProcessBackend(ExecutionBackend):
    """Execute per-GPU kernel tasks in a persistent multiprocessing pool.

    Parameters
    ----------
    graph:
        The partitioned graph whose CSR buffers to export to shared memory.
    workers:
        Pool width; defaults to ``min(num_gpus, cpu_count, 8)``.
    start_method:
        Multiprocessing start method; defaults to ``fork`` where available
        (or the ``REPRO_MP_START`` environment override).
    """

    name = "process"

    def __init__(
        self, graph, workers: int | None = None, start_method: str | None = None
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.graph = graph
        cpu = os.cpu_count() or 1
        self.workers = (
            int(workers)
            if workers is not None
            else max(1, min(graph.num_gpus or 1, cpu, MAX_WORKERS))
        )
        self.start_method = start_method or _default_start_method()
        self._pool = _get_pool(self.start_method, self.workers)
        self.store = SharedGraphStore(graph)
        self._closed = False
        # Safety net for engines that never call close(): unlink the shared
        # segments when the backend is garbage collected.
        self._finalizer = weakref.finalize(self, self.store.close)

    def _execute_kernels(self, plan: SuperStepPlan) -> list:
        if self._closed:
            raise RuntimeError("ProcessBackend is closed")
        store = self.store
        provider_name = plan.provider.name if plan.provider is not None else "numpy"
        tasks = []
        if plan.batched:
            nwords = int(plan.dense_delegate.shape[1])
            store.ensure_batch_capacity(nwords)
            store.write_dense_delegate(plan.dense_delegate)
            batch_descriptor = store.batch_descriptor()
            for gp in plan.gpu_plans:
                has_dense = gp.dense_normal is not None
                if has_dense:
                    store.write_dense_normal(gp.gpu, gp.dense_normal)
                tasks.append(
                    (
                        True,
                        gp.gpu,
                        gp.visits,
                        store.graph_descriptor,
                        None,
                        batch_descriptor,
                        nwords,
                        has_dense,
                        provider_name,
                        plan.collect_spans,
                    )
                )
        else:
            store.write_delegate_flags(plan.delegate_flags)
            flags_descriptor = store.flags_descriptor()
            for gp in plan.gpu_plans:
                has_flags = gp.normal_flags is not None
                if has_flags:
                    store.write_normal_flags(gp.gpu, gp.normal_flags)
                tasks.append(
                    (
                        False,
                        gp.gpu,
                        gp.visits,
                        store.graph_descriptor,
                        flags_descriptor,
                        None,
                        0,
                        has_flags,
                        provider_name,
                        plan.collect_spans,
                    )
                )
        # chunksize=1: per-GPU work is heterogeneous (delegate-heavy GPUs do
        # more), so let idle workers steal instead of pre-binning.
        results = self._pool.map(_run_task, tasks, chunksize=1)
        return [outputs for _, outputs in results]

    def close(self) -> None:
        """Unlink this backend's shared memory (the pool is shared, kept)."""
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        self.store.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcessBackend(workers={self.workers}, "
            f"start_method={self.start_method!r})"
        )
