"""Numba-compiled visit kernels (imported only when Numba is installed).

This module is the compiled half of :class:`repro.exec.providers.NumbaProvider`.
It is deliberately kept separate from ``providers.py`` so the ``@njit``
decorators can live at module level — a requirement for ``cache=True`` (Numba
caches compiled machine code next to the defining source file, which closures
and dynamically built functions cannot use) — while the rest of the package
imports cleanly on hosts without Numba: ``providers.py`` imports this module
lazily inside a ``try/except ImportError`` and falls back to NumPy.

Every function here is the scalar-loop twin of a vectorized kernel in
:mod:`repro.core.kernels` or a :class:`repro.utils.bitmask.Bitmask` bulk op,
operating on the raw CSR arrays (``row_offsets``/``column_indices``) and
producing bit-identical outputs:

* discovered/source arrays in the same order (candidate order for pulls,
  frontier-then-CSR edge order for pushes, sorted-unique destinations for the
  batched push),
* the exact same ``edges_examined`` accounting — in particular the backward
  pull's *true* early exit, which the NumPy twin can only reconstruct after
  gathering every edge (the whole reason this provider is faster),
* the same uint64 lane-word OR combinations (associative, so loop order
  cannot change the result).

All kernels are ``nopython`` (``njit``), ``nogil=True`` — so the
:class:`~repro.exec.thread.ThreadBackend`'s pool genuinely overlaps per-GPU
kernel tasks on multi-core hosts — and ``cache=True`` so the one-time
compilation cost is paid once per machine, not once per process.
"""

from __future__ import annotations

import numpy as np
from numba import njit

__all__ = [
    "forward_gather",
    "weighted_forward_gather",
    "contrib_gather",
    "backward_scan",
    "batched_forward_scatter",
    "batched_backward_pull",
    "bitmask_set_bits",
]


@njit(nogil=True, cache=True)
def forward_gather(row_offsets, column_indices, frontier):
    """Forward push: concatenated neighbour gather in frontier/CSR order.

    Returns ``(discovered, sources)`` — parallel int64 arrays, one entry per
    edge out of the frontier, matching ``CSRGraph.gather_neighbors``.
    """
    total = 0
    for i in range(frontier.shape[0]):
        f = frontier[i]
        total += row_offsets[f + 1] - row_offsets[f]
    discovered = np.empty(total, dtype=np.int64)
    sources = np.empty(total, dtype=np.int64)
    k = 0
    for i in range(frontier.shape[0]):
        f = frontier[i]
        for e in range(row_offsets[f], row_offsets[f + 1]):
            discovered[k] = column_indices[e]
            sources[k] = f
            k += 1
    return discovered, sources


@njit(nogil=True, cache=True)
def weighted_forward_gather(row_offsets, column_indices, edge_weights, frontier):
    """Weighted forward push: neighbour gather plus the traversed edge weights.

    Returns ``(discovered, sources, weights)`` — the first two parallel int64
    arrays exactly as :func:`forward_gather`, the third the float64 weight of
    each gathered edge, matching ``CSRGraph.gather_neighbors_with_weights``.
    """
    total = 0
    for i in range(frontier.shape[0]):
        f = frontier[i]
        total += row_offsets[f + 1] - row_offsets[f]
    discovered = np.empty(total, dtype=np.int64)
    sources = np.empty(total, dtype=np.int64)
    weights = np.empty(total, dtype=np.float64)
    k = 0
    for i in range(frontier.shape[0]):
        f = frontier[i]
        for e in range(row_offsets[f], row_offsets[f + 1]):
            discovered[k] = column_indices[e]
            sources[k] = f
            weights[k] = edge_weights[e]
            k += 1
    return discovered, sources, weights


@njit(nogil=True, cache=True)
def contrib_gather(row_offsets, column_indices, rows, row_values):
    """Contribution scatter: per-edge int64 values repeated over out-degrees.

    Returns ``(discovered, sources, values)`` — one entry per edge out of the
    active rows, in row-then-CSR order, matching the NumPy twin
    (:func:`repro.core.kernels.contrib_visit`).
    """
    total = 0
    for i in range(rows.shape[0]):
        r = rows[i]
        total += row_offsets[r + 1] - row_offsets[r]
    discovered = np.empty(total, dtype=np.int64)
    sources = np.empty(total, dtype=np.int64)
    values = np.empty(total, dtype=np.int64)
    k = 0
    for i in range(rows.shape[0]):
        r = rows[i]
        v = row_values[i]
        for e in range(row_offsets[r], row_offsets[r + 1]):
            discovered[k] = column_indices[e]
            sources[k] = r
            values[k] = v
            k += 1
    return discovered, sources, values


@njit(nogil=True, cache=True)
def backward_scan(row_offsets, column_indices, candidates, in_frontier):
    """Backward pull with a true early exit per candidate.

    Scans each candidate's parent list until the first parent flagged in
    ``in_frontier``; returns ``(discovered, sources, edges_examined)`` with
    the discovering parent per hit and the exact count of edges touched
    (parents scanned up to and including the first hit, or the whole list
    when there is none) — the workload the paper's BV formula estimates.
    """
    n = candidates.shape[0]
    discovered = np.empty(n, dtype=np.int64)
    sources = np.empty(n, dtype=np.int64)
    count = 0
    examined = 0
    for i in range(n):
        c = candidates[i]
        for e in range(row_offsets[c], row_offsets[c + 1]):
            examined += 1
            p = column_indices[e]
            if in_frontier[p]:
                discovered[count] = c
                sources[count] = p
                count += 1
                break
    return discovered[:count], sources[:count], examined


@njit(nogil=True, cache=True)
def batched_forward_scatter(row_offsets, column_indices, rows, words, num_cols):
    """Batched forward push: OR-scatter lane words into unique destinations.

    Accumulates into a dense per-destination buffer (the CPU analogue of the
    GPU's atomicOr into the dense lane-word array), then compacts to the
    sorted-unique destination list — the same output as the NumPy twin's
    ``np.unique`` + ``np.bitwise_or.at``, without the unbuffered ufunc loop.
    Returns ``(discovered, out_words, edges_examined)``.
    """
    nwords = words.shape[1]
    acc = np.zeros((num_cols, nwords), dtype=np.uint64)
    touched = np.zeros(num_cols, dtype=np.uint8)
    edges = 0
    for i in range(rows.shape[0]):
        r = rows[i]
        for e in range(row_offsets[r], row_offsets[r + 1]):
            d = column_indices[e]
            touched[d] = 1
            for w in range(nwords):
                acc[d, w] |= words[i, w]
            edges += 1
    count = 0
    for d in range(num_cols):
        if touched[d]:
            count += 1
    discovered = np.empty(count, dtype=np.int64)
    out_words = np.empty((count, nwords), dtype=np.uint64)
    k = 0
    for d in range(num_cols):
        if touched[d]:
            discovered[k] = d
            for w in range(nwords):
                out_words[k, w] = acc[d, w]
            k += 1
    return discovered, out_words, edges


@njit(nogil=True, cache=True)
def batched_backward_pull(row_offsets, column_indices, candidates, parent_words, wanted):
    """Batched backward pull: every candidate ORs all its parents' lanes.

    No early exit — every lane needs its own first parent, so the workload is
    the full candidate parent lists, exactly as in the NumPy twin.  Returns
    ``(discovered, gained_words, edges_examined)`` for the candidates that
    gained at least one still-wanted lane.
    """
    n = candidates.shape[0]
    nwords = parent_words.shape[1]
    gained = np.zeros((n, nwords), dtype=np.uint64)
    keep = np.zeros(n, dtype=np.uint8)
    edges = 0
    count = 0
    for i in range(n):
        c = candidates[i]
        for e in range(row_offsets[c], row_offsets[c + 1]):
            p = column_indices[e]
            edges += 1
            for w in range(nwords):
                gained[i, w] |= parent_words[p, w]
        any_bit = False
        for w in range(nwords):
            gained[i, w] &= wanted[i, w]
            if gained[i, w] != np.uint64(0):
                any_bit = True
        if any_bit:
            keep[i] = 1
            count += 1
    discovered = np.empty(count, dtype=np.int64)
    out_words = np.empty((count, nwords), dtype=np.uint64)
    k = 0
    for i in range(n):
        if keep[i]:
            discovered[k] = candidates[i]
            for w in range(nwords):
                out_words[k, w] = gained[i, w]
            k += 1
    return discovered, out_words, edges


@njit(nogil=True, cache=True)
def bitmask_set_bits(bits, idx):
    """Set bit positions ``idx`` in a little-endian packed uint8 buffer.

    One linear pass regardless of density — replaces both branches of
    ``Bitmask.set_many`` (the unbuffered ``np.bitwise_or.at`` sparse path and
    the O(size) flag-scatter dense path).
    """
    for i in range(idx.shape[0]):
        j = idx[i]
        bits[j >> 3] |= np.uint8(1 << (j & 7))
