"""Declarative super-step plans: what a backend runs, as pure data.

One level-synchronous super-step of the engine decomposes into three stages
(paper §IV/§V): per-GPU visit kernels, the normal-vertex exchange and the
delegate reduction.  The kernel stage is embarrassingly parallel across the
virtual GPUs and is therefore described *declaratively* — a
:class:`GPUPlan` per GPU holding picklable :class:`VisitSpec` tasks (which
subgraph CSR to traverse, in which direction, over which queue or candidate
set) — so an execution backend can ship it anywhere: run it inline, fan it
out over a process pool, or (in principle) dispatch it to real devices.

The exchange and the reduction are global barriers over the kernel outputs
and inherently involve the program's fold hooks (``visit_value`` /
``accept`` / ``merge_remote``), so the plan carries them as one ``finalize``
callable built by the engine: backends execute the kernel tasks however
they like, then hand the per-GPU outputs to ``finalize``, which applies the
program folds, routes the exchange through the :class:`Communicator`,
performs the delegate reduction and returns the super-step's
:class:`~repro.core.results.IterationRecord`.

Because the visit kernels are pure functions of their spec (and the shared
frontier flag buffers), every backend — and every
:class:`~repro.exec.providers.KernelProvider` implementation of the kernels
— produces bit-identical outputs; and since all folding runs on the
coordinating process, results, workload counters and modeled times are
backend- and provider-independent by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.exec.providers import get_provider
from repro.utils.timing import now_s

__all__ = [
    "VisitSpec",
    "BatchedVisitSpec",
    "GPUPlan",
    "BatchedGPUPlan",
    "SuperStepPlan",
    "execute_gpu_plan",
    "execute_batched_gpu_plan",
    "worker_spans",
]

_EMPTY_I64 = np.zeros(0, dtype=np.int64)


@dataclass
class VisitSpec:
    """One sequential visit-kernel task (picklable pure data).

    Attributes
    ----------
    kernel:
        Logical kernel this task implements: ``"nn"``, ``"nd"``, ``"dn"``
        or ``"dd"`` — the key its output is folded under.
    csr:
        Which of the GPU's four stored subgraphs to traverse.  This is not
        always :attr:`kernel`: a backward nd pull scans the reverse edges,
        which live in the ``dn`` CSR (and vice versa).
    backward:
        ``True`` = backward-pull (:func:`~repro.core.kernels.backward_visit`),
        ``False`` = forward-push.
    queue:
        Forward tasks: the pre-filtered frontier rows to expand.
    candidates:
        Backward tasks: the unvisited rows that pull.
    flags:
        Backward tasks: which shared frontier flag buffer the pull tests
        parents against — ``"normal"`` (this GPU's dense local-slot flags,
        :attr:`GPUPlan.normal_flags`) or ``"delegate"`` (the replicated
        delegate flags shared by every GPU,
        :attr:`SuperStepPlan.delegate_flags`).
    keep_sources:
        Whether the fold will read the kernel's ``sources`` array (only
        programs carrying per-discovery payloads do).  Remote backends may
        drop the sources of tasks that do not need them before shipping
        outputs back — the fold never reads what it did not ask for.
    weighted:
        Forward tasks: gather the traversed edges' weights alongside the
        destinations (SSSP-style relaxation; requires the subgraph to carry
        ``edge_weights``).
    row_values:
        Contribution tasks (PageRank): one ``int64`` value per ``queue``
        entry to push along the row's out-edges.  When set, the task runs
        :meth:`~repro.exec.providers.KernelProvider.contrib_visit` instead of
        a plain forward visit.
    """

    kernel: str
    csr: str
    backward: bool
    queue: np.ndarray | None = None
    candidates: np.ndarray | None = None
    flags: str | None = None
    keep_sources: bool = True
    weighted: bool = False
    row_values: np.ndarray | None = None


@dataclass
class BatchedVisitSpec:
    """One batched (MS-BFS style) visit-kernel task.

    Mirrors :class:`VisitSpec` with lane words in place of single bits:
    forward tasks carry the (rows, words) frontier, backward tasks the
    candidate rows, their still-wanted lane words, and a reference to the
    dense parent lane-word buffer (``"normal"`` = this GPU's
    :attr:`BatchedGPUPlan.dense_normal`, ``"delegate"`` = the shared
    :attr:`SuperStepPlan.dense_delegate`).
    """

    kernel: str
    csr: str
    backward: bool
    rows: np.ndarray | None = None
    words: np.ndarray | None = None
    candidates: np.ndarray | None = None
    wanted: np.ndarray | None = None
    parents: str | None = None


@dataclass
class GPUPlan:
    """All visit-kernel tasks of one GPU for one sequential super-step."""

    gpu: int
    visits: list = field(default_factory=list)
    #: Dense boolean frontier over this GPU's local slots; present exactly
    #: when some task pulls with ``flags="normal"``.
    normal_flags: np.ndarray | None = None


@dataclass
class BatchedGPUPlan:
    """All visit-kernel tasks of one GPU for one batched super-step."""

    gpu: int
    visits: list = field(default_factory=list)
    #: Dense ``(num_local, nwords)`` frontier lane words; present exactly
    #: when some task pulls with ``parents="normal"``.
    dense_normal: np.ndarray | None = None


@dataclass
class SuperStepPlan:
    """One super-step, ready for an execution backend.

    ``gpu_plans`` is the parallel stage (pure data, one entry per GPU);
    ``finalize`` is the serial stage: called once with the per-GPU output
    dictionaries (kernel name → output, in GPU order), it folds the
    discoveries through the frontier program, runs the exchange and the
    delegate reduction, accounts modeled time and returns the
    :class:`~repro.core.results.IterationRecord`.  ``wall`` is the run's
    wall-clock phase accumulator; backends add their kernel-stage seconds
    to ``wall["kernels"]``.
    """

    level: int
    batched: bool
    gpu_plans: list
    finalize: Callable[[list], object]
    wall: dict
    #: Sequential plans: replicated delegate frontier flags (bool, size d).
    delegate_flags: np.ndarray | None = None
    #: Batched plans: dense ``(d, nwords)`` delegate frontier lane words.
    dense_delegate: np.ndarray | None = None
    #: The :class:`~repro.exec.providers.KernelProvider` computing the visit
    #: kernels (``None`` = NumPy).  In-process backends use it directly;
    #: remote backends ship its ``name`` and re-resolve in the worker.
    provider: object | None = None
    #: When ``True`` (set by the backend iff tracing is enabled) every
    #: per-GPU execution records its kernel timings under the reserved
    #: ``"_spans"`` output key, which the backend pops and replays into the
    #: tracer before ``finalize`` runs.  Folding code accesses outputs
    #: strictly by kernel key, so the extra entry is invisible to it.
    collect_spans: bool = False


def execute_gpu_plan(
    gpu_plan: GPUPlan,
    resolve_csr: Callable[[int, str], object],
    delegate_flags: np.ndarray | None,
    strip_sources: bool = False,
    provider=None,
    collect_spans: bool = False,
) -> dict:
    """Run every sequential visit task of one GPU; outputs keyed by kernel.

    ``resolve_csr(gpu, name)`` maps a task's subgraph reference to a CSR —
    the in-process partition for :class:`~repro.exec.backend.InlineBackend`,
    a shared-memory view inside a :class:`~repro.exec.process.ProcessBackend`
    worker.  ``provider`` picks the kernel implementation
    (:mod:`repro.exec.providers`; ``None`` = NumPy).  With ``strip_sources``
    the ``sources`` arrays of tasks that declared ``keep_sources=False`` are
    dropped (they can be as large as the examined edge set, and the fold
    never reads them).  With ``collect_spans`` the per-kernel wall timings
    ride back under the reserved ``"_spans"`` output key (see
    :func:`worker_spans`); when ``False`` — the default, and always when
    tracing is off — the kernel loop performs no timing work at all.
    """
    if provider is None:
        provider = get_provider("numpy")
    outputs: dict = {}
    spans = [] if collect_spans else None
    base = now_s() if collect_spans else 0.0
    for spec in gpu_plan.visits:
        started = now_s() if collect_spans else 0.0
        csr = resolve_csr(gpu_plan.gpu, spec.csr)
        if spec.backward:
            flags = gpu_plan.normal_flags if spec.flags == "normal" else delegate_flags
            out = provider.backward_visit(csr, spec.candidates, flags)
        elif spec.row_values is not None:
            out = provider.contrib_visit(csr, spec.queue, spec.row_values)
        elif spec.weighted:
            out = provider.weighted_forward_visit(csr, spec.queue)
        else:
            out = provider.forward_visit(csr, spec.queue)
        if strip_sources and not spec.keep_sources:
            out.sources = _EMPTY_I64
        outputs[spec.kernel] = out
        if collect_spans:
            ended = now_s()
            kind = "pull" if spec.backward else "push"
            spans.append((f"{spec.kernel}:{kind}", started - base, ended - started))
    if collect_spans:
        outputs["_spans"] = {"base": base, "spans": spans}
    return outputs


def execute_batched_gpu_plan(
    gpu_plan: BatchedGPUPlan,
    resolve_csr: Callable[[int, str], object],
    dense_delegate: np.ndarray | None,
    provider=None,
    collect_spans: bool = False,
) -> dict:
    """Run every batched visit task of one GPU; outputs keyed by kernel.

    ``collect_spans`` mirrors :func:`execute_gpu_plan`: per-kernel timings
    ride back under the reserved ``"_spans"`` key.
    """
    if provider is None:
        provider = get_provider("numpy")
    outputs: dict = {}
    spans = [] if collect_spans else None
    base = now_s() if collect_spans else 0.0
    for spec in gpu_plan.visits:
        started = now_s() if collect_spans else 0.0
        csr = resolve_csr(gpu_plan.gpu, spec.csr)
        if spec.backward:
            parents = (
                gpu_plan.dense_normal if spec.parents == "normal" else dense_delegate
            )
            out = provider.batched_backward_visit(csr, spec.candidates, parents, spec.wanted)
        else:
            out = provider.batched_forward_visit(csr, spec.rows, spec.words)
        outputs[spec.kernel] = out
        if collect_spans:
            ended = now_s()
            kind = "pull" if spec.backward else "push"
            spans.append((f"{spec.kernel}:{kind}", started - base, ended - started))
    if collect_spans:
        outputs["_spans"] = {"base": base, "spans": spans}
    return outputs


def worker_spans(outputs: dict) -> dict | None:
    """Pop the reserved ``"_spans"`` entry from one GPU's kernel outputs.

    Returns ``{"base": <worker clock at loop start>, "spans": [(name,
    rel_start_s, dur_s), ...]}`` or ``None`` when the execution did not
    collect spans.  Backends call this before handing outputs to
    ``finalize`` so the fold never sees the reserved key.
    """
    return outputs.pop("_spans", None)
