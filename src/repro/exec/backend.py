"""The execution-backend protocol, the inline backend and the registry.

An :class:`ExecutionBackend` runs :class:`~repro.exec.plan.SuperStepPlan`s
for one partitioned graph.  The contract is deliberately small:

``run_super_step(plan)``
    Execute the plan's per-GPU kernel tasks *somehow* (that is the whole
    point of the abstraction), account the elapsed seconds under
    ``plan.wall["kernels"]`` and hand the outputs — one ``{kernel: output}``
    dictionary per GPU, in GPU order — to ``plan.finalize``, returning its
    :class:`~repro.core.results.IterationRecord`.
``close()``
    Release whatever the backend holds (worker pools, shared memory);
    idempotent.  Backends are context managers.

Backends are addressed by name.  :data:`BACKEND_NAMES` lists the shipped
ones; :func:`resolve_backend` turns a name / instance / ``None`` into a
live backend for a graph, with the ``REPRO_BACKEND`` environment variable
supplying the process-wide default (so e.g. a CI leg can run the whole test
suite over the process pool without touching any call site).
"""

from __future__ import annotations

import abc
import os

from repro.exec.plan import (
    SuperStepPlan,
    execute_batched_gpu_plan,
    execute_gpu_plan,
    worker_spans,
)
from repro.obs.tracer import get_tracer
from repro.utils.timing import now_s

__all__ = [
    "BACKEND_NAMES",
    "BACKEND_ENV_VAR",
    "ExecutionBackend",
    "InlineBackend",
    "default_backend_name",
    "resolve_backend",
]

#: Names accepted wherever a backend can be chosen (engine, session, CLI).
BACKEND_NAMES = ("inline", "process", "thread")

#: Environment variable supplying the default backend name.
BACKEND_ENV_VAR = "REPRO_BACKEND"


def default_backend_name() -> str:
    """The backend used when none is requested (``REPRO_BACKEND`` or inline)."""
    name = os.environ.get(BACKEND_ENV_VAR, "").strip().lower() or "inline"
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"{BACKEND_ENV_VAR}={name!r} is not a known execution backend; "
            f"expected one of {BACKEND_NAMES}"
        )
    return name


class ExecutionBackend(abc.ABC):
    """Runs the super-step plans of one graph; see the module docstring."""

    #: Registry name of this backend (recorded in results and artifacts).
    name: str = "?"

    def run_super_step(self, plan: SuperStepPlan):
        """Execute one plan: kernels (timed), then the serial finalize.

        With tracing enabled the kernel stage is wrapped in an ``exec``
        span, the plan is asked to collect per-kernel worker timings, and
        those ride back under each GPU's reserved ``"_spans"`` output key —
        drained here (per-GPU tracks, ``tid = gpu + 1``) before the fold
        ever sees the outputs.  Wall accounting is identical either way.
        """
        tracer = get_tracer()
        plan.collect_spans = tracer.enabled
        started = now_s()
        outputs = self._execute_kernels(plan)
        ended = now_s()
        plan.wall["kernels"] += ended - started
        if tracer.enabled:
            tracer.record_span(
                "kernels", cat="exec", start=started, dur=ended - started,
                args={"level": plan.level, "backend": self.name},
            )
            self._drain_worker_spans(tracer, outputs, started, ended)
        return plan.finalize(outputs)

    def _drain_worker_spans(self, tracer, outputs: list, started: float, ended: float) -> None:
        """Replay each GPU's collected kernel timings into the tracer.

        Worker timestamps are relative to the worker's own clock ``base``.
        In-process executions (inline/thread) share the coordinator's clock,
        so ``base`` is used directly; a process-pool worker's clock may not
        be comparable (``perf_counter`` is only guaranteed per-process), so
        any ``base`` outside the kernel-stage window is rebased onto the
        stage start — spans then still nest under the ``kernels`` span even
        on platforms with per-process clocks.
        """
        append = tracer.events.append
        for gpu, outs in enumerate(outputs):
            collected = worker_spans(outs)
            if not collected:
                continue
            base = collected["base"]
            if not started <= base <= ended:
                base = started
            tid = gpu + 1
            # Hot path: wall-heavy traces replay hundreds of thousands of
            # worker tuples, so events are appended pre-normalized (the
            # documented ``Tracer.events`` shape) instead of going through
            # ``record_span``.  The GPU is encoded by the track (tid - 1).
            for name, rel_start, dur in collected["spans"]:
                append({
                    "name": name,
                    "cat": "worker",
                    "ph": "X",
                    "ts": (base + rel_start) * 1e6,
                    "dur": dur * 1e6 if dur > 0.0 else 0.0,
                    "pid": 0,
                    "tid": tid,
                })

    @abc.abstractmethod
    def _execute_kernels(self, plan: SuperStepPlan) -> list:
        """Run every GPU's kernel tasks; outputs in GPU order."""

    def close(self) -> None:
        """Release backend resources (idempotent; default: nothing held)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class InlineBackend(ExecutionBackend):
    """Run every kernel task in the calling process, one GPU after another.

    This is the classic simulator behaviour: results, workload counters and
    modeled times are bit-identical to the historical in-engine loop, and
    there is no setup cost — the backend of choice for small graphs, tests
    and anything latency-sensitive enough that a process pool's IPC would
    dominate.
    """

    name = "inline"

    def __init__(self, graph) -> None:
        self.graph = graph

    def _resolve_csr(self, gpu: int, name: str):
        return getattr(self.graph.gpus[gpu], name)

    def _execute_kernels(self, plan: SuperStepPlan) -> list:
        if plan.batched:
            return [
                execute_batched_gpu_plan(
                    gp, self._resolve_csr, plan.dense_delegate, provider=plan.provider,
                    collect_spans=plan.collect_spans,
                )
                for gp in plan.gpu_plans
            ]
        return [
            execute_gpu_plan(
                gp, self._resolve_csr, plan.delegate_flags, provider=plan.provider,
                collect_spans=plan.collect_spans,
            )
            for gp in plan.gpu_plans
        ]


def resolve_backend(spec, graph) -> tuple:
    """Turn a backend request into ``(backend, engine_owns_it)``.

    Parameters
    ----------
    spec:
        ``None`` (use :func:`default_backend_name`), a registry name, or a
        live :class:`ExecutionBackend` instance (shared — e.g. one process
        pool serving several engines over the same graph).
    graph:
        The partitioned graph the backend will execute plans for.

    Returns
    -------
    (ExecutionBackend, bool)
        The backend plus whether the caller created (and therefore owns and
        must eventually close) it; passed-in instances stay caller-owned.
    """
    if isinstance(spec, ExecutionBackend):
        return spec, False
    name = default_backend_name() if spec is None else str(spec).strip().lower()
    if name == "inline":
        return InlineBackend(graph), True
    if name == "process":
        from repro.exec.process import ProcessBackend

        return ProcessBackend(graph), True
    if name == "thread":
        from repro.exec.thread import ThreadBackend

        return ThreadBackend(graph), True
    raise ValueError(
        f"unknown execution backend {spec!r}; expected one of {BACKEND_NAMES} "
        "or an ExecutionBackend instance"
    )
