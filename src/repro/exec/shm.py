"""Shared-memory buffers backing the process execution backend.

The per-GPU kernel tasks of a super-step read two kinds of data:

* the **static graph** — every GPU's four CSR subgraphs (row offsets +
  column indices), which never change after partitioning and dominate the
  bytes a worker touches; and
* the **per-step frontier bitmask buffers** — the replicated delegate
  frontier flags every backward pull tests parents against, the per-GPU
  dense normal-frontier flags, and (on the batched path) the dense lane-word
  frontiers.

Shipping either through the task pickle every super-step would serialise
the very data the pool exists to avoid copying, so
:class:`SharedGraphStore` places both in POSIX shared memory
(:mod:`multiprocessing.shared_memory`): the graph is exported once at
backend construction, the bitmask scratch is rewritten in place by the
coordinator before each dispatch (the pool barrier orders the writes
against the reads), and tasks carry only a small descriptor of names and
offsets.  Workers attach lazily and cache their attachments, so after the
first task per graph a worker reads everything through plain ``numpy``
views at memory speed.

All offsets are 8-byte aligned so the views are aligned for every dtype
involved (``int64`` offsets, ``int32``/``int64`` columns, ``uint64`` lane
words, ``bool`` flags).
"""

from __future__ import annotations

from collections import OrderedDict
from multiprocessing import shared_memory

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["SharedGraphStore", "SegmentCache", "csrs_from_descriptor", "csr_view"]

#: Subgraph attributes exported per GPU, in a fixed order.
CSR_KEYS = ("nn", "nd", "dn", "dd")


def _align(offset: int, alignment: int = 8) -> int:
    return (offset + alignment - 1) & ~(alignment - 1)


def csr_view(
    row_offsets: np.ndarray,
    column_indices: np.ndarray,
    num_rows: int,
    num_cols: int,
    edge_weights: np.ndarray | None = None,
) -> CSRGraph:
    """A :class:`CSRGraph` over existing buffers, skipping re-validation.

    The arrays were validated when the partition was built; re-running the
    O(edges) checks on every worker attach would only burn the memory
    bandwidth the shared mapping saves.
    """
    csr = object.__new__(CSRGraph)
    csr.row_offsets = row_offsets
    csr.column_indices = column_indices
    csr.num_rows = int(num_rows)
    csr.num_cols = int(num_cols)
    csr.edge_weights = edge_weights
    return csr


class FileSegment:
    """A memory-mapped file posing as a shared-memory segment.

    Graph stores (:mod:`repro.storage.segments`) are addressed with
    ``file://<path>`` segment names; attaching maps the file read-only and
    exposes the same ``buf``/``close`` surface
    :class:`multiprocessing.shared_memory.SharedMemory` has, so the cache,
    view building and eviction logic need no storage-specific branches.
    """

    def __init__(self, path: str) -> None:
        import mmap as _mmap

        self._file = open(path, "rb")
        import os as _os

        size = _os.fstat(self._file.fileno()).st_size
        self._mm = _mmap.mmap(self._file.fileno(), size, access=_mmap.ACCESS_READ)
        self.buf = memoryview(self._mm)

    def close(self) -> None:
        self.buf.release()
        self._mm.close()
        self._file.close()


#: Prefix marking a segment name as a file path rather than POSIX shm.
FILE_SEGMENT_PREFIX = "file://"


class SegmentCache:
    """Worker-side LRU cache of attached shared-memory segments.

    Keeps at most ``capacity`` segments attached; evicted segments are
    closed (their memory is freed once every process has dropped them,
    since the coordinator unlinks segments it replaces or retires).
    ``file://`` names attach graph-store files by mmap instead of POSIX
    shared memory; everything downstream of the attach is identical.
    """

    def __init__(self, capacity: int = 8) -> None:
        self.capacity = int(capacity)
        self._segments: OrderedDict[str, shared_memory.SharedMemory] = OrderedDict()
        #: Derived structures (CSR dictionaries) keyed by segment name, so a
        #: worker rebuilds views only when it first sees a graph.
        self.derived: dict[str, object] = {}

    def get(self, name: str) -> shared_memory.SharedMemory:
        segment = self._segments.get(name)
        if segment is not None:
            self._segments.move_to_end(name)
            return segment
        if name.startswith(FILE_SEGMENT_PREFIX):
            segment = FileSegment(name[len(FILE_SEGMENT_PREFIX) :])
        else:
            segment = shared_memory.SharedMemory(name=name)
        self._segments[name] = segment
        while len(self._segments) > self.capacity:
            stale_name, stale = self._segments.popitem(last=False)
            self.derived.pop(stale_name, None)
            try:
                stale.close()
            except BufferError:
                # Some numpy view into this mapping is still alive (e.g. a
                # task mid-flight holds CSR views).  Drop our reference and
                # let the mapping unmap when the last view dies — never
                # crash the worker over an eviction.
                pass
        return segment

    def touch(self, name: str) -> None:
        """Refresh ``name``'s recency without (re)attaching it."""
        if name in self._segments:
            self._segments.move_to_end(name)

    def array(self, name: str, offset: int, dtype, shape) -> np.ndarray:
        """A numpy view into segment ``name`` at ``offset``."""
        segment = self.get(name)
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        view = np.frombuffer(segment.buf, dtype=dtype, count=count, offset=offset)
        return view.reshape(shape)

    def close(self) -> None:
        for segment in self._segments.values():
            segment.close()
        self._segments.clear()
        self.derived.clear()


def csrs_from_descriptor(cache: SegmentCache, descriptor: dict) -> dict:
    """Materialise ``{(gpu, key): CSRGraph}`` views from a graph descriptor."""
    name = descriptor["segment"]
    built = cache.derived.get(name)
    if built is not None:
        # Mark the backing segment hot: the derived fast path bypasses
        # ``get``, and without the touch a heavily-reused graph segment
        # looks LRU-cold and can be evicted from under its own live views
        # while this very task still reads them.
        cache.touch(name)
        return built
    csrs: dict = {}
    for (gpu, key), entry in descriptor["csrs"].items():
        if entry[0] == "z":
            # Compressed store entry: varint payload + byte offsets in place
            # of a raw column array (see repro.storage.segments).  Weighted
            # entries append the raw weight-array offset.
            from repro.storage.codec import CompressedCSR

            _, ro_off, bo_off, pl_off, pl_len, num_rows, num_edges, col_dtype, num_cols = entry[:9]
            weights = (
                cache.array(name, entry[9], np.float64, (num_edges,))
                if len(entry) > 9
                else None
            )
            csrs[(gpu, key)] = CompressedCSR(
                payload=cache.array(name, pl_off, np.uint8, (pl_len,)),
                byte_offsets=cache.array(name, bo_off, np.int64, (num_rows + 1,)),
                row_offsets=cache.array(name, ro_off, np.int64, (num_rows + 1,)),
                num_rows=int(num_rows),
                num_cols=int(num_cols),
                column_dtype=np.dtype(col_dtype),
                edge_weights=weights,
            )
            continue
        ro_off, num_rows, ci_off, num_edges, col_dtype, num_cols = entry[:6]
        row_offsets = cache.array(name, ro_off, np.int64, (num_rows + 1,))
        columns = cache.array(name, ci_off, np.dtype(col_dtype), (num_edges,))
        weights = (
            cache.array(name, entry[6], np.float64, (num_edges,))
            if len(entry) > 6
            else None
        )
        csrs[(gpu, key)] = csr_view(row_offsets, columns, num_rows, num_cols, weights)
    cache.derived[name] = csrs
    return csrs


class SharedGraphStore:
    """Coordinator-side owner of one graph's shared-memory buffers."""

    def __init__(self, graph) -> None:
        self.graph = graph
        self.num_delegates = int(graph.num_delegates)
        self.num_locals = tuple(int(gpu.num_local) for gpu in graph.gpus)
        self._closed = False
        self._batch_generation = 0
        self._batch_segment: shared_memory.SharedMemory | None = None
        self._batch_nwords = 0

        # ---- static graph segment ------------------------------------- #
        storage = getattr(graph, "storage", "memory")
        if storage != "memory" and getattr(graph, "storage_path", None):
            # Store-backed graph: workers attach the store's graph.bin by
            # mmap (``file://`` segment) — no shm copy of the graph exists.
            from repro.storage.segments import store_graph_descriptor

            self._graph_segment = None
            self._graph_descriptor = store_graph_descriptor(graph.storage_path)
        else:
            entries: dict = {}
            offset = 0
            arrays: list[tuple[int, np.ndarray]] = []
            for g, gpu in enumerate(graph.gpus):
                for key in CSR_KEYS:
                    csr = getattr(gpu, key)
                    ro = np.ascontiguousarray(csr.row_offsets, dtype=np.int64)
                    ci = np.ascontiguousarray(csr.column_indices)
                    ro_off = _align(offset)
                    offset = ro_off + ro.nbytes
                    ci_off = _align(offset)
                    offset = ci_off + ci.nbytes
                    arrays.append((ro_off, ro))
                    arrays.append((ci_off, ci))
                    entry = (
                        ro_off,
                        csr.num_rows,
                        ci_off,
                        csr.num_edges,
                        ci.dtype.str,
                        csr.num_cols,
                    )
                    if csr.edge_weights is not None:
                        w = np.ascontiguousarray(csr.edge_weights, dtype=np.float64)
                        w_off = _align(offset)
                        offset = w_off + w.nbytes
                        arrays.append((w_off, w))
                        entry = entry + (w_off,)
                    entries[(g, key)] = entry
            self._graph_segment = shared_memory.SharedMemory(create=True, size=max(offset, 1))
            buf = self._graph_segment.buf
            for arr_off, arr in arrays:
                view = np.frombuffer(buf, dtype=arr.dtype, count=arr.size, offset=arr_off)
                view[:] = arr
            self._graph_descriptor = {
                "segment": self._graph_segment.name,
                "csrs": entries,
            }

        # ---- frontier-flag scratch (rewritten before each dispatch) ---- #
        flag_offsets = []
        offset = _align(self.num_delegates)
        for num_local in self.num_locals:
            flag_offsets.append(offset)
            offset = _align(offset + num_local)
        self._flag_offsets = tuple(flag_offsets)
        self._flags_segment = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        self._delegate_flags_view = np.frombuffer(
            self._flags_segment.buf, dtype=np.bool_, count=self.num_delegates, offset=0
        )
        self._normal_flags_views = [
            np.frombuffer(
                self._flags_segment.buf, dtype=np.bool_, count=num_local, offset=off
            )
            for num_local, off in zip(self.num_locals, self._flag_offsets)
        ]

    # ------------------------------------------------------------------ #
    # Descriptors (picklable, shipped with every task)
    # ------------------------------------------------------------------ #
    @property
    def graph_descriptor(self) -> dict:
        return self._graph_descriptor

    def flags_descriptor(self) -> tuple:
        """``(segment, num_delegates, per-GPU offsets, per-GPU local counts)``."""
        return (
            self._flags_segment.name,
            self.num_delegates,
            self._flag_offsets,
            self.num_locals,
        )

    def batch_descriptor(self) -> tuple:
        """``(segment, nwords, num_delegates, per-GPU local counts)``."""
        return (
            self._batch_segment.name,
            self._batch_nwords,
            self.num_delegates,
            self.num_locals,
        )

    # ------------------------------------------------------------------ #
    # Per-step scratch writes (coordinator side)
    # ------------------------------------------------------------------ #
    def write_delegate_flags(self, flags: np.ndarray) -> None:
        self._delegate_flags_view[:] = flags

    def write_normal_flags(self, gpu: int, flags: np.ndarray) -> None:
        self._normal_flags_views[gpu][:] = flags

    def ensure_batch_capacity(self, nwords: int) -> None:
        """Size the dense lane-word scratch for ``nwords`` words per row.

        Growing replaces the segment under a fresh name (tasks always name
        the segment they expect, so workers never read a stale layout); the
        old segment is unlinked and lingers only until the workers' caches
        evict their attachment.
        """
        if self._batch_segment is not None and nwords <= self._batch_nwords:
            return
        rows = self.num_delegates + sum(self.num_locals)
        size = max(rows * nwords * 8, 1)
        if self._batch_segment is not None:
            self._batch_segment.close()
            self._batch_segment.unlink()
        self._batch_generation += 1
        self._batch_segment = shared_memory.SharedMemory(create=True, size=size)
        self._batch_nwords = nwords

    def _batch_rows_view(self, row_start: int, rows: int) -> np.ndarray:
        """A ``(rows, capacity)`` view of the scratch's capacity-wide slots."""
        capacity = self._batch_nwords
        return np.frombuffer(
            self._batch_segment.buf,
            dtype=np.uint64,
            count=rows * capacity,
            offset=row_start * capacity * 8,
        ).reshape(rows, capacity)

    def write_dense_delegate(self, dense: np.ndarray) -> None:
        if self.num_delegates:
            self._batch_rows_view(0, self.num_delegates)[:, : dense.shape[1]] = dense

    def write_dense_normal(self, gpu: int, dense: np.ndarray) -> None:
        start = self.num_delegates + sum(self.num_locals[:gpu])
        self._batch_rows_view(start, dense.shape[0])[:, : dense.shape[1]] = dense

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release and unlink every segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        # Drop the numpy views before closing the mappings they point into.
        self._delegate_flags_view = None
        self._normal_flags_views = []
        # The graph segment is None for store-backed graphs (the store file
        # belongs to the store, never unlinked here).
        for segment in (self._graph_segment, self._flags_segment, self._batch_segment):
            if segment is None:
                continue
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass


def batch_views_from_descriptor(
    cache: SegmentCache, descriptor: tuple, gpu: int, nwords: int
) -> tuple[np.ndarray, np.ndarray]:
    """Worker-side views of the dense delegate + this GPU's normal scratch.

    The segment was sized for ``capacity >= nwords`` words per row; views
    are built over the leading ``nwords`` of each row's capacity slot.
    """
    name, capacity, num_delegates, num_locals = descriptor
    dense_delegate = cache.array(name, 0, np.uint64, (num_delegates, capacity))[
        :, :nwords
    ]
    start = num_delegates + sum(num_locals[:gpu])
    dense_normal = cache.array(
        name, start * capacity * 8, np.uint64, (num_locals[gpu], capacity)
    )[:, :nwords]
    return dense_delegate, dense_normal
