"""Pluggable execution backends for the traversal engine.

The engine (:mod:`repro.core.engine`) describes each level-synchronous
super-step as a declarative :class:`~repro.exec.plan.SuperStepPlan` — the
per-GPU visit-kernel tasks, then the (vertex, payload) exchange and the
delegate reduction folded behind the plan's ``finalize`` hook — and an
:class:`~repro.exec.backend.ExecutionBackend` decides *how* to run it:

* :class:`~repro.exec.backend.InlineBackend` executes every kernel task in
  the calling process, reproducing the classic single-process simulator
  bit for bit (same results, same workload counters, same modeled times);
* :class:`~repro.exec.process.ProcessBackend` executes the per-GPU kernel
  tasks in a persistent :mod:`multiprocessing` worker pool over
  shared-memory CSR and frontier-bitmask buffers, so the per-GPU work of a
  super-step actually runs in parallel on multi-core hosts.

Modeled times and workload counters are backend-independent by
construction (the kernels are pure functions of their inputs and all
folding happens on the coordinating process); only the measured ``wall_s``
phases depend on the backend.

Backends are selected by name — ``TraversalEngine(graph, backend="process")``,
``Session.backend("process")``, the ``--backend`` CLI flag — with the
``REPRO_BACKEND`` environment variable supplying the default.
"""

from repro.exec.backend import (
    BACKEND_NAMES,
    ExecutionBackend,
    InlineBackend,
    default_backend_name,
    resolve_backend,
)
from repro.exec.plan import (
    BatchedGPUPlan,
    BatchedVisitSpec,
    GPUPlan,
    SuperStepPlan,
    VisitSpec,
    execute_batched_gpu_plan,
    execute_gpu_plan,
)

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "InlineBackend",
    "ProcessBackend",
    "default_backend_name",
    "resolve_backend",
    "SuperStepPlan",
    "GPUPlan",
    "BatchedGPUPlan",
    "VisitSpec",
    "BatchedVisitSpec",
    "execute_gpu_plan",
    "execute_batched_gpu_plan",
]


def __getattr__(name):
    # ProcessBackend pulls in multiprocessing + shared_memory machinery;
    # import it lazily so inline-only users never pay for it.
    if name == "ProcessBackend":
        from repro.exec.process import ProcessBackend

        return ProcessBackend
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
