"""Pluggable execution backends and kernel providers for the traversal engine.

The engine (:mod:`repro.core.engine`) describes each level-synchronous
super-step as a declarative :class:`~repro.exec.plan.SuperStepPlan` — the
per-GPU visit-kernel tasks, then the (vertex, payload) exchange and the
delegate reduction folded behind the plan's ``finalize`` hook — and two
orthogonal axes decide how it runs:

**Where** — an :class:`~repro.exec.backend.ExecutionBackend`:

* :class:`~repro.exec.backend.InlineBackend` executes every kernel task in
  the calling process, reproducing the classic single-process simulator
  bit for bit (same results, same workload counters, same modeled times);
* :class:`~repro.exec.process.ProcessBackend` executes the per-GPU kernel
  tasks in a persistent :mod:`multiprocessing` worker pool over
  shared-memory CSR and frontier-bitmask buffers;
* :class:`~repro.exec.thread.ThreadBackend` executes them on a shared
  thread pool over the coordinator's own arrays — zero IPC, zero pickling;
  it scales on multi-core hosts when paired with a GIL-releasing provider.

**How** — a :class:`~repro.exec.providers.KernelProvider`:

* :class:`~repro.exec.providers.NumpyProvider` is the vectorized NumPy
  kernel suite (the historical code path, zero dependencies);
* :class:`~repro.exec.providers.NumbaProvider` is its Numba-compiled twin
  (``nopython, nogil, cache=True``), falling back to NumPy with a warning
  on hosts without Numba.

Modeled times and workload counters are backend- **and** provider-
independent by construction (the kernels are pure functions of their inputs
and all folding happens on the coordinating process); only the measured
``wall_s`` phases depend on either axis.

Backends are selected by name — ``TraversalEngine(graph, backend="thread")``,
``Session.backend("process")``, the ``--backend`` CLI flag — with the
``REPRO_BACKEND`` environment variable supplying the default; providers
likewise via ``kernels="numba"`` / ``Session.kernels(...)`` / ``--kernels``
and ``REPRO_KERNELS`` (default ``auto``: Numba when importable).
"""

from repro.exec.backend import (
    BACKEND_NAMES,
    ExecutionBackend,
    InlineBackend,
    default_backend_name,
    resolve_backend,
)
from repro.exec.plan import (
    BatchedGPUPlan,
    BatchedVisitSpec,
    GPUPlan,
    SuperStepPlan,
    VisitSpec,
    execute_batched_gpu_plan,
    execute_gpu_plan,
)
from repro.exec.providers import (
    KERNELS_ENV_VAR,
    PROVIDER_NAMES,
    KernelProvider,
    NumbaProvider,
    NumpyProvider,
    default_kernels_name,
    get_provider,
    numba_available,
    resolve_provider,
)

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "InlineBackend",
    "ProcessBackend",
    "ThreadBackend",
    "default_backend_name",
    "resolve_backend",
    "PROVIDER_NAMES",
    "KERNELS_ENV_VAR",
    "KernelProvider",
    "NumpyProvider",
    "NumbaProvider",
    "default_kernels_name",
    "numba_available",
    "get_provider",
    "resolve_provider",
    "SuperStepPlan",
    "GPUPlan",
    "BatchedGPUPlan",
    "VisitSpec",
    "BatchedVisitSpec",
    "execute_gpu_plan",
    "execute_batched_gpu_plan",
]


def __getattr__(name):
    # ProcessBackend pulls in multiprocessing + shared_memory machinery and
    # ThreadBackend a thread pool; import them lazily so inline-only users
    # never pay for either.
    if name == "ProcessBackend":
        from repro.exec.process import ProcessBackend

        return ProcessBackend
    if name == "ThreadBackend":
        from repro.exec.thread import ThreadBackend

        return ThreadBackend
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
