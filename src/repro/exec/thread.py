"""Thread-pool execution backend: shared memory for free, no IPC at all.

:class:`ThreadBackend` is the third execution backend: each GPU's kernel
tasks run as jobs on a process-global :class:`~concurrent.futures.
ThreadPoolExecutor`.  Threads share the coordinator's address space, so the
CSR subgraphs, frontier flag buffers and dense lane-word arrays are read in
place — zero pickling, zero shared-memory export, zero per-task IPC — which
makes this backend strictly cheaper to enter than the
:class:`~repro.exec.process.ProcessBackend` and its fork+shm machinery.

Whether it *scales* depends on the kernel provider: the NumPy kernels hold
the GIL for most of their work, so threads serialize and this backend
behaves like :class:`~repro.exec.backend.InlineBackend` with a small
scheduling overhead.  The Numba provider's kernels are compiled with
``nogil=True``, so per-GPU tasks genuinely overlap on multi-core hosts —
the pairing this backend exists for (ROADMAP item 1: JIT + threads beats
fork + shm IPC).  Either way the outputs are bit-identical: the provider
contract guarantees results, counters and modeled times do not depend on
where or how the kernels ran.

Like the process pool, the executor is process-global and keyed by width, so
engine churn (serve replicas, dynamic-graph rebuilds) reuses threads instead
of respawning them; ``close()`` is therefore a no-op and the pool is torn
down at interpreter exit.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ThreadPoolExecutor

from repro.exec.backend import ExecutionBackend
from repro.exec.plan import SuperStepPlan, execute_batched_gpu_plan, execute_gpu_plan

__all__ = ["ThreadBackend", "MAX_WORKERS", "shutdown_executors"]

#: Upper bound on pool width, mirroring :data:`repro.exec.process.MAX_WORKERS`.
MAX_WORKERS = 8

#: Process-global executors keyed by worker count (see module docstring).
_EXECUTORS: dict[int, ThreadPoolExecutor] = {}


def _get_executor(workers: int) -> ThreadPoolExecutor:
    executor = _EXECUTORS.get(workers)
    if executor is None:
        executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-kernels"
        )
        _EXECUTORS[workers] = executor
    return executor


def shutdown_executors() -> None:
    """Shut down every process-global kernel thread pool (atexit hook)."""
    for executor in _EXECUTORS.values():
        executor.shutdown(wait=False, cancel_futures=True)
    _EXECUTORS.clear()


atexit.register(shutdown_executors)


class ThreadBackend(ExecutionBackend):
    """Run per-GPU kernel tasks on a shared thread pool (see module docstring).

    Parameters
    ----------
    graph:
        The partitioned graph whose plans this backend executes.
    workers:
        Pool width; defaults to ``min(num_gpus, cpu_count, MAX_WORKERS)``.
    """

    name = "thread"

    def __init__(self, graph, workers: int | None = None) -> None:
        self.graph = graph
        if workers is None:
            cpu = os.cpu_count() or 1
            workers = max(1, min(graph.num_gpus or 1, cpu, MAX_WORKERS))
        self.workers = int(workers)
        self._executor = _get_executor(self.workers)

    def _resolve_csr(self, gpu: int, name: str):
        return getattr(self.graph.gpus[gpu], name)

    def _execute_kernels(self, plan: SuperStepPlan) -> list:
        if plan.batched:
            futures = [
                self._executor.submit(
                    execute_batched_gpu_plan,
                    gp,
                    self._resolve_csr,
                    plan.dense_delegate,
                    plan.provider,
                    plan.collect_spans,
                )
                for gp in plan.gpu_plans
            ]
        else:
            futures = [
                self._executor.submit(
                    execute_gpu_plan,
                    gp,
                    self._resolve_csr,
                    plan.delegate_flags,
                    False,
                    plan.provider,
                    plan.collect_spans,
                )
                for gp in plan.gpu_plans
            ]
        return [f.result() for f in futures]

    def close(self) -> None:
        """No-op: the thread pool is process-global and shared (see module docstring)."""
