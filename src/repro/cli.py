"""Command-line interface.

A thin, scriptable front-end over the library for the common workflows a
downstream user needs without writing Python:

``python -m repro.cli generate``
    Generate a prepared Graph500 RMAT graph (or a synthetic Friendster/WDC
    substitute) and save it as an ``.npz`` edge list.
``python -m repro.cli build``
    Build an on-disk graph store *out of core*: edges are streamed in bounded
    chunks through the external-memory sort/merge pipeline
    (:mod:`repro.storage`) into a memory-mapped (or compressed) CSR store,
    so peak memory never holds the whole edge list.  The store is loaded
    back with ``--store`` on ``bfs``/``components``.
``python -m repro.cli bfs``
    Partition a graph over a virtual cluster and run (DO)BFS from one or more
    sources — hop levels by default, Graph500-style parent trees with
    ``--algorithm parents`` — printing traversal rates and the runtime
    breakdown.
``python -m repro.cli components``
    Run distributed connected components (min-label propagation) over the
    same engine and report the component structure.
``python -m repro.cli sssp``
    Weighted single-source shortest paths over the same engine: the
    delta-stepping bucketed schedule by default (``--delta`` picks the
    bucket width), the plain Bellman-Ford schedule with ``--bellman-ford``.
    Needs a weighted graph (``--weights SEED`` on ``--scale`` generation,
    or an npz/store built with weights); ``--validate`` checks bit-exact
    against a serial Dijkstra oracle.
``python -m repro.cli pagerank``
    PageRank over the engine's value-sweep path: ``--mode fixed`` runs a
    deterministic integer fixed-point sweep (bit-identical across backends,
    providers and storage tiers), ``--mode push`` the residual-push variant
    that converges to ``--eps``.  Works on weighted and unweighted graphs.
``python -m repro.cli census``
    Print the Figure-5 style edge-category census for a sweep of degree
    thresholds, plus the suggested threshold for a given GPU count.
``python -m repro.cli bench``
    The benchmark & perf-regression harness: ``bench list`` names the
    registered scenarios, ``bench run`` times them and writes a
    ``BENCH_<timestamp>.json`` artifact, ``bench compare`` diffs two
    artifacts and exits non-zero on regressions or counter drift (the CI
    perf gate; ``--fail-on counters`` keys the exit code on drift alone,
    the blocking half of the gate).
``python -m repro.cli serve``
    The query-serving subsystem: ``serve bench`` replays a deterministic
    Zipf-skewed query stream through the batched :class:`QueryService` and
    the sequential baseline, reporting queries/second for both; with
    ``--update-rate`` the stream mixes in edge-update batches served through
    a mutable graph with epoch-bump cache invalidation.
``python -m repro.cli trace``
    Inspect traces: ``trace summarize`` aggregates a trace written by
    ``--trace PATH`` (or ``$REPRO_TRACE``) into per-span totals.  The
    traversal and serving subcommands plus ``bench run`` accept ``--trace``;
    a ``.jsonl`` suffix writes line-delimited events, anything else writes
    Chrome ``trace_event`` JSON loadable in Perfetto.  Tracing never changes
    results or gated counters — only wall clock, within noise.
``python -m repro.cli mutate``
    The dynamic-graph subsystem: apply a deterministic update stream to a
    mutable graph while incrementally maintaining a traversal answer
    (BFS levels, connected components, or weighted shortest paths with
    ``--program sssp --weights SEED``), verifying every repaired answer
    against a from-scratch run and reporting the repair-vs-recompute
    traversal work.

All graph subcommands accept either ``--npz PATH`` (a previously generated
graph) or ``--scale N`` (generate an RMAT graph on the fly); ``bfs``,
``components``, ``census`` and ``serve bench`` accept ``--json`` for
machine-readable output.  The traversal-running subcommands (``bfs``,
``components``, ``mutate``, ``bench run``, ``serve bench``) accept
``--backend inline|process|thread`` to choose *where* super-steps execute
(default: ``$REPRO_BACKEND`` or inline) and ``--kernels numpy|numba|auto``
to choose *how* the visit kernels run (default: ``$REPRO_KERNELS`` or
``auto``, which uses Numba when importable and NumPy otherwise).  Both axes
change wall-clock only — results, workload counters and modeled times are
identical across every combination.  The one rejected combination is an
explicit ``--backend process --kernels numba``: forked workers each redo
the JIT warm-up, so the pairing is refused with exit code 2 rather than
silently serving worst-of-both performance.

``bfs``, ``components`` and ``bench run`` also accept ``--storage
memory|mmap|compressed`` (default: ``$REPRO_STORAGE`` or memory), a third
run-time axis choosing *where the adjacency lives* — process heap,
memory-mapped store segments, or delta+varint compressed segments.  Like
backend and kernels it changes wall-clock and memory only; counters and
results are bit-identical.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` CLI."""
    import repro

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Degree-separated distributed graph traversal on a simulated GPU cluster",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {repro.__version__}",
        help="print the package version (from the project metadata) and exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a prepared graph and save it as .npz")
    gen.add_argument("--kind", choices=["rmat", "friendster", "wdc"], default="rmat")
    gen.add_argument("--scale", type=int, default=16, help="log2 of the vertex count")
    gen.add_argument("--seed", type=int, default=11)
    gen.add_argument(
        "--weights",
        type=int,
        default=None,
        metavar="SEED",
        help="attach deterministic edge-keyed float64 weights with this seed "
        "(required by the weighted programs: sssp, mutate --program sssp)",
    )
    gen.add_argument("--output", type=Path, required=True)

    build = sub.add_parser(
        "build", help="stream edges through the out-of-core pipeline into a graph store"
    )
    build_graph = build.add_mutually_exclusive_group()
    build_graph.add_argument(
        "--npz", type=Path, help="edge list saved by `repro generate` (re-chunked)"
    )
    build_graph.add_argument(
        "--binary", type=Path, help="raw binary edge list (streamed, never fully loaded)"
    )
    build_graph.add_argument(
        "--scale", type=int, default=19, help="RMAT scale to stream-generate (default)"
    )
    build.add_argument(
        "--kind",
        choices=["rmat", "wdc"],
        default="rmat",
        help="generator for --scale builds (chunked RMAT or chunked WDC-like)",
    )
    build.add_argument("--seed", type=int, default=11)
    _add_cluster_args(build)
    build.add_argument(
        "--storage",
        choices=["mmap", "compressed"],
        default="mmap",
        help="on-disk CSR layout: raw memory-mapped or delta+varint compressed",
    )
    build.add_argument("--out", type=Path, required=True, help="store directory to create")
    build.add_argument(
        "--chunk-edges",
        type=int,
        default=1 << 20,
        help="edges per generator chunk (bounds generation memory)",
    )
    build.add_argument(
        "--block-edges",
        type=int,
        default=1 << 20,
        help="edges per sort/merge block (bounds build memory)",
    )
    build.add_argument(
        "--keep-scratch", action="store_true", help="keep the intermediate run/bucket files"
    )
    build.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    bfs = sub.add_parser("bfs", help="partition a graph and run (DO)BFS")
    _add_graph_args(bfs, store=True)
    _add_cluster_args(bfs)
    _add_backend_arg(bfs)
    _add_kernels_arg(bfs)
    _add_storage_arg(bfs)
    _add_trace_arg(bfs)
    bfs.add_argument(
        "--algorithm",
        choices=["levels", "parents"],
        default="levels",
        help="output hop levels (the paper) or a Graph500-style parent tree",
    )
    bfs.add_argument("--sources", type=int, default=5, help="number of random sources")
    bfs.add_argument("--source", type=int, default=None, help="explicit source vertex")
    bfs.add_argument("--no-direction-optimization", action="store_true")
    bfs.add_argument("--local-all2all", action="store_true")
    bfs.add_argument("--uniquify", action="store_true")
    bfs.add_argument("--nonblocking-reduce", action="store_true")
    bfs.add_argument("--validate", action="store_true", help="check against a serial oracle")
    bfs.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    comp = sub.add_parser(
        "components", help="distributed connected components (label propagation)"
    )
    _add_graph_args(comp, store=True)
    _add_cluster_args(comp)
    _add_backend_arg(comp)
    _add_kernels_arg(comp)
    _add_storage_arg(comp)
    comp.add_argument("--validate", action="store_true", help="check against union-find")
    comp.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    sssp = sub.add_parser(
        "sssp", help="weighted single-source shortest paths (delta-stepping)"
    )
    _add_graph_args(sssp, store=True)
    _add_cluster_args(sssp)
    _add_backend_arg(sssp)
    _add_kernels_arg(sssp)
    _add_storage_arg(sssp)
    _add_trace_arg(sssp)
    sssp.add_argument("--sources", type=int, default=3, help="number of random sources")
    sssp.add_argument("--source", type=int, default=None, help="explicit source vertex")
    sssp.add_argument(
        "--delta",
        default="auto",
        help="bucket width: a positive float, 'auto' (1/avg-degree) or 'inf' "
        "(one bucket = the Bellman-Ford schedule)",
    )
    sssp.add_argument(
        "--bellman-ford",
        action="store_true",
        help="run the plain Bellman-Ford program instead of the bucketed driver "
        "(the workload baseline; identical distances)",
    )
    sssp.add_argument(
        "--validate", action="store_true", help="check against a serial Dijkstra oracle"
    )
    sssp.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    pr = sub.add_parser("pagerank", help="PageRank over the delegate-partitioned engine")
    _add_graph_args(pr, store=True)
    _add_cluster_args(pr)
    _add_backend_arg(pr)
    _add_kernels_arg(pr)
    _add_storage_arg(pr)
    _add_trace_arg(pr)
    pr.add_argument("--damping", type=float, default=0.85, help="damping factor in (0, 1)")
    pr.add_argument(
        "--mode",
        choices=["fixed", "push"],
        default="fixed",
        help="fixed sweep count (deterministic, the gated mode) or "
        "residual-push to an eps threshold",
    )
    pr.add_argument("--iterations", type=int, default=20, help="sweeps in fixed mode")
    pr.add_argument(
        "--eps", type=float, default=1e-7, help="residual threshold in push mode"
    )
    pr.add_argument("--top", type=int, default=5, help="highest-ranked vertices to print")
    pr.add_argument(
        "--validate",
        action="store_true",
        help="check against the serial reference (exact in fixed mode, "
        "float power iteration in push mode)",
    )
    pr.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    census = sub.add_parser("census", help="edge-category census vs degree threshold")
    _add_graph_args(census)
    census.add_argument("--gpus", type=int, default=8, help="GPU count for the TH suggestion")
    census.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    mut = sub.add_parser(
        "mutate", help="apply an update stream with incremental traversal maintenance"
    )
    _add_graph_args(mut)
    _add_cluster_args(mut)
    _add_backend_arg(mut)
    _add_kernels_arg(mut)
    mut.add_argument(
        "--program",
        choices=["levels", "components", "sssp"],
        default="levels",
        help="which maintained answer to repair across the stream "
        "(sssp needs a weighted graph: --weights)",
    )
    mut.add_argument(
        "--source", type=int, default=None, help="BFS/SSSP source (default: a random one)"
    )
    mut.add_argument("--batches", type=int, default=4, help="update batches to apply")
    mut.add_argument(
        "--edges-per-batch", type=int, default=1024, help="undirected updates per batch"
    )
    mut.add_argument(
        "--style",
        choices=["uniform", "pa"],
        default="uniform",
        help="update style: uniform or preferential attachment",
    )
    mut.add_argument(
        "--delete-fraction",
        type=float,
        default=0.0,
        help="share of each batch that deletes existing edges",
    )
    mut.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the per-batch bit-identical check against a from-scratch run",
    )
    mut.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    bench = sub.add_parser("bench", help="benchmark harness and perf-regression gate")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    b_list = bench_sub.add_parser("list", help="list registered benchmark scenarios")
    b_list.add_argument("--quick", action="store_true", help="only the CI smoke subset")
    b_list.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    b_run = bench_sub.add_parser("run", help="time scenarios and write a BENCH artifact")
    b_run.add_argument("--quick", action="store_true", help="run the CI smoke subset")
    b_run.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="run a specific scenario (repeatable); default: the full registry",
    )
    b_run.add_argument(
        "--repeats", type=int, default=3, help="traversal passes per source (wall = min)"
    )
    b_run.add_argument(
        "--output",
        type=Path,
        default=None,
        help="artifact path (default: BENCH_<timestamp>.json in the cwd)",
    )
    b_run.add_argument("--label", default="", help="free-form snapshot label")
    b_run.add_argument("--json", action="store_true", help="print the artifact to stdout")
    b_run.add_argument(
        "--serve-sequential",
        action="store_true",
        help="run serving scenarios through the sequential baseline instead of "
        "the batched service (the 'before' half of a before/after pair)",
    )
    b_run.add_argument(
        "--cluster-no-hedge",
        action="store_true",
        help="run cluster serving scenarios without request hedging (the "
        "'before' half of a tail-latency before/after pair; gated counters "
        "stay identical because the primary timeline is hedge-independent)",
    )
    b_run.add_argument(
        "--dyn-recompute",
        action="store_true",
        help="time dynamic scenarios' maintained path as full recompute instead "
        "of incremental repair (the 'before' half of a before/after pair; "
        "counters stay identical because both paths always run and agree)",
    )
    from repro.exec.backend import BACKEND_NAMES
    from repro.exec.providers import PROVIDER_NAMES

    b_run.add_argument(
        "--backend",
        choices=list(BACKEND_NAMES),
        default=None,
        help="force every scenario onto this execution backend "
        "(default: each scenario's own, normally inline)",
    )
    b_run.add_argument(
        "--kernels",
        choices=list(PROVIDER_NAMES),
        default=None,
        help="kernel provider for every scenario; the resolved provider is "
        "recorded per artifact record, never in the scenario spec "
        "(default: $REPRO_KERNELS or auto)",
    )
    from repro.storage import STORAGE_NAMES

    b_run.add_argument(
        "--storage",
        choices=list(STORAGE_NAMES),
        default=None,
        help="adjacency storage for every scenario; like --kernels this is a "
        "run-time axis recorded per artifact record, never in the scenario "
        "spec (default: $REPRO_STORAGE or memory; dynamic/serve-with-update "
        "scenarios pin memory and record what actually ran)",
    )
    _add_trace_arg(b_run)

    b_cmp = bench_sub.add_parser("compare", help="diff two BENCH artifacts (perf gate)")
    b_cmp.add_argument(
        "old",
        help="baseline artifact: a path, a glob (newest match wins), "
        "'latest' or 'latest~N' over ./BENCH_*.json",
    )
    b_cmp.add_argument(
        "new",
        help="candidate artifact: same selector syntax as the baseline",
    )
    b_cmp.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="relative wall-clock noise band (0.2 = ±20%%)",
    )
    b_cmp.add_argument(
        "--min-delta-ms",
        type=float,
        default=10.0,
        help="absolute wall-clock noise floor; smaller deltas are never flagged",
    )
    b_cmp.add_argument(
        "--fail-on",
        choices=["any", "counters", "none"],
        default="any",
        help="what makes the exit code non-zero: any finding (regressions or "
        "counter drift, the default), counter drift only (the blocking CI "
        "gate), or nothing (report only)",
    )
    b_cmp.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    serve = sub.add_parser("serve", help="batched multi-source query serving")
    serve_sub = serve.add_subparsers(dest="serve_command", required=True)
    s_bench = serve_sub.add_parser(
        "bench",
        help="replay a Zipf query stream through the service; report queries/sec",
    )
    _add_graph_args(s_bench)
    _add_cluster_args(s_bench)
    _add_backend_arg(s_bench)
    _add_kernels_arg(s_bench)
    s_bench.add_argument("--queries", type=int, default=256, help="query stream length")
    s_bench.add_argument(
        "--skew", type=float, default=1.0, help="Zipf exponent of source popularity"
    )
    s_bench.add_argument(
        "--pool", type=int, default=192, help="candidate source pool size"
    )
    s_bench.add_argument(
        "--batch-size", type=int, default=32, help="lanes per fused MS-BFS sweep"
    )
    s_bench.add_argument(
        "--cache-size", type=int, default=128, help="LRU result-cache capacity"
    )
    s_bench.add_argument(
        "--program",
        choices=["levels", "khop", "sssp", "pagerank"],
        default="levels",
        help="query program served to every request (sssp needs a weighted "
        "graph: --weights)",
    )
    s_bench.add_argument("--max-hops", type=int, default=3, help="hop cap for khop")
    s_bench.add_argument(
        "--update-rate",
        type=float,
        default=0.0,
        help="fraction of operations that are edge-update batches (serves a "
        "mutable graph with epoch-bump cache invalidation when > 0)",
    )
    s_bench.add_argument(
        "--update-edges",
        type=int,
        default=256,
        help="undirected insertions per update batch (with --update-rate)",
    )
    s_bench.add_argument(
        "--update-style",
        choices=["uniform", "pa"],
        default="uniform",
        help="update style for the mixed stream (with --update-rate)",
    )
    s_bench.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the sequential-service baseline replay",
    )
    s_bench.add_argument(
        "--arrivals",
        choices=["closed", "poisson", "bursty", "diurnal"],
        default="closed",
        help="arrival process: 'closed' replays the stream closed-loop through "
        "one service (the default); the open-loop processes replay timed "
        "arrivals through the replicated cluster tier on a virtual clock",
    )
    s_bench.add_argument(
        "--rate",
        type=float,
        default=None,
        help="offered load in queries/second (open-loop arrivals only; "
        "default 500)",
    )
    s_bench.add_argument(
        "--replicas",
        type=int,
        default=None,
        help="serving replicas in the cluster tier (open-loop only; default 2)",
    )
    s_bench.add_argument(
        "--queue-limit",
        type=int,
        default=None,
        help="admission bound on in-flight requests, 0 = unbounded "
        "(open-loop only; default 64)",
    )
    s_bench.add_argument(
        "--no-hedge",
        action="store_true",
        help="disable request hedging in the cluster tier (open-loop only)",
    )
    s_bench.add_argument(
        "--hedge-quantile",
        type=float,
        default=None,
        help="hedge a straggler once its age passes this latency quantile "
        "(open-loop only, needs >= 2 replicas; default 0.95)",
    )
    s_bench.add_argument(
        "--slo-ms",
        type=float,
        default=None,
        help="latency objective in ms for the SLO-violation counter "
        "(open-loop only; default off)",
    )
    _add_trace_arg(s_bench)
    s_bench.add_argument(
        "--prom",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the serving stats snapshot as Prometheus text exposition "
        "format to PATH after the replay",
    )
    s_bench.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    trace = sub.add_parser(
        "trace", help="inspect traces written by --trace / $REPRO_TRACE"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    t_sum = trace_sub.add_parser(
        "summarize", help="aggregate a trace into per-span duration totals"
    )
    t_sum.add_argument("path", type=Path, help="trace file (.jsonl or Chrome JSON)")
    t_sum.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    return parser


def _add_graph_args(sub: argparse.ArgumentParser, store: bool = False) -> None:
    group = sub.add_mutually_exclusive_group()
    group.add_argument("--npz", type=Path, help="edge list saved by `repro generate`")
    group.add_argument("--scale", type=int, default=14, help="RMAT scale to generate on the fly")
    if store:
        group.add_argument(
            "--store", type=Path, help="graph store directory built by `repro build`"
        )
    sub.add_argument("--seed", type=int, default=11)
    sub.add_argument(
        "--weights",
        type=int,
        default=None,
        metavar="SEED",
        help="attach edge-keyed weights to the on-the-fly --scale graph "
        "(npz/store graphs carry their own weights; combining is an error)",
    )


def _add_cluster_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--layout", default="4x1x2", help="nodes x ranks-per-node x gpus-per-rank")
    sub.add_argument("--threshold", type=int, default=None, help="degree threshold TH")


def _add_backend_arg(sub: argparse.ArgumentParser) -> None:
    from repro.exec.backend import BACKEND_NAMES

    sub.add_argument(
        "--backend",
        choices=list(BACKEND_NAMES),
        default=None,
        help="execution backend for super-steps "
        "(default: $REPRO_BACKEND or inline)",
    )


def _add_kernels_arg(sub: argparse.ArgumentParser) -> None:
    from repro.exec.providers import PROVIDER_NAMES

    sub.add_argument(
        "--kernels",
        choices=list(PROVIDER_NAMES),
        default=None,
        help="kernel provider for the visit kernels; identical results, "
        "different wall-clock (default: $REPRO_KERNELS or auto = Numba "
        "when importable, NumPy otherwise)",
    )


def _add_storage_arg(sub: argparse.ArgumentParser) -> None:
    from repro.storage import STORAGE_NAMES

    sub.add_argument(
        "--storage",
        choices=list(STORAGE_NAMES),
        default=None,
        help="adjacency storage: in-memory arrays, a memory-mapped store, or "
        "a compressed store with lazy row decode; identical results "
        "(default: $REPRO_STORAGE or memory)",
    )


def _add_trace_arg(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="record a trace of the run: a .jsonl suffix writes line-delimited "
        "events, anything else Chrome trace_event JSON (Perfetto-loadable); "
        "results and gated counters are unchanged "
        "(default: $REPRO_TRACE when set)",
    )


@contextlib.contextmanager
def _tracing(args: argparse.Namespace):
    """Install a process-wide tracer for the command when one was requested.

    ``--trace PATH`` wins; ``$REPRO_TRACE`` is the ambient fallback so CI and
    wrappers can trace without threading a flag through.  On exit the trace
    is exported (format by suffix) and the previous tracer restored; with
    neither source set this is a no-op and the null tracer stays installed.
    """
    path = getattr(args, "trace", None)
    if path is None:
        env = os.environ.get("REPRO_TRACE", "")
        path = Path(env) if env else None
    if path is None:
        yield
        return
    from repro.obs import Tracer, set_tracer, write_trace

    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        yield
    finally:
        set_tracer(previous)
        out = write_trace(tracer, path)
        print(f"trace: {len(tracer.events)} events -> {out}", file=sys.stderr)


def _exec_args_error(args: argparse.Namespace) -> str | None:
    """Reject the one backend/provider pairing that can only hurt.

    ``--backend process --kernels numba`` makes every forked worker redo the
    Numba JIT warm-up (the on-disk cache still costs a per-process load, and
    compiler state inherited mid-fork is not fork-safe), so the explicit
    pairing is refused.  ``auto`` stays allowed: it resolves per process and
    is the deliberate escape hatch for hosts where the pairing measures well.
    """
    if getattr(args, "backend", None) == "process" and getattr(args, "kernels", None) == "numba":
        return (
            "--backend process --kernels numba pays the Numba JIT warm-up in "
            "every forked worker; use --backend thread (JIT kernels release "
            "the GIL) or drop --kernels and let auto decide per process"
        )
    return None


def _check_exec_args(args: argparse.Namespace) -> int | None:
    """Shared exit-2 path for invalid ``--backend``/``--kernels`` combos."""
    error = _exec_args_error(args)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return None


def _load_graph(args: argparse.Namespace):
    from repro.graph.io import load_npz
    from repro.graph.rmat import generate_rmat

    if getattr(args, "npz", None):
        return load_npz(args.npz)
    return generate_rmat(
        args.scale, rng=args.seed, weights_seed=getattr(args, "weights", None)
    )


def _check_weights_arg(args: argparse.Namespace) -> int | None:
    """Exit-2 path for ``--weights`` against a graph that ships its own.

    ``--weights`` seeds weights for on-the-fly ``--scale`` generation; an
    npz archive or graph store either carries weights or was deliberately
    built without them, and silently ignoring the flag would let e.g.
    ``sssp --npz unweighted.npz --weights 7`` look configured while failing
    later for a different-sounding reason.
    """
    if getattr(args, "weights", None) is None:
        return None
    if getattr(args, "npz", None) is not None or getattr(args, "store", None) is not None:
        print(
            "error: --weights only applies to --scale generation; npz/store "
            "graphs carry their own weights (regenerate with "
            "`repro generate --weights` to attach them)",
            file=sys.stderr,
        )
        return 2
    return None


def _partition(args: argparse.Namespace, edges):
    """Shared partitioning step of the traversal subcommands."""
    from repro.partition.delegates import suggest_threshold
    from repro.partition.layout import ClusterLayout
    from repro.partition.subgraphs import build_partitions

    layout = ClusterLayout.from_notation(args.layout)
    threshold = (
        args.threshold if args.threshold is not None else suggest_threshold(edges, layout.num_gpus)
    )
    return build_partitions(edges, layout, threshold), layout, threshold


def _obtain_graph(args: argparse.Namespace):
    """Resolve ``--store`` / ``--npz`` / ``--scale`` (+ ``--storage``) into a
    partitioned graph.

    Returns ``(edges, graph)``; ``edges`` is ``None`` for store-backed loads
    (a store holds only the partitioned CSRs, not the raw edge list).
    """
    store = getattr(args, "store", None)
    if store is not None:
        from repro.storage import load_graph_store

        return None, load_graph_store(store)
    edges = _load_graph(args)
    graph, _, _ = _partition(args, edges)
    from repro.storage import apply_storage, default_storage_name

    storage = getattr(args, "storage", None) or default_storage_name()
    if storage != "memory":
        graph = apply_storage(graph, storage)
    return edges, graph


def _graph_info(graph) -> dict:
    return {
        "vertices": int(graph.num_vertices),
        "directed_edges": int(graph.num_directed_edges),
        "layout": graph.layout.notation(),
        "threshold": int(graph.separation.threshold),
        "delegates": int(graph.num_delegates),
        "storage": getattr(graph, "storage", "memory"),
    }


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.graph.generators import friendster_like, wdc_like
    from repro.graph.io import save_npz
    from repro.graph.rmat import generate_rmat

    if args.kind == "rmat":
        edges = generate_rmat(args.scale, rng=args.seed, weights_seed=args.weights)
    elif args.kind == "friendster":
        edges = friendster_like(
            num_vertices=1 << args.scale, rng=args.seed, weights_seed=args.weights
        ).prepared()
    else:
        edges = wdc_like(
            num_vertices=1 << args.scale, rng=args.seed, weights_seed=args.weights
        ).prepared()
    save_npz(args.output, edges)
    weighted = ", weighted" if edges.weights is not None else ""
    print(
        f"wrote {args.output}: {edges.num_vertices:,} vertices, "
        f"{edges.num_edges:,} directed edges ({args.kind}, scale {args.scale}{weighted})"
    )
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    from repro.partition.layout import ClusterLayout
    from repro.storage import external_build
    from repro.utils.rss import max_rss_mb

    if args.chunk_edges < 1 or args.block_edges < 1:
        print("error: --chunk-edges and --block-edges must be >= 1", file=sys.stderr)
        return 2
    layout = ClusterLayout.from_notation(args.layout)
    if args.npz is not None:
        from repro.graph.io import load_npz
        from repro.storage import chunks_from_edgelist

        edges = load_npz(args.npz)
        num_vertices = edges.num_vertices
        chunks = chunks_from_edgelist(edges, args.chunk_edges)
        source = f"npz {args.npz}"
    elif args.binary is not None:
        from repro.graph.io import binary_edge_count, iter_binary

        num_vertices, _ = binary_edge_count(args.binary)
        chunks = iter_binary(args.binary, args.chunk_edges)
        source = f"binary {args.binary}"
    elif args.kind == "wdc":
        from repro.graph.generators import wdc_like_edge_chunks

        num_vertices = 1 << args.scale
        chunks = wdc_like_edge_chunks(
            num_vertices=num_vertices, seed=args.seed, chunk_edges=args.chunk_edges
        )
        source = f"wdc scale {args.scale}"
    else:
        from repro.graph.rmat import generate_rmat_edge_chunks

        num_vertices = 1 << args.scale
        chunks = generate_rmat_edge_chunks(
            args.scale, seed=args.seed, chunk_edges=args.chunk_edges
        )
        source = f"rmat scale {args.scale}"

    path, report = external_build(
        chunks,
        num_vertices,
        layout,
        args.out,
        threshold=args.threshold,
        storage=args.storage,
        block_edges=args.block_edges,
        keep_scratch=args.keep_scratch,
    )
    report["source"] = source
    report["max_rss_mb"] = max_rss_mb()
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    walls = report["walls"]
    print(f"built {path} ({report['storage']}) from {source}")
    print(
        f"  {report['num_vertices']:,} vertices, "
        f"{report['num_directed_edges']:,} directed edges, "
        f"TH={report['threshold']}, {report['num_delegates']:,} delegates, "
        f"{report['num_chunks']} chunks -> {report['num_runs']} sorted runs"
    )
    print(
        "  "
        + " | ".join(f"{name} {wall:.2f} s" for name, wall in walls.items())
        + f" | total {sum(walls.values()):.2f} s"
    )
    print(f"  peak RSS {report['max_rss_mb']:.1f} MiB")
    return 0


def _cmd_bfs(args: argparse.Namespace) -> int:
    from repro.baselines.serial_bfs import serial_bfs
    from repro.core.campaign import run_campaign
    from repro.core.engine import TraversalEngine
    from repro.core.options import BFSOptions
    from repro.core.programs import BFSLevels, BFSParents
    from repro.graph.csr import CSRGraph
    from repro.graph.degree import out_degrees
    from repro.utils.rng import random_sources
    from repro.validate.graph500 import validate_distances, validate_parent_tree

    invalid = _check_exec_args(args)
    if invalid is not None:
        return invalid
    if args.validate and getattr(args, "store", None) is not None:
        print(
            "error: --validate needs the raw edge list, which a graph store "
            "does not keep; validate against --npz/--scale instead",
            file=sys.stderr,
        )
        return 2
    edges, graph = _obtain_graph(args)
    layout, threshold = graph.layout, graph.separation.threshold
    options = BFSOptions(
        direction_optimized=not args.no_direction_optimization,
        local_all2all=args.local_all2all or args.uniquify,
        uniquify=args.uniquify,
        blocking_reduce=not args.nonblocking_reduce,
    )
    engine = TraversalEngine(graph, options=options, backend=args.backend, kernels=args.kernels)
    if not args.json:
        print(
            f"graph: {graph.num_vertices:,} vertices, {graph.num_directed_edges:,} edges | "
            f"cluster {layout.notation()} | TH={threshold} | "
            f"delegates {graph.num_delegates:,} | options {options.label()} | "
            f"algorithm {args.algorithm} | backend {engine.backend_name} | "
            f"kernels {engine.provider_name} | "
            f"storage {getattr(graph, 'storage', 'memory')}"
        )

    if args.source is not None:
        sources = np.asarray([args.source], dtype=np.int64)
    else:
        degrees = out_degrees(edges) if edges is not None else graph.separation.degrees
        sources = random_sources(
            graph.num_vertices, args.sources, rng=args.seed + 1, degrees=degrees
        )

    oracle = CSRGraph.from_edgelist(edges) if args.validate else None
    if args.algorithm == "parents":
        program_factory = lambda s: BFSParents(source=s)  # noqa: E731
    else:
        program_factory = lambda s: BFSLevels(source=s)  # noqa: E731

    def validate(result) -> None:
        if oracle is None:
            return
        reference = serial_bfs(oracle, result.source)
        if args.algorithm == "parents":
            report = validate_parent_tree(edges, result.source, result.parents, reference)
        else:
            report = validate_distances(edges, result.source, result.distances, reference)
        report.raise_if_invalid()

    def report_line(result) -> None:
        if args.json:
            return
        if not result.traversed_more_than_one_iteration():
            print(f"  source {result.source}: skipped (single-iteration run)")
            return
        t = result.timing
        print(
            f"  source {result.source:>9}: {result.num_visited:,} visited, "
            f"{result.iterations} iters, {t.elapsed_ms:.3f} ms, {result.gteps():.3f} GTEPS "
            f"[comp {t.computation:.3f} | local {t.local_communication:.3f} | "
            f"normal {t.remote_normal_exchange:.3f} | delegate {t.remote_delegate_reduce:.3f}]"
        )

    try:
        campaign = run_campaign(
            engine, sources, program_factory=program_factory, validate=validate, on_result=report_line
        )
        backend_name = engine.backend_name
        kernels_name = engine.provider_name
    finally:
        engine.close()

    if args.json:
        print(
            json.dumps(
                {
                    "graph": _graph_info(graph),
                    "options": options.label(),
                    "algorithm": args.algorithm,
                    "backend": backend_name,
                    "kernels": kernels_name,
                    "runs": [r.summary() for r in campaign],
                    "campaign": campaign.summary(),
                    "validated": bool(args.validate),
                },
                indent=2,
            )
        )
        return 0

    if campaign.reported:
        print(
            f"geometric mean: {campaign.geo_mean_gteps():.3f} GTEPS "
            f"over {len(campaign.reported)} runs"
        )
        if args.validate:
            print("all runs validated against the serial oracle")
    return 0


def _cmd_components(args: argparse.Namespace) -> int:
    from repro.baselines.union_find import serial_components
    from repro.core.engine import TraversalEngine
    from repro.core.programs import ConnectedComponents

    invalid = _check_exec_args(args)
    if invalid is not None:
        return invalid
    if args.validate and getattr(args, "store", None) is not None:
        print(
            "error: --validate needs the raw edge list, which a graph store "
            "does not keep; validate against --npz/--scale instead",
            file=sys.stderr,
        )
        return 2
    edges, graph = _obtain_graph(args)
    layout, threshold = graph.layout, graph.separation.threshold
    engine = TraversalEngine(graph, backend=args.backend, kernels=args.kernels)
    try:
        result = engine.run(ConnectedComponents())
        backend_name = engine.backend_name
        kernels_name = engine.provider_name
    finally:
        engine.close()

    validated = False
    if args.validate:
        reference = serial_components(edges)
        if not np.array_equal(result.labels, reference):
            mismatches = int(np.count_nonzero(result.labels != reference))
            raise AssertionError(
                f"component labels disagree with union-find on {mismatches} vertices"
            )
        validated = True

    if args.json:
        print(
            json.dumps(
                {
                    "graph": _graph_info(graph),
                    "backend": backend_name,
                    "kernels": kernels_name,
                    "result": result.summary(),
                    "validated": validated,
                },
                indent=2,
            )
        )
        return 0

    print(
        f"graph: {graph.num_vertices:,} vertices, {graph.num_directed_edges:,} edges | "
        f"cluster {layout.notation()} | TH={threshold} | "
        f"delegates {graph.num_delegates:,} | backend {backend_name} | "
        f"kernels {kernels_name} | storage {getattr(graph, 'storage', 'memory')}"
    )
    t = result.timing
    print(
        f"  components: {result.num_components:,} "
        f"(largest {result.largest_component_size:,} vertices) in "
        f"{result.iterations} iterations, modeled {t.elapsed_ms:.3f} ms "
        f"[comp {t.computation:.3f} | local {t.local_communication:.3f} | "
        f"normal {t.remote_normal_exchange:.3f} | delegate {t.remote_delegate_reduce:.3f}]"
    )
    if validated:
        print("labels validated against serial union-find")
    return 0


def _parse_delta(text: str):
    """Parse a ``--delta`` value; returns ``(delta, error-or-None)``."""
    import math

    if text == "auto":
        return "auto", None
    if text in ("inf", "infinity"):
        return math.inf, None
    try:
        value = float(text)
    except ValueError:
        value = math.nan
    if not value > 0 or math.isnan(value):
        return None, f"--delta must be a positive number, 'auto' or 'inf', got {text!r}"
    return value, None


def _require_weighted_graph(graph) -> int | None:
    """Exit-2 path for weighted programs on an unweighted graph."""
    if graph.is_weighted:
        return None
    print(
        "error: this graph carries no edge weights; generate one with "
        "--weights SEED (or `repro generate --weights`) first",
        file=sys.stderr,
    )
    return 2


def _cmd_sssp(args: argparse.Namespace) -> int:
    from repro.baselines.weighted import dijkstra_sssp
    from repro.core.engine import TraversalEngine
    from repro.utils.rng import random_sources
    from repro.weighted import BellmanFordSSSP, DeltaSteppingSSSP

    invalid = _check_exec_args(args)
    if invalid is not None:
        return invalid
    delta, error = _parse_delta(args.delta)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.validate and getattr(args, "store", None) is not None:
        print(
            "error: --validate needs the raw edge list, which a graph store "
            "does not keep; validate against --npz/--scale instead",
            file=sys.stderr,
        )
        return 2
    edges, graph = _obtain_graph(args)
    invalid = _require_weighted_graph(graph)
    if invalid is not None:
        return invalid
    layout, threshold = graph.layout, graph.separation.threshold

    if args.source is not None:
        sources = np.asarray([args.source], dtype=np.int64)
    else:
        from repro.graph.degree import out_degrees

        degrees = out_degrees(edges) if edges is not None else graph.separation.degrees
        sources = random_sources(
            graph.num_vertices, args.sources, rng=args.seed + 1, degrees=degrees
        )

    engine = TraversalEngine(graph, backend=args.backend, kernels=args.kernels)
    schedule = "bellman-ford" if args.bellman_ford else "delta-stepping"
    if not args.json:
        print(
            f"graph: {graph.num_vertices:,} vertices, {graph.num_directed_edges:,} "
            f"weighted edges | cluster {layout.notation()} | TH={threshold} | "
            f"delegates {graph.num_delegates:,} | schedule {schedule} | "
            f"delta {args.delta} | backend {engine.backend_name} | "
            f"kernels {engine.provider_name} | "
            f"storage {getattr(graph, 'storage', 'memory')}"
        )

    runs: list[dict] = []
    try:
        for source in sources:
            source = int(source)
            if args.bellman_ford:
                program = BellmanFordSSSP(source)
            else:
                program = DeltaSteppingSSSP(source, delta=delta)
            result = engine.run(program)
            if args.validate:
                reference = dijkstra_sssp(
                    edges.src, edges.dst, edges.weights, edges.num_vertices, source
                )
                if not np.array_equal(result.distances, reference):
                    mismatches = int(
                        np.count_nonzero(result.distances != reference)
                    )
                    raise AssertionError(
                        f"sssp distances disagree with Dijkstra on "
                        f"{mismatches} vertices (source {source})"
                    )
            runs.append(result.summary())
            if not args.json:
                t = result.timing
                print(
                    f"  source {source:>9}: {result.num_reached:,} reached, "
                    f"{result.phases} phases, "
                    f"{result.total_edges_examined:,} relaxations, "
                    f"modeled {t.elapsed_ms:.3f} ms"
                )
        backend_name = engine.backend_name
        kernels_name = engine.provider_name
    finally:
        engine.close()

    if args.json:
        print(
            json.dumps(
                {
                    "graph": _graph_info(graph),
                    "schedule": schedule,
                    "delta": args.delta,
                    "backend": backend_name,
                    "kernels": kernels_name,
                    "runs": runs,
                    "validated": bool(args.validate),
                },
                indent=2,
            )
        )
        return 0
    if args.validate:
        print("all runs validated against serial Dijkstra")
    return 0


def _cmd_pagerank(args: argparse.Namespace) -> int:
    from repro.core.engine import TraversalEngine
    from repro.weighted import PageRank

    invalid = _check_exec_args(args)
    if invalid is not None:
        return invalid
    if not 0.0 < args.damping < 1.0:
        print(f"error: --damping must be in (0, 1), got {args.damping}", file=sys.stderr)
        return 2
    if args.iterations < 1:
        print(f"error: --iterations must be >= 1, got {args.iterations}", file=sys.stderr)
        return 2
    if not args.eps > 0:
        print(f"error: --eps must be positive, got {args.eps}", file=sys.stderr)
        return 2
    if args.validate and getattr(args, "store", None) is not None:
        print(
            "error: --validate needs the raw edge list, which a graph store "
            "does not keep; validate against --npz/--scale instead",
            file=sys.stderr,
        )
        return 2
    edges, graph = _obtain_graph(args)
    layout, threshold = graph.layout, graph.separation.threshold
    engine = TraversalEngine(graph, backend=args.backend, kernels=args.kernels)
    try:
        result = engine.run(
            PageRank(
                damping=args.damping,
                mode=args.mode,
                iterations=args.iterations,
                eps=args.eps,
            )
        )
        backend_name = engine.backend_name
        kernels_name = engine.provider_name
    finally:
        engine.close()

    validated = False
    if args.validate:
        if args.mode == "fixed":
            from repro.baselines.weighted import pagerank_reference_fixed

            reference = pagerank_reference_fixed(
                edges.src, edges.dst, edges.num_vertices, args.damping, args.iterations
            )
            if not np.array_equal(result.ranks, reference):
                mismatches = int(np.count_nonzero(result.ranks != reference))
                raise AssertionError(
                    f"fixed-point ranks disagree with the serial reference on "
                    f"{mismatches} vertices"
                )
        else:
            from repro.baselines.weighted import pagerank_power

            reference = pagerank_power(
                edges.src, edges.dst, edges.num_vertices, args.damping, iterations=100
            )
            drift = float(np.abs(result.ranks_float - reference).max())
            if drift > 1e-3:
                raise AssertionError(
                    f"push-mode ranks drift {drift:.2e} from the float power "
                    "iteration (tolerance 1e-3)"
                )
        validated = True

    if args.json:
        print(
            json.dumps(
                {
                    "graph": _graph_info(graph),
                    "backend": backend_name,
                    "kernels": kernels_name,
                    "result": result.summary(),
                    "top": [
                        {"vertex": int(v), "rank": float(result.ranks_float[v])}
                        for v in result.top_vertices(args.top)
                    ],
                    "validated": validated,
                },
                indent=2,
            )
        )
        return 0

    t = result.timing
    print(
        f"graph: {graph.num_vertices:,} vertices, {graph.num_directed_edges:,} edges | "
        f"cluster {layout.notation()} | TH={threshold} | "
        f"delegates {graph.num_delegates:,} | backend {backend_name} | "
        f"kernels {kernels_name} | storage {getattr(graph, 'storage', 'memory')}"
    )
    print(
        f"  pagerank ({args.mode}, damping {args.damping}): "
        f"{result.iterations} sweeps, {result.total_edges_examined:,} edge "
        f"contributions, modeled {t.elapsed_ms:.3f} ms"
    )
    for rank, vertex in enumerate(result.top_vertices(args.top), 1):
        print(f"    #{rank}: vertex {int(vertex)} rank {result.ranks_float[vertex]:.6f}")
    if validated:
        oracle = "serial fixed-point reference" if args.mode == "fixed" else "float power iteration"
        print(f"ranks validated against the {oracle}")
    return 0


def _cmd_census(args: argparse.Namespace) -> int:
    from repro.graph.degree import out_degrees
    from repro.partition.delegates import (
        census_for_thresholds,
        suggest_threshold,
        threshold_candidates,
    )
    from repro.utils.rss import max_rss_mb

    edges = _load_graph(args)
    max_degree = int(out_degrees(edges).max()) if edges.num_edges else 0
    censuses = list(census_for_thresholds(edges, threshold_candidates(max_degree)))
    suggestion = suggest_threshold(edges, args.gpus)

    if args.json:
        print(
            json.dumps(
                {
                    "rows": [
                        {
                            "threshold": int(c.threshold),
                            "delegate_pct": c.delegate_percentage,
                            "dd_pct": c.dd_percentage,
                            "nd_dn_pct": c.nd_dn_percentage,
                            "nn_pct": c.nn_percentage,
                        }
                        for c in censuses
                    ],
                    "gpus": args.gpus,
                    "suggested_threshold": int(suggestion),
                    "max_rss_mb": max_rss_mb(),
                },
                indent=2,
            )
        )
        return 0

    print(f"{'TH':>10} {'delegates%':>11} {'dd%':>8} {'nd+dn%':>8} {'nn%':>8}")
    for census in censuses:
        print(
            f"{census.threshold:>10} {census.delegate_percentage:>11.2f} "
            f"{census.dd_percentage:>8.2f} {census.nd_dn_percentage:>8.2f} "
            f"{census.nn_percentage:>8.2f}"
        )
    print(f"suggested threshold for {args.gpus} GPUs: {suggestion}")
    return 0


def _cmd_mutate(args: argparse.Namespace) -> int:
    from repro.dynamic import (
        DynamicEngine,
        DynamicGraph,
        MaintainedComponents,
        MaintainedLevels,
        MaintainedSSSP,
        update_stream,
    )
    from repro.graph.degree import out_degrees
    from repro.partition.layout import ClusterLayout
    from repro.utils.rng import random_sources

    invalid = _check_exec_args(args)
    if invalid is not None:
        return invalid
    edges = _load_graph(args)
    if args.program == "sssp" and edges.weights is None:
        print(
            "error: mutate --program sssp needs a weighted graph; pass "
            "--weights SEED (or an npz generated with `repro generate --weights`)",
            file=sys.stderr,
        )
        return 2
    layout = ClusterLayout.from_notation(args.layout)
    dynamic = DynamicGraph(
        edges, layout, args.threshold, weights_seed=getattr(args, "weights", None) or 0
    )
    engine = DynamicEngine(dynamic, backend=args.backend, kernels=args.kernels)

    if args.program in ("levels", "sssp"):
        source = (
            args.source
            if args.source is not None
            else int(
                random_sources(
                    edges.num_vertices, 1, rng=args.seed + 1, degrees=out_degrees(edges)
                )[0]
            )
        )
        if args.program == "levels":
            maintained = MaintainedLevels(engine, source)
        else:
            maintained = MaintainedSSSP(engine, source)
    else:
        source = None
        maintained = MaintainedComponents(engine)

    stream = update_stream(
        edges,
        num_batches=args.batches,
        edges_per_batch=args.edges_per_batch,
        style=args.style,
        delete_fraction=args.delete_fraction,
        seed=args.seed + 3,
    )
    if not args.json:
        print(
            f"graph: {edges.num_vertices:,} vertices, {edges.num_edges:,} edges | "
            f"cluster {layout.notation()} | TH={dynamic.threshold} | "
            f"maintained {args.program}"
            + (f" from {source}" if source is not None else "")
            + f" | backend {engine.backend_name} | kernels {engine.provider_name}"
        )
        print(
            f"stream: {args.batches} x {args.edges_per_batch} {args.style} updates, "
            f"delete fraction {args.delete_fraction}"
        )

    batches: list[dict] = []
    try:
        for i, delta in enumerate(stream):
            applied = engine.apply_delta(delta)
            before = maintained.stats.as_dict()
            result = maintained.update(applied)
            after = maintained.stats.as_dict()
            repaired = after["repairs"] > before["repairs"]
            entry = {
                "batch": i,
                "inserted": applied.num_inserts,
                "deleted": applied.num_deletes,
                "version": applied.version,
                "compacted": applied.compacted,
                "compact_reason": applied.compact_reason,
                "path": "repair" if repaired else (
                    "recompute" if after["recomputes"] > before["recomputes"] else "skip"
                ),
                "iterations": int(result.iterations),
                "edges_examined": int(result.total_edges_examined),
                "modeled_ms": float(result.timing.elapsed_ms),
            }
            if not args.no_verify:
                fresh = maintained.verify()
                entry["verified"] = True
                entry["recompute_modeled_ms"] = float(fresh.timing.elapsed_ms)
                entry["recompute_edges_examined"] = int(fresh.total_edges_examined)
            batches.append(entry)
            if not args.json:
                line = (
                    f"  batch {i}: +{entry['inserted']}/-{entry['deleted']} edges "
                    f"-> {entry['path']} ({entry['iterations']} iters, "
                    f"{entry['edges_examined']:,} edges, {entry['modeled_ms']:.3f} ms modeled)"
                )
                if entry["compacted"]:
                    line += f" [compacted: {entry['compact_reason']}]"
                if "recompute_modeled_ms" in entry and entry["modeled_ms"] > 0:
                    line += (
                        f" vs recompute {entry['recompute_modeled_ms']:.3f} ms "
                        f"({entry['recompute_modeled_ms'] / entry['modeled_ms']:.1f}x)"
                    )
                print(line)
    finally:
        engine.close()

    stats = maintained.stats.as_dict()
    if args.json:
        print(
            json.dumps(
                {
                    "graph": {
                        "vertices": int(edges.num_vertices),
                        "directed_edges": int(dynamic.num_directed_edges),
                        "layout": layout.notation(),
                        "threshold": int(dynamic.threshold),
                    },
                    "program": args.program,
                    "source": source,
                    "style": args.style,
                    "verified": not args.no_verify,
                    "batches": batches,
                    "stats": stats,
                    "final_version": dynamic.version,
                    "compactions": dynamic.compactions,
                    "overlay_edges": dynamic.overlay.num_edges,
                    "overlay_edges_per_gpu": [
                        int(e) for e in dynamic.overlay.edges_per_gpu()
                    ],
                },
                indent=2,
            )
        )
        return 0

    print(
        f"maintenance: {stats['repairs']} repairs, {stats['recomputes']} recomputes, "
        f"{stats['skipped']} skipped | repair examined {stats['repair_edges']:,} edges "
        f"({stats['repair_modeled_ms']:.3f} ms modeled)"
    )
    if not args.no_verify:
        print("every maintained answer verified bit-identical to a from-scratch run")
    print(
        f"graph: version {dynamic.version}, {dynamic.compactions} compaction(s), "
        f"{dynamic.overlay.num_edges:,} overlay edges resident"
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.bench_command == "list":
        return _cmd_bench_list(args)
    if args.bench_command == "run":
        return _cmd_bench_run(args)
    if args.bench_command == "compare":
        return _cmd_bench_compare(args)
    raise AssertionError(f"unhandled bench command {args.bench_command!r}")  # pragma: no cover


def _cmd_bench_list(args: argparse.Namespace) -> int:
    from repro.bench import quick_scenarios, registry

    specs = quick_scenarios() if args.quick else registry()
    if args.json:
        # The stable tooling contract: every entry carries at least
        # (name, family, program, backend) so scripts can slice the registry
        # without parsing the text table.  Kernel providers are deliberately
        # absent — the provider is a run-time axis (`bench run --kernels`),
        # recorded per artifact record, never part of a scenario's identity.
        print(
            json.dumps(
                [
                    {
                        "name": s.name,
                        "family": s.kind,
                        "quick": s.quick,
                        "backend": s.backend,
                        **s.describe(),
                    }
                    for s in specs
                ],
                indent=2,
            )
        )
        return 0
    print(
        f"{'name':<28} {'quick':>5}  {'graph':<12} {'program':<10} "
        f"{'options':<10} {'backend':<8} TH"
    )
    for s in specs:
        th = "auto" if s.threshold is None else str(s.threshold)
        print(
            f"{s.name:<28} {'yes' if s.quick else 'no':>5}  "
            f"{s.kind + str(s.scale):<12} {s.program:<10} {s.options.label():<10} "
            f"{s.backend:<8} {th}"
        )
    print(f"{len(specs)} scenario(s)")
    print(
        "axes at run time: --backend inline|process|thread, "
        "--kernels numpy|numba|auto (provider recorded per record, "
        "not part of the scenario)"
    )
    return 0


def _cmd_bench_run(args: argparse.Namespace) -> int:
    from repro.bench import (
        default_artifact_path,
        find_scenarios,
        quick_scenarios,
        registry,
        run_suite,
    )

    invalid = _check_exec_args(args)
    if invalid is not None:
        return invalid
    if args.scenario:
        specs = find_scenarios(args.scenario)
        if args.quick:
            specs = tuple(s for s in specs if s.quick)
            if not specs:
                print(
                    "error: none of the named scenarios belong to the quick subset "
                    "(drop --quick to run them)",
                    file=sys.stderr,
                )
                return 2
    elif args.quick:
        specs = quick_scenarios()
    else:
        specs = registry()
    out_path = args.output if args.output is not None else default_artifact_path()

    def progress(name: str, record: dict) -> None:
        if args.json:
            return
        wall = record["wall_s"]
        if "build" in record:
            b = record["build"]
            print(
                f"  {name:<28} build     {wall['graph_build']:8.2f} s wall "
                f"({record.get('storage', 'memory')}, {b['num_chunks']} chunks, "
                f"{b['num_directed_edges']:,} edges, "
                f"peak RSS {record['max_rss_mb']['graph_build']:.0f} MiB) "
                f"verify {wall['traversal'] * 1e3:.2f} ms, "
                f"{record['counters']['total_edges_examined']:,} edges examined"
            )
            return
        if "dynamic" in record:
            d = record["dynamic"]
            print(
                f"  {name:<28} dynamic   {wall['traversal'] * 1e3:8.2f} ms wall "
                f"({d['mode']}, {d['updates']} updates, "
                f"{d['updates_per_sec']:,.0f} upd/s, modeled repair "
                f"{d['modeled_incremental_ms']:.2f} ms vs recompute "
                f"{d['modeled_recompute_ms']:.2f} ms = {d['modeled_speedup']:.1f}x)"
            )
            return
        if "cluster" in record:
            c = record["cluster"]
            lat = c["latency"]
            print(
                f"  {name:<28} cluster   {wall['traversal'] * 1e3:8.2f} ms wall "
                f"({c['mode']}, {c['replicas']} replicas) "
                f"{record['counters']['admitted']}/{record['counters']['arrivals']} admitted "
                f"({record['counters']['shed']} shed), "
                f"p99 {lat['p99_ms']:.2f} ms, {c['achieved_qps']:,.0f} q/s achieved"
            )
            return
        if "throughput" in record:
            t = record["throughput"]
            print(
                f"  {name:<28} serve     {wall['traversal'] * 1e3:8.2f} ms wall "
                f"(build {wall['graph_build']:.2f} s, partition {wall['partition']:.2f} s) "
                f"{t['queries']} queries, {t['queries_per_sec']:,.0f} q/s "
                f"({'batched' if t['batched'] else 'sequential'}, "
                f"{t['traversals']} traversals)"
            )
            return
        print(
            f"  {name:<28} traversal {wall['traversal'] * 1e3:8.2f} ms wall "
            f"(build {wall['graph_build']:.2f} s, partition {wall['partition']:.2f} s) "
            f"modeled {record['modeled_ms']['elapsed_ms']:.3f} ms, "
            f"{record['counters']['total_edges_examined']:,} edges examined"
        )

    if not args.json:
        forced = f", backend={args.backend}" if args.backend else ""
        forced += f", kernels={args.kernels}" if args.kernels else ""
        forced += f", storage={args.storage}" if args.storage else ""
        print(f"running {len(specs)} scenario(s), repeats={args.repeats}{forced}")
    artifact = run_suite(
        specs,
        label=args.label,
        quick=bool(args.quick),
        repeats=args.repeats,
        out_path=out_path,
        on_record=progress,
        serve_batched=not args.serve_sequential,
        cluster_hedging=not args.cluster_no_hedge,
        dyn_incremental=not args.dyn_recompute,
        backend=args.backend,
        kernels=args.kernels,
        storage=args.storage,
    )
    if args.json:
        print(json.dumps(artifact, indent=2))
    else:
        print(f"wrote {out_path}")
    return 0


def _resolve_artifact_selector(text: str) -> Path:
    """Resolve a ``bench compare`` artifact selector to a concrete path.

    Three forms: a literal path, a glob pattern (the lexically newest match
    wins — ``BENCH_<timestamp>`` names sort chronologically), or
    ``latest``/``latest~N`` over ``./BENCH_*.json``.
    """
    import glob as globmod

    if text == "latest" or text.startswith("latest~"):
        back = 0
        if text.startswith("latest~"):
            try:
                back = int(text.split("~", 1)[1])
            except ValueError:
                raise ValueError(f"bad selector {text!r}: expected latest~<integer>") from None
            if back < 0:
                raise ValueError(f"bad selector {text!r}: offset must be >= 0")
        matches = sorted(str(p) for p in Path.cwd().glob("BENCH_*.json"))
        if back >= len(matches):
            raise ValueError(
                f"selector {text!r} needs {back + 1} BENCH_*.json artifact(s) "
                f"in {Path.cwd()}, found {len(matches)}"
            )
        return Path(matches[-1 - back])
    if any(ch in text for ch in "*?["):
        matches = sorted(globmod.glob(text))
        if not matches:
            raise ValueError(f"no artifact matches the pattern {text!r}")
        return Path(matches[-1])
    return Path(text)


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.bench import BenchArtifactError, compare_artifacts, load_artifact

    try:
        old_path = _resolve_artifact_selector(args.old)
        new_path = _resolve_artifact_selector(args.new)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        old = load_artifact(old_path)
        new = load_artifact(new_path)
        report = compare_artifacts(
            old, new, tolerance=args.tolerance, min_delta_s=args.min_delta_ms / 1e3
        )
    except BenchArtifactError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(f"comparing {old_path} -> {new_path}")
        for line in report.summary_lines():
            print(line)
    if args.fail_on == "none":
        return 0
    if args.fail_on == "counters":
        return 0 if report.counters_ok else 1
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.serve_command == "bench":
        return _cmd_serve_bench(args)
    raise AssertionError(f"unhandled serve command {args.serve_command!r}")  # pragma: no cover


def _serve_bench_validate(args: argparse.Namespace) -> str | None:
    """Reject nonsensical serve-bench knob combinations with a clear message."""
    if args.arrivals == "closed":
        misplaced = [
            flag
            for flag, is_set in (
                ("--rate", args.rate is not None),
                ("--replicas", args.replicas is not None),
                ("--queue-limit", args.queue_limit is not None),
                ("--no-hedge", args.no_hedge),
                ("--hedge-quantile", args.hedge_quantile is not None),
                ("--slo-ms", args.slo_ms is not None),
            )
            if is_set
        ]
        if misplaced:
            return (
                f"{', '.join(misplaced)} only appl"
                f"{'ies' if len(misplaced) == 1 else 'y'} to open-loop arrivals; "
                "pass --arrivals poisson|bursty|diurnal"
            )
        return None
    if args.rate is not None and args.rate <= 0:
        return f"arrival rate must be positive, got {args.rate}"
    replicas = 2 if args.replicas is None else args.replicas
    if replicas < 1:
        return f"--replicas must be >= 1, got {replicas}"
    if args.queue_limit is not None and args.queue_limit < 0:
        return f"--queue-limit must be >= 0 (0 = unbounded), got {args.queue_limit}"
    if args.hedge_quantile is not None:
        if args.no_hedge:
            return "--hedge-quantile contradicts --no-hedge; pick one"
        if not 0.0 < args.hedge_quantile < 1.0:
            return f"--hedge-quantile must be in (0, 1), got {args.hedge_quantile}"
        if replicas < 2:
            return (
                "request hedging re-issues a straggler to a *second* replica; "
                f"--hedge-quantile needs --replicas >= 2, got {replicas}"
            )
    if args.slo_ms is not None and args.slo_ms <= 0:
        return f"--slo-ms must be positive, got {args.slo_ms}"
    return None


def _cmd_serve_bench_cluster(args: argparse.Namespace) -> int:
    from repro.graph.degree import out_degrees
    from repro.serve.cluster import (
        ClusterConfig,
        ClusterDispatcher,
        OpenLoopWorkload,
        ReplicaPool,
        make_arrivals,
    )
    from repro.serve.workload import ZipfWorkload

    replicas = 2 if args.replicas is None else args.replicas
    rate = 500.0 if args.rate is None else args.rate
    config = ClusterConfig(
        queue_limit=64 if args.queue_limit is None else args.queue_limit,
        hedge=not args.no_hedge and replicas >= 2,
        hedge_quantile=0.95 if args.hedge_quantile is None else args.hedge_quantile,
        slo_ms=args.slo_ms,
    )

    edges = _load_graph(args)
    graph, layout, threshold = _partition(args, edges)
    num_updates = int(round(args.update_rate * args.queries)) if args.update_rate > 0 else 0
    workload = OpenLoopWorkload(
        queries=ZipfWorkload(
            num_queries=args.queries,
            skew=args.skew,
            pool=args.pool,
            seed=args.seed + 2,
            program=args.program,
            max_hops=args.max_hops if args.program == "khop" else None,
        ),
        arrivals=make_arrivals(args.arrivals, rate, seed=args.seed + 4),
        num_updates=num_updates,
        edges_per_update=args.update_edges,
        update_style=args.update_style,
        update_seed=args.seed + 4,
    )
    stream = workload.generate(
        edges.num_vertices,
        degrees=out_degrees(edges),
        edges=edges if num_updates else None,
    )

    if num_updates:
        # Updates mutate the graph: serve a mutable view adopting the
        # already-built partitioning, so the delta fanout path runs for real.
        from repro.dynamic import DynamicGraph

        served = DynamicGraph(edges, layout, threshold, partitioned=graph)
    else:
        served = graph
    pool = ReplicaPool(
        served,
        replicas,
        backend=args.backend,
        kernels=args.kernels,
        batch_size=args.batch_size,
        cache_size=args.cache_size,
    )
    dispatcher = ClusterDispatcher(pool, config)
    try:
        backend_name = pool.backend_name
        kernels_name = pool.kernels_name
        snap = dispatcher.run(stream)
        replica_snapshots = [r.service.stats_snapshot() for r in pool]
    finally:
        pool.close()

    if args.prom is not None:
        _write_prometheus(snap, args.prom)

    counters, cluster = snap["counters"], snap["cluster"]
    if args.json:
        print(
            json.dumps(
                {
                    "graph": _graph_info(graph),
                    "workload": workload.describe(),
                    "backend": backend_name,
                    "kernels": kernels_name,
                    "replicas": replicas,
                    "batch_size": args.batch_size,
                    "cache_size": args.cache_size,
                    "counters": counters,
                    "cluster": cluster,
                    "replica_snapshots": replica_snapshots,
                },
                indent=2,
            )
        )
        return 0

    print(
        f"graph: {edges.num_vertices:,} vertices, {edges.num_edges:,} edges | "
        f"cluster {layout.notation()} | TH={threshold} | "
        f"{replicas} replica(s) | backend {backend_name} | kernels {kernels_name}"
    )
    print(
        f"workload: {args.queries} {args.program} ops, zipf skew {args.skew}, "
        f"{args.arrivals} arrivals at {rate:,.0f} q/s offered"
        + (f", {num_updates} update batches" if num_updates else "")
    )
    lat = cluster["latency"]
    print(
        f"  admitted {counters['admitted']}/{counters['arrivals']} "
        f"(shed {counters['shed']}), achieved {cluster['achieved_qps']:,.0f} q/s over "
        f"{cluster['virtual_makespan_ms']:.1f} virtual ms"
    )
    print(
        f"  latency p50 {lat['p50_ms']:.2f} ms, p95 {lat['p95_ms']:.2f} ms, "
        f"p99 {lat['p99_ms']:.2f} ms, max {lat['max_ms']:.2f} ms"
        + (
            f", SLO {lat['slo_ms']:.0f} ms violated {lat['slo_violations']}x"
            if lat["slo_ms"] is not None
            else ""
        )
    )
    if config.hedge:
        print(
            f"  hedging: {cluster['hedges_issued']} issued, {cluster['hedges_won']} won, "
            f"{cluster['hedges_cancelled']} cancelled, "
            f"{cluster['hedges_preempted']} preempted, "
            f"{cluster['primaries_discarded']} primaries discarded"
        )
    if counters["updates"]:
        print(
            f"  updates: {counters['updates']} applied (graph version "
            f"{counters['final_graph_version']}), "
            f"{cluster['shed_during_update']} arrivals shed behind update drains"
        )
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.core.engine import TraversalEngine
    from repro.graph.degree import out_degrees
    from repro.serve import MixedWorkload, QueryService, ZipfWorkload

    invalid = _check_exec_args(args)
    if invalid is not None:
        return invalid
    error = _serve_bench_validate(args)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.arrivals != "closed":
        return _cmd_serve_bench_cluster(args)

    edges = _load_graph(args)
    graph, layout, threshold = _partition(args, edges)
    mixed = args.update_rate > 0
    engine = (
        None if mixed else TraversalEngine(graph, backend=args.backend, kernels=args.kernels)
    )
    workload = ZipfWorkload(
        num_queries=args.queries,
        skew=args.skew,
        pool=args.pool,
        seed=args.seed + 2,
        program=args.program,
        max_hops=args.max_hops if args.program == "khop" else None,
    )
    degrees = out_degrees(edges)
    if mixed:
        mixed_workload = MixedWorkload(
            queries=workload,
            update_rate=args.update_rate,
            edges_per_update=args.update_edges,
            update_style=args.update_style,
            update_seed=args.seed + 4,
        )
        stream = mixed_workload.generate(edges, degrees=degrees)
    else:
        stream = workload.generate(edges.num_vertices, degrees=degrees)

    if not args.json:
        from repro.exec.backend import default_backend_name
        from repro.exec.providers import resolve_provider

        backend_label = (
            engine.backend_name
            if engine is not None
            else (args.backend or default_backend_name())
        )
        kernels_label = (
            engine.provider_name
            if engine is not None
            else resolve_provider(args.kernels).name
        )
        print(
            f"graph: {edges.num_vertices:,} vertices, {edges.num_edges:,} edges | "
            f"cluster {layout.notation()} | TH={threshold} | "
            f"delegates {graph.num_delegates:,} | backend {backend_label} | "
            f"kernels {kernels_label}"
        )
        line = (
            f"workload: {args.queries} {args.program} ops, "
            f"zipf skew {args.skew}, pool {workload.pool}, "
            f"batch {args.batch_size}, cache {args.cache_size}"
        )
        if mixed:
            line += (
                f", update rate {args.update_rate} "
                f"({args.update_edges} {args.update_style} edges/batch)"
            )
        print(line)

    def replay(batched: bool) -> QueryService:
        if mixed:
            # Updates mutate the graph, so every replay gets its own mutable
            # view — each adopts the already-built partitioning (read-only;
            # compaction replaces rather than mutates it) and applies the
            # identical pinned stream.
            from repro.dynamic import DynamicEngine, DynamicGraph

            replay_engine = DynamicEngine(
                DynamicGraph(edges, layout, threshold, partitioned=graph),
                backend=args.backend,
                kernels=args.kernels,
            )
        else:
            replay_engine = engine
        service = QueryService(
            replay_engine,
            batch_size=args.batch_size,
            cache_size=args.cache_size,
            batched=batched,
        )
        try:
            if mixed:
                service.run_mixed(stream)
            else:
                service.serve(stream)
        finally:
            if mixed:
                replay_engine.close()
        return service

    try:
        batched = replay(batched=True)
        sequential = None if args.no_baseline else replay(batched=False)
        backend_name = (
            engine.backend_name if engine is not None else batched.stats_snapshot()["backend"]
        )
        if engine is not None:
            kernels_name = engine.provider_name
        else:
            from repro.exec.providers import resolve_provider

            kernels_name = resolve_provider(args.kernels).name
    finally:
        if engine is not None:
            engine.close()

    if args.prom is not None:
        _write_prometheus(batched.stats_snapshot(), args.prom)

    if args.json:
        out = {
            "graph": _graph_info(graph),
            "workload": mixed_workload.describe() if mixed else workload.describe(),
            "backend": backend_name,
            "kernels": kernels_name,
            "batch_size": args.batch_size,
            "cache_size": args.cache_size,
            "batched": batched.stats_snapshot(),
        }
        if sequential is not None:
            out["sequential"] = sequential.stats_snapshot()
            out["speedup"] = (
                sequential.stats.wall_s / batched.stats.wall_s
                if batched.stats.wall_s > 0
                else None
            )
        print(json.dumps(out, indent=2))
        return 0

    def report(tag: str, service: QueryService) -> None:
        s, c = service.stats, service.cache.stats
        line = (
            f"  {tag:<10} {s.queries_per_sec:10,.0f} q/s  "
            f"({s.queries} queries in {s.wall_s:.3f} s, {s.traversals} traversals, "
            f"{s.batches} batches, cache hit rate {c.hit_rate:.0%}, "
            f"{c.evictions} evictions)"
        )
        if s.updates:
            line += (
                f"\n  {'':<10} {s.updates} update batches in {s.update_wall_s:.3f} s, "
                f"{s.epoch_bumps} epoch bumps, {s.entries_invalidated} entries invalidated"
            )
        print(line)

    report("batched", batched)
    if sequential is not None:
        report("sequential", sequential)
        if batched.stats.wall_s > 0:
            print(
                f"  speedup    {sequential.stats.wall_s / batched.stats.wall_s:10.2f}x "
                f"queries/sec over sequential run_many"
            )
    return 0


def _write_prometheus(snapshot: dict, path: Path) -> None:
    """Write ``snapshot`` as Prometheus text exposition format to ``path``."""
    from repro.obs import prometheus_text

    path.write_text(prometheus_text(snapshot))
    print(f"prometheus: wrote {path}", file=sys.stderr)


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "summarize":
        return _cmd_trace_summarize(args)
    raise AssertionError(f"unhandled trace command {args.trace_command!r}")  # pragma: no cover


def _cmd_trace_summarize(args: argparse.Namespace) -> int:
    from repro.obs import load_trace, summarize_events, summary_lines

    try:
        events = load_trace(args.path)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    summary = summarize_events(events)
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    print(f"trace: {args.path}")
    for line in summary_lines(summary):
        print(line)
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    """Route a parsed namespace to its command handler."""
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "build":
        return _cmd_build(args)
    if args.command == "bfs":
        return _cmd_bfs(args)
    if args.command == "components":
        return _cmd_components(args)
    if args.command == "sssp":
        return _cmd_sssp(args)
    if args.command == "pagerank":
        return _cmd_pagerank(args)
    if args.command == "census":
        return _cmd_census(args)
    if args.command == "mutate":
        return _cmd_mutate(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "trace":
        return _cmd_trace(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command != "generate":
        invalid = _check_weights_arg(args)
        if invalid is not None:
            return invalid
    with _tracing(args):
        return _dispatch(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
