"""Statistics helpers for reporting experiment results.

The paper reports the *geometric mean* of traversal rates (GTEPS) or elapsed
times over 140 BFS runs from random sources (§VI-A3).  The helpers here are
used by the benchmark harness and the examples to aggregate per-source results
the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

__all__ = ["geometric_mean", "harmonic_mean", "summarize", "SummaryStats"]


def geometric_mean(values: Iterable[float] | np.ndarray) -> float:
    """Geometric mean of strictly positive values.

    Raises
    ------
    ValueError
        If the input is empty or contains non-positive entries (a traversal
        rate or elapsed time of zero or less indicates a bug upstream and
        should not be silently averaged away).
    """
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=float)
    if arr.size == 0:
        raise ValueError("geometric_mean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric_mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def harmonic_mean(values: Iterable[float] | np.ndarray) -> float:
    """Harmonic mean of strictly positive values."""
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=float)
    if arr.size == 0:
        raise ValueError("harmonic_mean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("harmonic_mean requires strictly positive values")
    return float(arr.size / np.sum(1.0 / arr))


@dataclass(frozen=True)
class SummaryStats:
    """Aggregate statistics over a set of per-source measurements."""

    count: int
    geo_mean: float
    mean: float
    minimum: float
    maximum: float
    std: float

    def as_dict(self) -> Mapping[str, float]:
        """Return the summary as a plain dictionary (for tabular output)."""
        return {
            "count": self.count,
            "geo_mean": self.geo_mean,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "std": self.std,
        }


def summarize(values: Iterable[float] | np.ndarray) -> SummaryStats:
    """Summarize a set of positive measurements (rates or times)."""
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=float)
    if arr.size == 0:
        raise ValueError("summarize of empty sequence")
    return SummaryStats(
        count=int(arr.size),
        geo_mean=geometric_mean(arr),
        mean=float(arr.mean()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        std=float(arr.std()),
    )
