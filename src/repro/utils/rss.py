"""Peak-RSS measurement.

The out-of-core build path exists so graphs larger than memory can be built
and traversed; the evidence that it works is the process's peak resident set
staying bounded.  :func:`max_rss_mb` reads the kernel's high-water mark via
``resource.getrusage``, which is what the benchmark harness records per
phase and what ``repro census --json`` prints.

Note that ``ru_maxrss`` is a *process-lifetime* high-water mark: it only ever
grows, so per-phase snapshots report "peak so far", not per-phase deltas.
"""

from __future__ import annotations

import resource
import sys

__all__ = ["max_rss_mb"]


def max_rss_mb() -> float:
    """Peak resident set size of this process in MiB."""
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    if sys.platform == "darwin":  # pragma: no cover - not exercised in CI
        return usage / (1024.0 * 1024.0)
    return usage / 1024.0
