"""Timers and simulated-time accounting.

Two kinds of time exist in this reproduction:

* **wall-clock time** of the Python simulation itself (useful for
  pytest-benchmark and for profiling the reproduction), measured by
  :class:`Timer`; and
* **modeled time** of the simulated GPU cluster, accumulated by
  :class:`SimClock` from the analytic hardware model.  This is the quantity
  reported as "elapsed time" / GTEPS in the experiment harness, matching the
  paper's runtime-breakdown figures (Fig. 8 and Fig. 10).

:class:`TimingBreakdown` holds the per-phase modeled times of one BFS run in
exactly the categories the paper plots: local computation, local
communication, remote normal exchange and remote delegate reduction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator

__all__ = ["now_s", "Timer", "SimClock", "TimingBreakdown", "PHASES"]

#: The canonical span/wall clock of the whole repo: monotonic seconds.
#:
#: Every wall-clock measurement — engine super-step phases, backend kernel
#: batches, service flushes, bench phase minima, storage build passes — and
#: every :mod:`repro.obs` tracer span reads this one clock, so bench records
#: and trace artifacts can never disagree about where time went, and no
#: call site can accidentally mix the wall clock (``time.time``) into a
#: duration.  The only other clock in the system is the *virtual* clock of
#: ``repro.serve.cluster``, which the tracer handles via explicit-timestamp
#: spans.
now_s = time.perf_counter

#: Phase names used in the paper's runtime-breakdown figures.
PHASES = (
    "computation",
    "local_communication",
    "remote_normal_exchange",
    "remote_delegate_reduce",
)


class Timer:
    """A context-manager wall-clock timer.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = now_s()
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._start is not None
        self.elapsed = now_s() - self._start


class SimClock:
    """Accumulator of modeled (simulated) time, in seconds, per category."""

    def __init__(self) -> None:
        self._times: Dict[str, float] = {}

    def add(self, category: str, seconds: float) -> None:
        """Charge ``seconds`` of modeled time to ``category``."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time {seconds} to {category!r}")
        self._times[category] = self._times.get(category, 0.0) + float(seconds)

    def get(self, category: str) -> float:
        """Modeled time charged so far to ``category`` (0.0 if never charged)."""
        return self._times.get(category, 0.0)

    def total(self) -> float:
        """Sum of all categories (ignores any overlap)."""
        return float(sum(self._times.values()))

    def categories(self) -> Iterator[str]:
        """Iterate over category names in insertion order."""
        return iter(self._times)

    def as_dict(self) -> Dict[str, float]:
        """Copy of the accumulated times."""
        return dict(self._times)

    def reset(self) -> None:
        """Zero all categories."""
        self._times.clear()


@dataclass
class TimingBreakdown:
    """Per-phase modeled time of a single BFS run, in milliseconds.

    The four fields mirror the stacked bars in the paper's Figures 8 and 10.
    ``elapsed_ms`` is the modeled end-to-end time after accounting for
    computation/communication overlap, so it is generally *less* than the sum
    of the parts (the paper notes the same: "the sum of all parts in one
    column is more than the elapsed time of BFS").
    """

    computation: float = 0.0
    local_communication: float = 0.0
    remote_normal_exchange: float = 0.0
    remote_delegate_reduce: float = 0.0
    elapsed_ms: float = 0.0
    iterations: int = 0
    per_iteration: list = field(default_factory=list)

    def parts_sum(self) -> float:
        """Sum of the four phase times (no overlap accounting)."""
        return (
            self.computation
            + self.local_communication
            + self.remote_normal_exchange
            + self.remote_delegate_reduce
        )

    def as_dict(self) -> Dict[str, float]:
        """Phase times plus elapsed time as a dictionary keyed by phase name."""
        return {
            "computation": self.computation,
            "local_communication": self.local_communication,
            "remote_normal_exchange": self.remote_normal_exchange,
            "remote_delegate_reduce": self.remote_delegate_reduce,
            "elapsed_ms": self.elapsed_ms,
        }

    def __add__(self, other: "TimingBreakdown") -> "TimingBreakdown":
        return TimingBreakdown(
            computation=self.computation + other.computation,
            local_communication=self.local_communication + other.local_communication,
            remote_normal_exchange=self.remote_normal_exchange + other.remote_normal_exchange,
            remote_delegate_reduce=self.remote_delegate_reduce + other.remote_delegate_reduce,
            elapsed_ms=self.elapsed_ms + other.elapsed_ms,
            iterations=self.iterations + other.iterations,
        )

    def scaled(self, factor: float) -> "TimingBreakdown":
        """Return a copy with every time multiplied by ``factor``."""
        return TimingBreakdown(
            computation=self.computation * factor,
            local_communication=self.local_communication * factor,
            remote_normal_exchange=self.remote_normal_exchange * factor,
            remote_delegate_reduce=self.remote_delegate_reduce * factor,
            elapsed_ms=self.elapsed_ms * factor,
            iterations=self.iterations,
        )
