"""Shared low-level utilities for the BFS reproduction.

The utilities here are intentionally small and dependency-free so that every
other subpackage (graph generation, partitioning, the cluster substrate, the
BFS engine and the performance model) can rely on them without circular
imports.

Public modules
--------------
``bitmask``
    Packed boolean bitmasks used for delegate visited status (the paper stores
    one bit per delegate and all-reduces the packed masks).
``rng``
    Deterministic random-number and hashing helpers (the paper randomises
    vertex numbers with a deterministic hash after edge generation).
``stats``
    Statistics helpers, most importantly the geometric mean used by the paper
    for reporting traversal rates across 140 random sources.
``timing``
    Lightweight timers and a simulated-clock accumulator for the modeled
    runtime breakdowns.
"""

from repro.utils.bitmask import Bitmask
from repro.utils.rng import deterministic_hash_permutation, make_rng, splitmix64
from repro.utils.stats import geometric_mean, harmonic_mean, summarize
from repro.utils.timing import SimClock, Timer, TimingBreakdown

__all__ = [
    "Bitmask",
    "deterministic_hash_permutation",
    "make_rng",
    "splitmix64",
    "geometric_mean",
    "harmonic_mean",
    "summarize",
    "SimClock",
    "Timer",
    "TimingBreakdown",
]
