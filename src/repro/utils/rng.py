"""Deterministic randomness and hashing helpers.

The Graph500 specification (and the paper, §VI-A3) requires vertex numbers to
be randomised with a *deterministic* hashing function after edge generation so
that vertex locality introduced by the RMAT recursion does not leak into the
partitioning.  We implement that with a splitmix64-based Feistel-style hash
permutation which is a bijection on ``[0, n)`` for any ``n``.

All stochastic components of the library accept explicit seeds and build their
generators through :func:`make_rng` so experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "make_rng",
    "splitmix64",
    "hash64",
    "deterministic_hash_permutation",
    "random_sources",
]

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed or pass one through.

    ``None`` maps to a fixed default seed (not entropy) so that *every* run of
    the library is reproducible unless the caller explicitly asks otherwise.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = 0x5EED_0F_BF5
    return np.random.default_rng(seed)


def splitmix64(x: np.ndarray | int) -> np.ndarray:
    """Vectorized splitmix64 finalizer; a high-quality 64-bit mixing function."""
    z = np.asarray(x, dtype=np.uint64)
    with np.errstate(over="ignore"):
        z = (z + np.uint64(0x9E3779B97F4A7C15)) & _MASK64
        z = ((z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & _MASK64
        z = ((z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & _MASK64
        z = z ^ (z >> np.uint64(31))
    return z


def hash64(x: np.ndarray | int, seed: int = 0) -> np.ndarray:
    """Seeded vectorized 64-bit hash built on :func:`splitmix64`."""
    z = np.asarray(x, dtype=np.uint64)
    with np.errstate(over="ignore"):
        z = z ^ (np.uint64(seed & 0xFFFFFFFFFFFFFFFF) * np.uint64(0x9E3779B97F4A7C15) & _MASK64)
    return splitmix64(z)


def deterministic_hash_permutation(n: int, seed: int = 1) -> np.ndarray:
    """Return a deterministic pseudo-random permutation of ``[0, n)``.

    The permutation is produced by sorting the vertex ids by their seeded
    64-bit hash value.  Ties (which are astronomically unlikely but possible)
    are broken by the original id, so the result is always a valid permutation.

    Parameters
    ----------
    n:
        Number of vertices.
    seed:
        Hash seed; different seeds give unrelated permutations.

    Returns
    -------
    numpy.ndarray
        ``perm`` with ``perm[old_id] = new_id`` and dtype ``int64``.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    ids = np.arange(n, dtype=np.uint64)
    keys = hash64(ids, seed=seed)
    order = np.argsort(keys, kind="stable")
    perm = np.empty(n, dtype=np.int64)
    perm[order] = np.arange(n, dtype=np.int64)
    return perm


def random_sources(
    n: int,
    count: int,
    rng: np.random.Generator | int | None = None,
    degrees: np.ndarray | None = None,
) -> np.ndarray:
    """Pick BFS source vertices the way the paper does.

    The paper runs 140 BFS iterations from randomly generated sources and only
    keeps runs that traverse more than one iteration (i.e. the source has at
    least one neighbour).  When ``degrees`` is given we restrict the candidate
    pool to vertices of non-zero degree, mirroring that filter.

    Parameters
    ----------
    n:
        Number of vertices in the graph.
    count:
        Number of sources to draw (with replacement, as in Graph500).
    rng:
        Seed or generator.
    degrees:
        Optional per-vertex degree array used to exclude isolated vertices.
    """
    gen = make_rng(rng)
    if n <= 0:
        raise ValueError("graph has no vertices to pick sources from")
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if degrees is not None:
        degrees = np.asarray(degrees)
        candidates = np.flatnonzero(degrees > 0)
        if candidates.size == 0:
            raise ValueError("all vertices are isolated; no valid BFS sources")
        picks = gen.integers(0, candidates.size, size=count)
        return candidates[picks].astype(np.int64)
    return gen.integers(0, n, size=count).astype(np.int64)
