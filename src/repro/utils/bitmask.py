"""Packed bitmask containers.

The paper keeps the visited status of *delegates* (high out-degree vertices
replicated on every GPU) as a bitmask with one bit per delegate, because the
masks are all-reduced across the cluster every iteration and communication
volume matters: ``d/8`` bytes per mask instead of ``4d`` or ``8d`` bytes for
an index list.

:class:`Bitmask` wraps a ``numpy.uint8`` array in packed (``numpy.packbits``)
layout and exposes the handful of operations the BFS engine needs:

* set / test individual bits and vectors of bit positions,
* bitwise OR merge (the reduction operator used for mask all-reduce),
* difference (``new & ~old``) to find newly visited delegates,
* conversion to/from index arrays,
* byte-level views for the communication layer.

:class:`BatchBitmask` is the 2-D extension used by the batched (MS-BFS style)
traversal path: one *row* per vertex, one *lane bit* per concurrent source,
stored as ``uint64`` words so that a whole batch of traversals shares a single
frontier sweep and a single delegate reduction.  Its row-wise OR is exactly
the per-vertex "which sources reached me" merge the MS-BFS literature calls
``visit``/``seen`` bit operations.

Everything is vectorized; no per-bit Python loops appear on hot paths.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["Bitmask", "BatchBitmask"]


class Bitmask:
    """A fixed-size packed bitmask over ``size`` bit positions.

    Parameters
    ----------
    size:
        Number of addressable bits.  The backing buffer is padded to a whole
        number of bytes.
    buffer:
        Optional pre-existing packed ``uint8`` buffer to wrap (no copy).  Its
        length must be ``ceil(size / 8)``.
    """

    __slots__ = ("_size", "_bits")

    def __init__(self, size: int, buffer: np.ndarray | None = None) -> None:
        if size < 0:
            raise ValueError(f"bitmask size must be non-negative, got {size}")
        self._size = int(size)
        nbytes = (self._size + 7) // 8
        if buffer is None:
            self._bits = np.zeros(nbytes, dtype=np.uint8)
        else:
            buffer = np.asarray(buffer, dtype=np.uint8)
            if buffer.shape != (nbytes,):
                raise ValueError(
                    f"buffer has shape {buffer.shape}, expected ({nbytes},) "
                    f"for a bitmask of {size} bits"
                )
            self._bits = buffer

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_indices(cls, size: int, indices: Iterable[int] | np.ndarray) -> "Bitmask":
        """Build a mask of ``size`` bits with the given positions set."""
        mask = cls(size)
        mask.set_many(np.asarray(list(indices) if not isinstance(indices, np.ndarray) else indices))
        return mask

    @classmethod
    def from_bool_array(cls, flags: np.ndarray) -> "Bitmask":
        """Build a mask from a boolean array (one element per bit)."""
        flags = np.asarray(flags, dtype=bool)
        mask = cls(flags.size)
        if flags.size:
            mask._bits[:] = np.packbits(flags, bitorder="little")
        return mask

    def copy(self) -> "Bitmask":
        """Return a deep copy."""
        return Bitmask(self._size, self._bits.copy())

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of addressable bits."""
        return self._size

    @property
    def nbytes(self) -> int:
        """Length of the packed backing buffer in bytes."""
        return self._bits.nbytes

    @property
    def buffer(self) -> np.ndarray:
        """The packed ``uint8`` backing buffer (shared, not a copy)."""
        return self._bits

    def count(self) -> int:
        """Number of set bits."""
        if self._size == 0:
            return 0
        return int(np.unpackbits(self._bits, count=self._size, bitorder="little").sum())

    def any(self) -> bool:
        """``True`` if at least one bit is set."""
        return bool(self._bits.any())

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Bitmask(size={self._size}, set={self.count()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmask):
            return NotImplemented
        return self._size == other._size and bool(np.array_equal(self._bits, other._bits))

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("Bitmask is mutable and unhashable")

    # ------------------------------------------------------------------ #
    # Bit access
    # ------------------------------------------------------------------ #
    def _check_bounds(self, idx: np.ndarray) -> None:
        if idx.size and (idx.min() < 0 or idx.max() >= self._size):
            raise IndexError(
                f"bit index out of range [0, {self._size}): "
                f"min={idx.min() if idx.size else None}, max={idx.max() if idx.size else None}"
            )

    def set(self, index: int) -> None:
        """Set a single bit."""
        self.set_many(np.asarray([index], dtype=np.int64))

    def clear(self, index: int) -> None:
        """Clear a single bit."""
        idx = np.asarray([index], dtype=np.int64)
        self._check_bounds(idx)
        self._bits[index >> 3] &= np.uint8(~(1 << (index & 7)) & 0xFF)

    def test(self, index: int) -> bool:
        """Test a single bit."""
        idx = np.asarray([index], dtype=np.int64)
        self._check_bounds(idx)
        return bool(self._bits[index >> 3] & np.uint8(1 << (index & 7)))

    def set_many(self, indices: np.ndarray) -> None:
        """Set many bit positions at once (vectorized).

        Dense updates (a sizable fraction of the mask) scatter into a boolean
        flag array and OR the packed bytes in — two linear passes — because
        ``np.bitwise_or.at`` runs an unbuffered per-element inner loop that is
        orders of magnitude slower on large index sets.  Sparse updates keep
        the per-index path, where the flag array's O(size) cost would
        dominate.
        """
        idx = np.asarray(indices, dtype=np.int64).ravel()
        if idx.size == 0:
            return
        self._check_bounds(idx)
        if idx.size * 64 >= self._size:
            flags = np.zeros(self._bits.size * 8, dtype=bool)
            flags[idx] = True
            np.bitwise_or(
                self._bits, np.packbits(flags, bitorder="little"), out=self._bits
            )
            return
        byte_idx = idx >> 3
        bit_vals = np.left_shift(np.uint8(1), (idx & 7).astype(np.uint8))
        np.bitwise_or.at(self._bits, byte_idx, bit_vals)

    def test_many(self, indices: np.ndarray) -> np.ndarray:
        """Return a boolean array: whether each given bit position is set."""
        idx = np.asarray(indices, dtype=np.int64).ravel()
        if idx.size == 0:
            return np.zeros(0, dtype=bool)
        self._check_bounds(idx)
        byte_idx = idx >> 3
        bit_vals = np.left_shift(np.uint8(1), (idx & 7).astype(np.uint8))
        return (self._bits[byte_idx] & bit_vals) != 0

    # ------------------------------------------------------------------ #
    # Whole-mask operations
    # ------------------------------------------------------------------ #
    def or_with(self, other: "Bitmask") -> "Bitmask":
        """In-place bitwise OR with another mask of the same size."""
        self._require_same_size(other)
        np.bitwise_or(self._bits, other._bits, out=self._bits)
        return self

    def or_buffer(self, packed: np.ndarray) -> "Bitmask":
        """In-place bitwise OR with a raw packed buffer."""
        packed = np.asarray(packed, dtype=np.uint8)
        if packed.shape != self._bits.shape:
            raise ValueError(
                f"packed buffer shape {packed.shape} != mask buffer shape {self._bits.shape}"
            )
        np.bitwise_or(self._bits, packed, out=self._bits)
        return self

    def and_not(self, other: "Bitmask") -> "Bitmask":
        """Return a new mask with ``self & ~other`` (bits set here but not there)."""
        self._require_same_size(other)
        out = Bitmask(self._size, np.bitwise_and(self._bits, np.bitwise_not(other._bits)))
        out._mask_tail()
        return out

    def difference_indices(self, other: "Bitmask") -> np.ndarray:
        """Indices of bits set in ``self`` but not in ``other``."""
        return self.and_not(other).to_indices()

    def to_indices(self) -> np.ndarray:
        """Return the sorted ``int64`` array of set bit positions."""
        if self._size == 0:
            return np.zeros(0, dtype=np.int64)
        flags = np.unpackbits(self._bits, count=self._size, bitorder="little")
        return np.flatnonzero(flags).astype(np.int64)

    def to_bool_array(self) -> np.ndarray:
        """Return the mask as a boolean array of length ``size``."""
        if self._size == 0:
            return np.zeros(0, dtype=bool)
        return np.unpackbits(self._bits, count=self._size, bitorder="little").astype(bool)

    def clear_all(self) -> None:
        """Clear every bit."""
        self._bits[:] = 0

    def fill_all(self) -> None:
        """Set every bit (only within ``size``; padding bits stay clear)."""
        self._bits[:] = 0xFF
        self._mask_tail()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _require_same_size(self, other: "Bitmask") -> None:
        if self._size != other._size:
            raise ValueError(f"bitmask size mismatch: {self._size} != {other._size}")

    def _mask_tail(self) -> None:
        """Zero out padding bits beyond ``size`` in the last byte."""
        extra = self._bits.size * 8 - self._size
        if extra and self._bits.size:
            keep = 8 - extra
            self._bits[-1] &= np.uint8((1 << keep) - 1)


class BatchBitmask:
    """A 2-D bitmask: ``rows`` vertices x ``width`` batch lanes.

    Each row holds one bit per lane (per concurrent traversal source), packed
    into ``uint64`` words, so the per-vertex state of a whole batch fits in
    ``ceil(width / 64)`` machine words.  This is the MS-BFS-style extension of
    the paper's packed delegate masks: OR-ing two masks merges the
    discoveries of *every* source in the batch at once, and one delegate
    reduction of ``rows * width`` bits replaces ``width`` separate reductions
    of ``rows`` bits.

    Parameters
    ----------
    rows:
        Number of addressable rows (vertices).
    width:
        Number of lanes (batch width B).
    words:
        Optional pre-existing ``uint64`` backing array of shape
        ``(rows, ceil(width / 64))`` to wrap (no copy).
    """

    __slots__ = ("_rows", "_width", "_words")

    def __init__(self, rows: int, width: int, words: np.ndarray | None = None) -> None:
        if rows < 0:
            raise ValueError(f"rows must be non-negative, got {rows}")
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        self._rows = int(rows)
        self._width = int(width)
        nwords = (self._width + 63) // 64
        if words is None:
            self._words = np.zeros((self._rows, nwords), dtype=np.uint64)
        else:
            words = np.asarray(words, dtype=np.uint64)
            if words.shape != (self._rows, nwords):
                raise ValueError(
                    f"words has shape {words.shape}, expected ({self._rows}, {nwords}) "
                    f"for a {self._rows}x{self._width} batch bitmask"
                )
            self._words = words

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_lane_sets(
        cls, rows: int, width: int, row_ids: np.ndarray, lanes: np.ndarray
    ) -> "BatchBitmask":
        """Build a mask with bit ``lanes[i]`` of row ``row_ids[i]`` set."""
        mask = cls(rows, width)
        mask.set_lanes(np.asarray(row_ids), np.asarray(lanes))
        return mask

    def copy(self) -> "BatchBitmask":
        """Return a deep copy."""
        return BatchBitmask(self._rows, self._width, self._words.copy())

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def rows(self) -> int:
        """Number of addressable rows."""
        return self._rows

    @property
    def width(self) -> int:
        """Number of lanes (batch width B)."""
        return self._width

    @property
    def nwords(self) -> int:
        """``uint64`` words per row."""
        return self._words.shape[1]

    @property
    def words(self) -> np.ndarray:
        """The ``(rows, nwords)`` ``uint64`` backing array (shared, not a copy)."""
        return self._words

    @property
    def packed_nbytes(self) -> int:
        """Logical wire size: ``ceil(rows * width / 8)`` bytes.

        The backing array pads each row to whole words; communication volume
        is modeled on the tightly packed size, matching the paper's ``d/8``
        accounting for 1-bit masks.
        """
        return (self._rows * self._width + 7) // 8

    def count(self) -> int:
        """Total number of set bits across all rows."""
        if self._rows == 0:
            return 0
        return int(np.unpackbits(self._words.view(np.uint8)).sum())

    def any(self) -> bool:
        """``True`` if at least one bit is set anywhere."""
        return bool(self._words.any())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"BatchBitmask(rows={self._rows}, width={self._width}, set={self.count()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BatchBitmask):
            return NotImplemented
        return (
            self._rows == other._rows
            and self._width == other._width
            and bool(np.array_equal(self._words, other._words))
        )

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("BatchBitmask is mutable and unhashable")

    # ------------------------------------------------------------------ #
    # Row access
    # ------------------------------------------------------------------ #
    def _check_rows(self, row_ids: np.ndarray) -> None:
        if row_ids.size and (row_ids.min() < 0 or row_ids.max() >= self._rows):
            raise IndexError(f"row index out of range [0, {self._rows})")

    def _check_lanes(self, lanes: np.ndarray) -> None:
        if lanes.size and (lanes.min() < 0 or lanes.max() >= self._width):
            raise IndexError(f"lane index out of range [0, {self._width})")

    def set_lanes(self, row_ids: np.ndarray, lanes: np.ndarray) -> None:
        """Set bit ``lanes[i]`` of row ``row_ids[i]`` (vectorized, duplicates ok)."""
        row_ids = np.asarray(row_ids, dtype=np.int64).ravel()
        lanes = np.asarray(lanes, dtype=np.int64).ravel()
        if row_ids.size != lanes.size:
            raise ValueError(f"{row_ids.size} rows vs {lanes.size} lanes")
        if row_ids.size == 0:
            return
        self._check_rows(row_ids)
        self._check_lanes(lanes)
        words = np.left_shift(np.uint64(1), (lanes & 63).astype(np.uint64))
        np.bitwise_or.at(self._words, (row_ids, lanes >> 6), words)

    def or_rows(self, row_ids: np.ndarray, words: np.ndarray) -> None:
        """OR full word-rows into the given rows (duplicates combine)."""
        row_ids = np.asarray(row_ids, dtype=np.int64).ravel()
        if row_ids.size == 0:
            return
        self._check_rows(row_ids)
        words = np.asarray(words, dtype=np.uint64).reshape(row_ids.size, self.nwords)
        np.bitwise_or.at(self._words, row_ids, words)

    def get_rows(self, row_ids: np.ndarray) -> np.ndarray:
        """Word rows for the given row ids (a ``(len, nwords)`` copy)."""
        row_ids = np.asarray(row_ids, dtype=np.int64).ravel()
        self._check_rows(row_ids)
        return self._words[row_ids]

    def rows_any(self) -> np.ndarray:
        """Boolean array: whether each row has at least one bit set."""
        return self._words.any(axis=1)

    def nonzero_rows(self) -> np.ndarray:
        """Sorted ``int64`` ids of rows with at least one bit set."""
        return np.flatnonzero(self.rows_any()).astype(np.int64)

    def lane_rows(self, lane: int) -> np.ndarray:
        """Sorted ``int64`` ids of rows whose bit ``lane`` is set."""
        if not 0 <= lane < self._width:
            raise IndexError(f"lane index out of range [0, {self._width})")
        bit = (self._words[:, lane >> 6] >> np.uint64(lane & 63)) & np.uint64(1)
        return np.flatnonzero(bit).astype(np.int64)

    # ------------------------------------------------------------------ #
    # Whole-mask operations
    # ------------------------------------------------------------------ #
    def _require_same_shape(self, other: "BatchBitmask") -> None:
        if self._rows != other._rows or self._width != other._width:
            raise ValueError(
                f"batch bitmask shape mismatch: {self._rows}x{self._width} != "
                f"{other._rows}x{other._width}"
            )

    def or_with(self, other: "BatchBitmask") -> "BatchBitmask":
        """In-place element-wise OR with another mask of the same shape."""
        self._require_same_shape(other)
        np.bitwise_or(self._words, other._words, out=self._words)
        return self

    def and_not(self, other: "BatchBitmask") -> "BatchBitmask":
        """Return a new mask with ``self & ~other`` (bits set here but not there)."""
        self._require_same_shape(other)
        return BatchBitmask(
            self._rows,
            self._width,
            np.bitwise_and(self._words, np.bitwise_not(other._words)),
        )

    def clear_all(self) -> None:
        """Clear every bit."""
        self._words[:] = 0
