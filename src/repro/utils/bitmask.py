"""Packed bitmask container.

The paper keeps the visited status of *delegates* (high out-degree vertices
replicated on every GPU) as a bitmask with one bit per delegate, because the
masks are all-reduced across the cluster every iteration and communication
volume matters: ``d/8`` bytes per mask instead of ``4d`` or ``8d`` bytes for
an index list.

:class:`Bitmask` wraps a ``numpy.uint8`` array in packed (``numpy.packbits``)
layout and exposes the handful of operations the BFS engine needs:

* set / test individual bits and vectors of bit positions,
* bitwise OR merge (the reduction operator used for mask all-reduce),
* difference (``new & ~old``) to find newly visited delegates,
* conversion to/from index arrays,
* byte-level views for the communication layer.

Everything is vectorized; no per-bit Python loops appear on hot paths.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["Bitmask"]


class Bitmask:
    """A fixed-size packed bitmask over ``size`` bit positions.

    Parameters
    ----------
    size:
        Number of addressable bits.  The backing buffer is padded to a whole
        number of bytes.
    buffer:
        Optional pre-existing packed ``uint8`` buffer to wrap (no copy).  Its
        length must be ``ceil(size / 8)``.
    """

    __slots__ = ("_size", "_bits")

    def __init__(self, size: int, buffer: np.ndarray | None = None) -> None:
        if size < 0:
            raise ValueError(f"bitmask size must be non-negative, got {size}")
        self._size = int(size)
        nbytes = (self._size + 7) // 8
        if buffer is None:
            self._bits = np.zeros(nbytes, dtype=np.uint8)
        else:
            buffer = np.asarray(buffer, dtype=np.uint8)
            if buffer.shape != (nbytes,):
                raise ValueError(
                    f"buffer has shape {buffer.shape}, expected ({nbytes},) "
                    f"for a bitmask of {size} bits"
                )
            self._bits = buffer

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_indices(cls, size: int, indices: Iterable[int] | np.ndarray) -> "Bitmask":
        """Build a mask of ``size`` bits with the given positions set."""
        mask = cls(size)
        mask.set_many(np.asarray(list(indices) if not isinstance(indices, np.ndarray) else indices))
        return mask

    @classmethod
    def from_bool_array(cls, flags: np.ndarray) -> "Bitmask":
        """Build a mask from a boolean array (one element per bit)."""
        flags = np.asarray(flags, dtype=bool)
        mask = cls(flags.size)
        if flags.size:
            mask._bits[:] = np.packbits(flags, bitorder="little")
        return mask

    def copy(self) -> "Bitmask":
        """Return a deep copy."""
        return Bitmask(self._size, self._bits.copy())

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of addressable bits."""
        return self._size

    @property
    def nbytes(self) -> int:
        """Length of the packed backing buffer in bytes."""
        return self._bits.nbytes

    @property
    def buffer(self) -> np.ndarray:
        """The packed ``uint8`` backing buffer (shared, not a copy)."""
        return self._bits

    def count(self) -> int:
        """Number of set bits."""
        if self._size == 0:
            return 0
        return int(np.unpackbits(self._bits, count=self._size, bitorder="little").sum())

    def any(self) -> bool:
        """``True`` if at least one bit is set."""
        return bool(self._bits.any())

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Bitmask(size={self._size}, set={self.count()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmask):
            return NotImplemented
        return self._size == other._size and bool(np.array_equal(self._bits, other._bits))

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("Bitmask is mutable and unhashable")

    # ------------------------------------------------------------------ #
    # Bit access
    # ------------------------------------------------------------------ #
    def _check_bounds(self, idx: np.ndarray) -> None:
        if idx.size and (idx.min() < 0 or idx.max() >= self._size):
            raise IndexError(
                f"bit index out of range [0, {self._size}): "
                f"min={idx.min() if idx.size else None}, max={idx.max() if idx.size else None}"
            )

    def set(self, index: int) -> None:
        """Set a single bit."""
        self.set_many(np.asarray([index], dtype=np.int64))

    def clear(self, index: int) -> None:
        """Clear a single bit."""
        idx = np.asarray([index], dtype=np.int64)
        self._check_bounds(idx)
        self._bits[index >> 3] &= np.uint8(~(1 << (index & 7)) & 0xFF)

    def test(self, index: int) -> bool:
        """Test a single bit."""
        idx = np.asarray([index], dtype=np.int64)
        self._check_bounds(idx)
        return bool(self._bits[index >> 3] & np.uint8(1 << (index & 7)))

    def set_many(self, indices: np.ndarray) -> None:
        """Set many bit positions at once (vectorized).

        Dense updates (a sizable fraction of the mask) scatter into a boolean
        flag array and OR the packed bytes in — two linear passes — because
        ``np.bitwise_or.at`` runs an unbuffered per-element inner loop that is
        orders of magnitude slower on large index sets.  Sparse updates keep
        the per-index path, where the flag array's O(size) cost would
        dominate.
        """
        idx = np.asarray(indices, dtype=np.int64).ravel()
        if idx.size == 0:
            return
        self._check_bounds(idx)
        if idx.size * 64 >= self._size:
            flags = np.zeros(self._bits.size * 8, dtype=bool)
            flags[idx] = True
            np.bitwise_or(
                self._bits, np.packbits(flags, bitorder="little"), out=self._bits
            )
            return
        byte_idx = idx >> 3
        bit_vals = np.left_shift(np.uint8(1), (idx & 7).astype(np.uint8))
        np.bitwise_or.at(self._bits, byte_idx, bit_vals)

    def test_many(self, indices: np.ndarray) -> np.ndarray:
        """Return a boolean array: whether each given bit position is set."""
        idx = np.asarray(indices, dtype=np.int64).ravel()
        if idx.size == 0:
            return np.zeros(0, dtype=bool)
        self._check_bounds(idx)
        byte_idx = idx >> 3
        bit_vals = np.left_shift(np.uint8(1), (idx & 7).astype(np.uint8))
        return (self._bits[byte_idx] & bit_vals) != 0

    # ------------------------------------------------------------------ #
    # Whole-mask operations
    # ------------------------------------------------------------------ #
    def or_with(self, other: "Bitmask") -> "Bitmask":
        """In-place bitwise OR with another mask of the same size."""
        self._require_same_size(other)
        np.bitwise_or(self._bits, other._bits, out=self._bits)
        return self

    def or_buffer(self, packed: np.ndarray) -> "Bitmask":
        """In-place bitwise OR with a raw packed buffer."""
        packed = np.asarray(packed, dtype=np.uint8)
        if packed.shape != self._bits.shape:
            raise ValueError(
                f"packed buffer shape {packed.shape} != mask buffer shape {self._bits.shape}"
            )
        np.bitwise_or(self._bits, packed, out=self._bits)
        return self

    def and_not(self, other: "Bitmask") -> "Bitmask":
        """Return a new mask with ``self & ~other`` (bits set here but not there)."""
        self._require_same_size(other)
        out = Bitmask(self._size, np.bitwise_and(self._bits, np.bitwise_not(other._bits)))
        out._mask_tail()
        return out

    def difference_indices(self, other: "Bitmask") -> np.ndarray:
        """Indices of bits set in ``self`` but not in ``other``."""
        return self.and_not(other).to_indices()

    def to_indices(self) -> np.ndarray:
        """Return the sorted ``int64`` array of set bit positions."""
        if self._size == 0:
            return np.zeros(0, dtype=np.int64)
        flags = np.unpackbits(self._bits, count=self._size, bitorder="little")
        return np.flatnonzero(flags).astype(np.int64)

    def to_bool_array(self) -> np.ndarray:
        """Return the mask as a boolean array of length ``size``."""
        if self._size == 0:
            return np.zeros(0, dtype=bool)
        return np.unpackbits(self._bits, count=self._size, bitorder="little").astype(bool)

    def clear_all(self) -> None:
        """Clear every bit."""
        self._bits[:] = 0

    def fill_all(self) -> None:
        """Set every bit (only within ``size``; padding bits stay clear)."""
        self._bits[:] = 0xFF
        self._mask_tail()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _require_same_size(self, other: "Bitmask") -> None:
        if self._size != other._size:
            raise ValueError(f"bitmask size mismatch: {self._size} != {other._size}")

    def _mask_tail(self) -> None:
        """Zero out padding bits beyond ``size`` in the last byte."""
        extra = self._bits.size * 8 - self._size
        if extra and self._bits.size:
            keep = 8 - extra
            self._bits[-1] &= np.uint8((1 << keep) - 1)
