"""repro — a reproduction of "Scalable Breadth-First Search on a GPU Cluster".

The library implements the complete system described by Pan, Pearce and Owens
(IPDPS workshops / arXiv:1803.03922, 2018) on top of a *simulated* GPU
cluster: degree separation of vertices into delegates and normal vertices, the
modular edge distributor, the four per-GPU CSR subgraphs with 32-bit local
ids, per-subgraph direction-optimized traversal kernels, and the two-part
communication model (global delegate-mask reductions plus point-to-point
normal-vertex exchange) — together with the baselines, analytic cost models
and experiment harnesses needed to regenerate every table and figure of the
paper's evaluation at laptop scale.

Quickstart
----------
>>> from repro import ClusterLayout, DistributedBFS, build_partitions, generate_rmat
>>> edges = generate_rmat(12, rng=3)
>>> layout = ClusterLayout(num_ranks=2, gpus_per_rank=2)
>>> graph = build_partitions(edges, layout, threshold=64)
>>> result = DistributedBFS(graph).run(source=0)
>>> result.distances.shape
(4096,)

See ``examples/`` for end-to-end scripts and ``benchmarks/`` for the
per-figure experiment harnesses.
"""

from repro.cluster import HardwareSpec, NetworkModel
from repro.core import BFSOptions, BFSResult, DistributedBFS
from repro.graph import EdgeList, friendster_like, generate_rmat, wdc_like
from repro.partition import ClusterLayout, build_partitions, suggest_threshold
from repro.validate import validate_distances

__all__ = [
    "__version__",
    "EdgeList",
    "generate_rmat",
    "friendster_like",
    "wdc_like",
    "ClusterLayout",
    "build_partitions",
    "suggest_threshold",
    "DistributedBFS",
    "BFSOptions",
    "BFSResult",
    "HardwareSpec",
    "NetworkModel",
    "validate_distances",
]

__version__ = "1.0.0"
