"""repro — a reproduction of "Scalable Breadth-First Search on a GPU Cluster".

The library implements the complete system described by Pan, Pearce and Owens
(IPDPS workshops / arXiv:1803.03922, 2018) on top of a *simulated* GPU
cluster: degree separation of vertices into delegates and normal vertices, the
modular edge distributor, the four per-GPU CSR subgraphs with 32-bit local
ids, per-subgraph direction-optimized traversal kernels, and the two-part
communication model (global delegate reductions plus point-to-point
normal-vertex exchange) — together with the baselines, analytic cost models
and experiment harnesses needed to regenerate every table and figure of the
paper's evaluation at laptop scale.

Beyond the paper, the traversal core is an algorithm-agnostic
:class:`TraversalEngine` executing pluggable :class:`FrontierProgram` s
(Gunrock-style operator decomposition): BFS hop levels, Graph500 parent
trees, connected components and k-hop reachability all share the
partitioner, the communication channels and the performance model.

Quickstart (fluent API)
-----------------------
>>> import repro
>>> graph = repro.session(layout="2x1x2").generate(scale=12, seed=3).threshold(repro.auto).build()
>>> result = graph.bfs(source=0)
>>> result.distances.shape
(4096,)
>>> graph.components().num_components >= 1
True

Quickstart (explicit API, as the benchmarks use it)
---------------------------------------------------
>>> from repro import ClusterLayout, DistributedBFS, build_partitions, generate_rmat
>>> edges = generate_rmat(12, rng=3)
>>> layout = ClusterLayout(num_ranks=2, gpus_per_rank=2)
>>> pgraph = build_partitions(edges, layout, threshold=64)
>>> result = DistributedBFS(pgraph).run(source=0)
>>> result.distances.shape
(4096,)

See ``examples/`` for end-to-end scripts and ``benchmarks/`` for the
per-figure experiment harnesses.
"""

from repro.bench import compare_artifacts, load_artifact, quick_scenarios, run_suite
from repro.cluster import HardwareSpec, NetworkModel
from repro.core import (
    BFSLevels,
    BFSOptions,
    BFSParents,
    BFSResult,
    Campaign,
    ComponentsResult,
    ConnectedComponents,
    DistributedBFS,
    FrontierProgram,
    KHopReachability,
    ParentTreeResult,
    ReachabilityResult,
    TraversalEngine,
    TraversalResult,
    run_campaign,
)
from repro.graph import EdgeList, friendster_like, generate_rmat, wdc_like
from repro.partition import ClusterLayout, build_partitions, suggest_threshold
from repro.session import GraphSession, Session, auto, session
from repro.validate import validate_distances

__all__ = [
    "__version__",
    # graphs
    "EdgeList",
    "generate_rmat",
    "friendster_like",
    "wdc_like",
    # partitioning
    "ClusterLayout",
    "build_partitions",
    "suggest_threshold",
    # engine + programs
    "TraversalEngine",
    "DistributedBFS",
    "FrontierProgram",
    "BFSLevels",
    "BFSParents",
    "ConnectedComponents",
    "KHopReachability",
    # results
    "TraversalResult",
    "BFSResult",
    "ParentTreeResult",
    "ComponentsResult",
    "ReachabilityResult",
    "Campaign",
    "run_campaign",
    # options + hardware
    "BFSOptions",
    "HardwareSpec",
    "NetworkModel",
    # fluent facade
    "session",
    "Session",
    "GraphSession",
    "auto",
    # validation
    "validate_distances",
    # benchmarking
    "run_suite",
    "quick_scenarios",
    "compare_artifacts",
    "load_artifact",
]

__version__ = "2.0.0"
