"""repro — a reproduction of "Scalable Breadth-First Search on a GPU Cluster".

The library implements the complete system described by Pan, Pearce and Owens
(IPDPS workshops / arXiv:1803.03922, 2018) on top of a *simulated* GPU
cluster: degree separation of vertices into delegates and normal vertices, the
modular edge distributor, the four per-GPU CSR subgraphs with 32-bit local
ids, per-subgraph direction-optimized traversal kernels, and the two-part
communication model (global delegate reductions plus point-to-point
normal-vertex exchange) — together with the baselines, analytic cost models
and experiment harnesses needed to regenerate every table and figure of the
paper's evaluation at laptop scale.

Beyond the paper, the traversal core is an algorithm-agnostic
:class:`TraversalEngine` executing pluggable :class:`FrontierProgram` s
(Gunrock-style operator decomposition): BFS hop levels, Graph500 parent
trees, connected components and k-hop reachability all share the
partitioner, the communication channels and the performance model.  The
engine also runs MS-BFS-style *batches* — B sources through one frontier
sweep with per-vertex lane bitsets — and :mod:`repro.serve` builds a
query-serving layer on top (admission coalescing, LRU result cache,
queries/second benchmarks).  :mod:`repro.dynamic` makes graphs *mutable*:
edge-delta batches land in a per-GPU adjacency overlay (compacted back into
clean CSR on demand), maintained answers are repaired incrementally from a
bounded frontier instead of recomputed, and the serve layer invalidates its
cache by graph-version epoch bumps.

Quickstart (fluent API)
-----------------------
>>> import repro
>>> graph = repro.session(layout="2x1x2").generate(scale=12, seed=3).threshold(repro.auto).build()
>>> result = graph.bfs(source=0)
>>> result.distances.shape
(4096,)
>>> graph.components().num_components >= 1
True

Quickstart (explicit API, as the benchmarks use it)
---------------------------------------------------
>>> from repro import ClusterLayout, DistributedBFS, build_partitions, generate_rmat
>>> edges = generate_rmat(12, rng=3)
>>> layout = ClusterLayout(num_ranks=2, gpus_per_rank=2)
>>> pgraph = build_partitions(edges, layout, threshold=64)
>>> result = DistributedBFS(pgraph).run(source=0)
>>> result.distances.shape
(4096,)

See ``examples/`` for end-to-end scripts and ``benchmarks/`` for the
per-figure experiment harnesses.
"""

from repro.bench import compare_artifacts, load_artifact, quick_scenarios, run_suite
from repro.cluster import HardwareSpec, NetworkModel
from repro.exec import ExecutionBackend, InlineBackend
from repro.core import (
    BatchedBFSLevels,
    BatchedReachability,
    BatchResult,
    BFSLevels,
    BFSOptions,
    BFSParents,
    BFSResult,
    Campaign,
    ComponentsResult,
    ConnectedComponents,
    DistributedBFS,
    FrontierProgram,
    KHopReachability,
    ParentTreeResult,
    ReachabilityResult,
    TraversalEngine,
    TraversalResult,
    run_campaign,
)
from repro.dynamic import (
    DynamicEngine,
    DynamicGraph,
    EdgeDelta,
    MaintainedComponents,
    MaintainedLevels,
    MaintainedSSSP,
    update_stream,
)
from repro.graph import EdgeList, friendster_like, generate_rmat, wdc_like
from repro.partition import ClusterLayout, build_partitions, suggest_threshold
from repro.serve import MixedWorkload, Query, QueryService, ZipfWorkload
from repro.session import GraphSession, Session, auto, session
from repro.validate import validate_distances
from repro.weighted import (
    BellmanFordSSSP,
    ComponentsHooking,
    DeltaSteppingSSSP,
    HookingResult,
    PageRank,
    PageRankResult,
    SSSPResult,
    TriangleCount,
    TriangleCountResult,
)

__all__ = [
    "__version__",
    # graphs
    "EdgeList",
    "generate_rmat",
    "friendster_like",
    "wdc_like",
    # partitioning
    "ClusterLayout",
    "build_partitions",
    "suggest_threshold",
    # engine + programs
    "TraversalEngine",
    "DistributedBFS",
    "FrontierProgram",
    "BFSLevels",
    "BFSParents",
    "ConnectedComponents",
    "KHopReachability",
    "BatchedBFSLevels",
    "BatchedReachability",
    # weighted zoo
    "BellmanFordSSSP",
    "DeltaSteppingSSSP",
    "PageRank",
    "ComponentsHooking",
    "TriangleCount",
    "SSSPResult",
    "PageRankResult",
    "HookingResult",
    "TriangleCountResult",
    # results
    "TraversalResult",
    "BFSResult",
    "ParentTreeResult",
    "ComponentsResult",
    "ReachabilityResult",
    "BatchResult",
    "Campaign",
    "run_campaign",
    # serving
    "QueryService",
    "Query",
    "ZipfWorkload",
    "MixedWorkload",
    # dynamic graphs
    "DynamicGraph",
    "DynamicEngine",
    "EdgeDelta",
    "update_stream",
    "MaintainedLevels",
    "MaintainedComponents",
    "MaintainedSSSP",
    # options + hardware
    "BFSOptions",
    "HardwareSpec",
    "NetworkModel",
    # execution backends ("ProcessBackend" imports lazily from repro.exec)
    "ExecutionBackend",
    "InlineBackend",
    # fluent facade
    "session",
    "Session",
    "GraphSession",
    "auto",
    # validation
    "validate_distances",
    # benchmarking
    "run_suite",
    "quick_scenarios",
    "compare_artifacts",
    "load_artifact",
]

def _detect_version() -> str:
    """The package version, sourced from the project metadata.

    A source checkout (``PYTHONPATH=src``) reads the sibling
    ``pyproject.toml`` directly — parsed with a regex because Python 3.10
    lacks :mod:`tomllib`, and *before* consulting installed metadata, which
    could belong to an older installed copy of the package rather than the
    code actually running.  Installed packages have no adjacent pyproject
    and fall through to :func:`importlib.metadata.version`.
    """
    try:
        import re
        from pathlib import Path

        pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
        match = re.search(
            r'^version\s*=\s*"([^"]+)"', pyproject.read_text(), flags=re.MULTILINE
        )
        if match:
            return match.group(1)
    except OSError:
        pass  # no adjacent pyproject.toml: running from an installed package
    try:
        from importlib.metadata import version

        return version("repro-dobfs-gpu-cluster")
    except Exception:  # pragma: no cover - neither checkout nor installed
        return "0.0.0+unknown"


__version__ = _detect_version()
