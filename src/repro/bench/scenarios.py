"""The benchmark scenario registry.

A :class:`Scenario` pins *everything* that affects a measurement: the graph
family and size, the RNG seeds (all drawn through :mod:`repro.utils.rng`, so
two runs of the same scenario produce bit-identical graphs, sources and
traversals on any machine), the cluster layout, the degree threshold, the
frontier program and the engine option set.

The registry spans the axes the paper's evaluation varies:

* **graph families** — Graph500 RMAT at several scales, uniform (Erdős–Rényi
  style) graphs, and the long-tail WDC-like web graph whose BFS runs for many
  thin iterations;
* **the shipped frontier programs** — BFS levels, BFS parent trees,
  connected components, k-hop reachability, plus the weighted zoo
  (:mod:`repro.weighted`): delta-stepping SSSP (with its Bellman-Ford
  baseline recorded side by side), fixed-point PageRank, hooking
  components and triangle counting;
* **the BFS option grid** — direction optimization on/off, blocking vs
  non-blocking delegate reduction (BR/IR), local-all2all + uniquify, and a
  sweep of delegate thresholds (which moves work between the nn exchange and
  the delegate reductions).

Scenarios flagged ``quick`` form the CI smoke subset (small scales, a couple
of seconds each); the rest only run in full sweeps.

Since the engine's execution layer became pluggable, scenarios also carry a
**backend** axis (``inline`` vs ``process``): the registry pins process-pool
twins of the large RMAT sweeps, and ``repro bench run --backend`` can force
any subset onto either backend.  The backend is not part of the scenario
*spec* — counters are backend-invariant, so cross-backend artifacts must
compare cleanly — and is recorded per artifact record instead.

Beyond the traversal scenarios, the registry carries **serving** scenarios
(``program="serve"``): a deterministic Zipf-skewed query stream replayed
through :class:`repro.serve.QueryService` over the scenario's graph, swept
across batch sizes and skews.  Their headline metric is queries/second
(recorded in the artifact's ``throughput`` section); their counters — query,
coalescing and cache statistics plus an answer checksum — are independent of
whether the service batches, so a sequential-baseline artifact and a batched
artifact of the same scenario differ only in wall time.

**Cluster serving** scenarios (``program="serve_cluster"``, the
``serve-cluster-*`` names) replay a timed *open-loop* stream — Poisson,
bursty or diurnal arrivals over the same Zipf query machinery — through N
:class:`repro.serve.QueryService` replicas on a deterministic virtual clock
(:mod:`repro.serve.cluster`).  Their headline metric is tail latency
(p50/p95/p99 and SLO violations in the artifact's ``cluster`` section);
their gated counters — arrivals, admissions, sheds, cache traffic, an
answer checksum — are independent of whether request hedging is enabled
(``repro bench run --cluster-no-hedge`` records the unhedged half of a
before/after pair) and of the execution backend, because the virtual
timeline is driven purely by modeled service times.

Since the storage subsystem (:mod:`repro.storage`) landed, scenarios also
carry a **storage** axis (``memory`` / ``mmap`` / ``compressed``), handled
exactly like the backend axis: not part of the spec (counters are
storage-invariant), recorded per artifact record, overridable with ``repro
bench run --storage``.  **Build** scenarios (``program="build"``) measure
the out-of-core pipeline itself: a chunked generator streams bounded edge
chunks through the external sort/merge into an on-disk store, the build
wall is the gated phase (``gate_phase = "graph_build"``), and a traversal
over the loaded store verifies it.

**Dynamic** scenarios (``program="dynamic"``, the ``dyn-*`` names) replay a
pinned :func:`repro.dynamic.update_stream` against a mutable graph while a
maintained answer (BFS levels or connected components) is repaired
incrementally.  Every batch *always* runs both the bounded repair and the
full recompute — the recompute doubles as the bit-identical verification —
so the counters (update totals, both paths' examined edges and modeled
times, answer checksums) are identical whichever path the run *times*;
``repro bench run --dyn-recompute`` attributes the gated ``traversal`` wall
to the recompute path instead of the repair path, giving a cleanly
comparable before/after artifact pair whose only difference is the
maintenance strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.options import BFSOptions
from repro.core.programs import (
    BFSLevels,
    BFSParents,
    ConnectedComponents,
    KHopReachability,
)
from repro.exec.backend import BACKEND_NAMES
from repro.graph.degree import out_degrees
from repro.graph.edgelist import EdgeList
from repro.utils.rng import random_sources

__all__ = ["Scenario", "REGISTRY", "registry", "quick_scenarios", "find_scenarios"]

#: Frontier-program constructors by registry name.  Single-source programs
#: receive the scenario's source vertex; the :data:`SOURCE_FREE` programs
#: (components, pagerank, hooking components, triangles) ignore it and run
#: once; ``sssp`` runs delta-stepping over the scenario's edge weights (and
#: the runner records its Bellman-Ford baseline alongside);
#: ``serve`` scenarios replay a query stream through the serving layer;
#: ``serve_cluster`` scenarios replay a timed open-loop stream through the
#: replicated cluster tier on a virtual clock; ``dynamic`` scenarios replay
#: an update stream with incremental maintenance; ``build`` scenarios stream
#: edge chunks through the out-of-core build (:mod:`repro.storage`) — their
#: gated phase is the build wall itself, and the traversal they also run is
#: the correctness verification.
PROGRAMS = (
    "levels",
    "parents",
    "components",
    "khop",
    "sssp",
    "pagerank",
    "wcc_hook",
    "triangles",
    "serve",
    "serve_cluster",
    "dynamic",
    "build",
)

#: Programs that ignore the source vertex and run exactly once per scenario.
SOURCE_FREE = ("components", "pagerank", "wcc_hook", "triangles")


@dataclass(frozen=True)
class Scenario:
    """One fully-pinned benchmark configuration."""

    name: str
    #: Graph family: ``rmat``, ``uniform`` or ``wdc``.
    kind: str
    #: log2 of the vertex count.
    scale: int
    #: Frontier program to run (one of :data:`PROGRAMS`).
    program: str
    #: Engine options.
    options: BFSOptions = field(default_factory=BFSOptions)
    #: Cluster geometry in the CLI's notation.
    layout: str = "4x1x2"
    #: Degree threshold TH; ``None`` uses the paper's suggestion.
    threshold: int | None = None
    #: Graph-generation seed (fed to :func:`repro.utils.rng.make_rng`).
    seed: int = 11
    #: How many traversal sources to run (components runs once regardless).
    sources: int = 2
    #: Hop cap for the khop program.
    max_hops: int = 3
    #: Whether this scenario belongs to the CI smoke subset.
    quick: bool = False
    #: Execution backend the engine runs super-steps on (``inline`` or
    #: ``process``).  Deliberately *not* part of :meth:`describe`: the spec
    #: identifies the workload, and workload counters are backend-invariant
    #: by construction, so artifacts recorded on different backends stay
    #: comparable (the comparator flags any drift as a correctness finding).
    #: The resolved backend is recorded at the artifact-record level instead.
    backend: str = "inline"
    #: Adjacency storage the scenario runs on (``memory``, ``mmap`` or
    #: ``compressed``); ``None`` defers to the run-time default
    #: (``bench run --storage`` / ``$REPRO_STORAGE`` / memory).  Like
    #: ``backend`` this is *not* part of :meth:`describe` — counters are
    #: storage-invariant by construction, so a memory artifact and an
    #: mmap/compressed artifact of the same scenarios must compare cleanly;
    #: the storage that actually ran is recorded per artifact record.
    #: Scenarios that mutate their graph (dynamic, serve with updates) pin
    #: memory regardless, because stores are immutable.
    storage: str | None = None
    # --- serving scenarios only (program == "serve") ------------------- #
    #: Lanes per fused MS-BFS sweep.
    batch_size: int = 32
    #: Zipf exponent of the query stream's source popularity.
    zipf_skew: float = 1.0
    #: Query stream length.
    num_queries: int = 256
    #: Candidate source pool the Zipf ranks map onto.
    pool: int = 192
    #: LRU result-cache capacity.
    cache_size: int = 128
    # --- cluster scenarios only (program == "serve_cluster") ----------- #
    #: Arrival process of the open-loop stream: "poisson", "bursty" or
    #: "diurnal".
    arrivals: str = "poisson"
    #: Long-run average offered load, queries per (virtual) second.
    arrival_rate_qps: float = 500.0
    #: Serving replicas in the pool.
    num_replicas: int = 3
    #: Admission bound: maximum in-flight requests (0 = unbounded).
    queue_limit: int = 64
    #: Hedge a straggler once its age passes this latency quantile.
    hedge_quantile: float = 0.95
    #: Completed requests required before hedging arms.
    hedge_min_samples: int = 32
    #: Latency objective (ms) for the SLO-violation counter; None disables.
    slo_ms: float | None = 50.0
    #: Request router: "affinity" (source-hashed) or "least-queue".
    router: str = "affinity"
    #: On/off cycle length (ms) of bursty arrivals.
    burst_period_ms: float = 200.0
    #: Fraction of each bursty cycle that carries traffic.
    burst_duty: float = 0.25
    #: Update batches spliced into the open-loop stream (0 = read-only).
    #: Each is fanned out to every replica via epoch-bump invalidation;
    #: size and style reuse ``update_edges`` / ``update_style``.
    cluster_updates: int = 0
    # --- dynamic scenarios only (program == "dynamic") ----------------- #
    #: Which answer is maintained across the stream: "levels" or "components".
    maintained: str = "levels"
    #: Update style of the stream ("uniform" or "pa").
    update_style: str = "uniform"
    #: Update batches applied.
    update_batches: int = 4
    #: Undirected updates per batch.
    update_edges: int = 2048
    #: Share of each batch that deletes existing edges.
    delete_fraction: float = 0.0
    # --- build scenarios only (program == "build") --------------------- #
    #: Edges per generator chunk.  Spec identity for build scenarios: the
    #: chunked generators draw per chunk, so a different chunking is a
    #: different (equally valid) graph.
    chunk_edges: int = 1 << 20
    #: Edges per external-sort block (bounds build memory; not identity —
    #: the built store is block-size-invariant).
    block_edges: int = 1 << 20
    # --- weighted zoo scenarios (sssp / pagerank / wcc_hook / triangles)  #
    #: Edge-weight seed threaded to the graph generator.  Spec identity — a
    #: different seed draws different weights, i.e. a different weighted
    #: graph.  SSSP scenarios require it; the other zoo programs ignore
    #: weights and may run on unweighted graphs.
    weights: int | None = None
    #: Delta-stepping bucket width: ``"auto"``, ``inf`` (Bellman-Ford
    #: schedule) or a positive float.
    delta: float | str = "auto"
    #: PageRank damping factor.
    damping: float = 0.85
    #: PageRank iteration schedule: ``"fixed"`` (exact fixed-point sweeps)
    #: or ``"push"`` (residual push until drained).
    pagerank_mode: str = "fixed"
    #: Sweep count of the fixed PageRank schedule.
    iterations: int = 20

    def __post_init__(self) -> None:
        if self.program not in PROGRAMS:
            raise ValueError(
                f"unknown program {self.program!r}; expected one of {PROGRAMS}"
            )
        if self.kind not in ("rmat", "uniform", "wdc"):
            raise ValueError(f"unknown graph kind {self.kind!r}")
        if self.program in ("serve", "serve_cluster") and self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.program == "serve_cluster":
            from repro.serve.cluster.openloop import ARRIVAL_KINDS

            if self.arrivals not in ARRIVAL_KINDS:
                raise ValueError(
                    f"unknown arrival kind {self.arrivals!r}; "
                    f"expected one of {ARRIVAL_KINDS}"
                )
            if not self.arrival_rate_qps > 0:
                raise ValueError(
                    f"arrival_rate_qps must be positive, got {self.arrival_rate_qps}"
                )
            if self.num_replicas < 1:
                raise ValueError(
                    f"num_replicas must be >= 1, got {self.num_replicas}"
                )
            if self.cluster_updates < 0:
                raise ValueError(
                    f"cluster_updates must be >= 0, got {self.cluster_updates}"
                )
        if self.program == "dynamic":
            if self.maintained not in ("levels", "components"):
                raise ValueError(
                    f"unknown maintained program {self.maintained!r}; "
                    "dynamic scenarios maintain 'levels' or 'components'"
                )
            if self.update_batches < 1:
                raise ValueError(
                    f"update_batches must be >= 1, got {self.update_batches}"
                )
        if self.program == "build":
            if self.kind not in ("rmat", "wdc"):
                raise ValueError(
                    "build scenarios stream a chunked generator; only 'rmat' "
                    f"and 'wdc' have one, got {self.kind!r}"
                )
            if self.chunk_edges < 1 or self.block_edges < 1:
                raise ValueError("chunk_edges and block_edges must be >= 1")
        if self.program == "sssp":
            if self.weights is None:
                raise ValueError(
                    "sssp scenarios traverse edge weights; set weights=<seed>"
                )
            if isinstance(self.delta, str):
                if self.delta != "auto":
                    raise ValueError(
                        f"delta must be 'auto', inf or a positive number, got {self.delta!r}"
                    )
            elif not float(self.delta) > 0:
                raise ValueError(
                    f"delta must be 'auto', inf or a positive number, got {self.delta!r}"
                )
        if self.program == "pagerank":
            if not 0.0 < self.damping < 1.0:
                raise ValueError(f"damping must be in (0, 1), got {self.damping!r}")
            if self.pagerank_mode not in ("fixed", "push"):
                raise ValueError(
                    f"pagerank_mode must be 'fixed' or 'push', got {self.pagerank_mode!r}"
                )
            if self.iterations < 1:
                raise ValueError(f"iterations must be >= 1, got {self.iterations}")
        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKEND_NAMES}"
            )
        if self.storage is not None:
            from repro.storage import STORAGE_NAMES

            if self.storage not in STORAGE_NAMES:
                raise ValueError(
                    f"unknown storage {self.storage!r}; expected one of {STORAGE_NAMES}"
                )

    # ------------------------------------------------------------------ #
    # Materialisation
    # ------------------------------------------------------------------ #
    def build_edges(self) -> EdgeList:
        """Generate this scenario's (prepared) edge list deterministically."""
        if self.kind == "rmat":
            from repro.graph.rmat import generate_rmat

            return generate_rmat(self.scale, rng=self.seed, weights_seed=self.weights)
        if self.kind == "uniform":
            from repro.graph.generators import uniform_random_graph

            n = 1 << self.scale
            return uniform_random_graph(
                n, num_edges=8 * n, rng=self.seed, weights_seed=self.weights
            ).prepared()
        from repro.graph.generators import wdc_like

        return wdc_like(
            num_vertices=1 << self.scale, rng=self.seed, weights_seed=self.weights
        ).prepared()

    def edge_chunks(self):
        """The bounded edge-chunk stream of a build scenario (raw, unprepared).

        Peak memory is O(``chunk_edges``); the out-of-core build pipeline
        applies the same preparation (hash relabel, loop removal, edge
        doubling, dedup) the in-memory generators do.
        """
        if self.program != "build":
            raise ValueError(f"scenario {self.name!r} is not a build scenario")
        if self.kind == "rmat":
            from repro.graph.rmat import generate_rmat_edge_chunks

            return generate_rmat_edge_chunks(
                self.scale, seed=self.seed, chunk_edges=self.chunk_edges
            )
        from repro.graph.generators import wdc_like_edge_chunks

        return wdc_like_edge_chunks(
            num_vertices=1 << self.scale, seed=self.seed, chunk_edges=self.chunk_edges
        )

    def pick_sources(self, edges: EdgeList) -> list[int]:
        """Draw the scenario's traversal sources (degree-filtered, seeded)."""
        if self.program in SOURCE_FREE:
            return [0]
        picked = random_sources(
            edges.num_vertices, self.sources, rng=self.seed + 1, degrees=out_degrees(edges)
        )
        return [int(s) for s in picked]

    def update_stream(self, edges: EdgeList):
        """The pinned update stream of a dynamic scenario."""
        if self.program != "dynamic":
            raise ValueError(f"scenario {self.name!r} is not a dynamic scenario")
        from repro.dynamic.delta import update_stream

        return update_stream(
            edges,
            num_batches=self.update_batches,
            edges_per_batch=self.update_edges,
            style=self.update_style,
            delete_fraction=self.delete_fraction,
            seed=self.seed + 3,
        )

    def make_program(self, source: int):
        """Instantiate the frontier program for one source."""
        if self.program in ("serve", "dynamic"):
            raise ValueError(
                f"{self.program} scenarios replay a stream; "
                "they have no single frontier program"
            )
        if self.program == "levels":
            return BFSLevels(source=source)
        if self.program == "parents":
            return BFSParents(source=source)
        if self.program == "khop":
            return KHopReachability(source=source, max_hops=self.max_hops)
        if self.program == "sssp":
            from repro.weighted import DeltaSteppingSSSP

            return DeltaSteppingSSSP(source, delta=self.delta)
        if self.program == "pagerank":
            from repro.weighted import PageRank

            return PageRank(
                damping=self.damping,
                mode=self.pagerank_mode,
                iterations=self.iterations,
            )
        if self.program == "wcc_hook":
            from repro.weighted import ComponentsHooking

            return ComponentsHooking()
        if self.program == "triangles":
            from repro.weighted import TriangleCount

            return TriangleCount()
        return ConnectedComponents()

    def workload(self):
        """The pinned query stream of a serving (closed- or open-loop) scenario."""
        if self.program not in ("serve", "serve_cluster"):
            raise ValueError(f"scenario {self.name!r} is not a serving scenario")
        from repro.serve.workload import ZipfWorkload

        queries = ZipfWorkload(
            num_queries=self.num_queries,
            skew=self.zipf_skew,
            pool=self.pool,
            seed=self.seed + 2,
        )
        if self.program == "serve":
            return queries
        from repro.serve.cluster.openloop import OpenLoopWorkload, make_arrivals

        return OpenLoopWorkload(
            queries=queries,
            arrivals=make_arrivals(
                self.arrivals,
                self.arrival_rate_qps,
                seed=self.seed + 4,
                period_ms=self.burst_period_ms,
                duty=self.burst_duty,
            ),
            num_updates=self.cluster_updates,
            edges_per_update=self.update_edges,
            update_style=self.update_style,
            update_seed=self.seed + 4,
        )

    def cluster_config(self, hedge: bool = True):
        """The cluster-tier configuration of a ``serve_cluster`` scenario.

        ``hedge`` is a *run mode*, not spec identity — like the serving
        scenarios' batched/sequential switch, the gated counters are
        identical either way, so a hedged and an unhedged artifact of the
        same scenario compare cleanly.
        """
        if self.program != "serve_cluster":
            raise ValueError(f"scenario {self.name!r} is not a cluster scenario")
        from repro.serve.cluster.dispatcher import ClusterConfig

        return ClusterConfig(
            queue_limit=self.queue_limit,
            hedge=hedge and self.num_replicas >= 2,
            hedge_quantile=self.hedge_quantile,
            hedge_min_samples=self.hedge_min_samples,
            slo_ms=self.slo_ms,
            router=self.router,
        )

    def describe(self) -> dict:
        """JSON-stable description embedded in artifacts (spec identity)."""
        base = {
            "kind": self.kind,
            "scale": self.scale,
            "program": self.program,
            "options": self.options.label(),
            "layout": self.layout,
            "threshold": self.threshold,
            "seed": self.seed,
            "sources": self.sources if self.program not in SOURCE_FREE else 1,
            "max_hops": self.max_hops if self.program == "khop" else None,
        }
        if self.weights is not None:
            base["weights"] = self.weights
        if self.program == "sssp":
            base["delta"] = (
                self.delta if isinstance(self.delta, str) else float(self.delta)
            )
        if self.program == "pagerank":
            base.update(
                {
                    "damping": self.damping,
                    "pagerank_mode": self.pagerank_mode,
                    "iterations": self.iterations,
                }
            )
        if self.program in ("serve", "serve_cluster"):
            base.update(
                {
                    "batch_size": self.batch_size,
                    "zipf_skew": self.zipf_skew,
                    "num_queries": self.num_queries,
                    "pool": self.pool,
                    "cache_size": self.cache_size,
                }
            )
        if self.program == "serve_cluster":
            base.update(
                {
                    "arrivals": self.arrivals,
                    "arrival_rate_qps": self.arrival_rate_qps,
                    "num_replicas": self.num_replicas,
                    "queue_limit": self.queue_limit,
                    "hedge_quantile": self.hedge_quantile,
                    "hedge_min_samples": self.hedge_min_samples,
                    "slo_ms": self.slo_ms,
                    "router": self.router,
                    "burst_period_ms": self.burst_period_ms,
                    "burst_duty": self.burst_duty,
                    "cluster_updates": self.cluster_updates,
                }
            )
            if self.cluster_updates:
                base.update(
                    {
                        "update_style": self.update_style,
                        "update_edges": self.update_edges,
                    }
                )
        if self.program == "dynamic":
            base.update(
                {
                    "maintained": self.maintained,
                    "update_style": self.update_style,
                    "update_batches": self.update_batches,
                    "update_edges": self.update_edges,
                    "delete_fraction": self.delete_fraction,
                }
            )
        if self.program == "build":
            # chunk_edges is identity (a different chunking draws a different
            # graph); block_edges is not (the store is block-size-invariant)
            # and storage is a run-time axis, so neither appears here.
            base["chunk_edges"] = self.chunk_edges
        return base


def _options(**kwargs) -> BFSOptions:
    return BFSOptions(**kwargs)


def _build_registry() -> tuple[Scenario, ...]:
    quick_scale = 14
    scenarios = [
        # --- program coverage on the paper's main configuration ---------- #
        Scenario("rmat14-levels-do-br", "rmat", quick_scale, "levels", quick=True),
        Scenario("rmat14-parents-do-br", "rmat", quick_scale, "parents", quick=True),
        Scenario("rmat14-components", "rmat", quick_scale, "components", quick=True),
        Scenario("rmat14-khop3", "rmat", quick_scale, "khop", quick=True),
        # --- BFS option grid --------------------------------------------- #
        Scenario(
            "rmat14-levels-plain-br",
            "rmat",
            quick_scale,
            "levels",
            options=_options(direction_optimized=False),
            quick=True,
        ),
        Scenario(
            "rmat14-levels-do-ir",
            "rmat",
            quick_scale,
            "levels",
            options=_options(blocking_reduce=False),
            quick=True,
        ),
        Scenario(
            "rmat14-levels-do-lu-br",
            "rmat",
            quick_scale,
            "levels",
            options=_options(local_all2all=True, uniquify=True),
            quick=True,
        ),
        # --- delegate-threshold sweep (shifts exchange vs reduce work) --- #
        Scenario(
            "rmat14-levels-do-br-th4", "rmat", quick_scale, "levels", threshold=4, quick=True
        ),
        Scenario(
            "rmat14-levels-do-br-th256",
            "rmat",
            quick_scale,
            "levels",
            threshold=256,
            quick=True,
        ),
        # --- other graph families ---------------------------------------- #
        Scenario("uniform14-levels-do-br", "uniform", quick_scale, "levels", quick=True),
        Scenario("wdc14-levels-do-br", "wdc", quick_scale, "levels", quick=True),
        Scenario(
            "rmat15-levels-do-br", "rmat", 15, "levels", quick=True
        ),
        # --- weighted program zoo ----------------------------------------- #
        # SSSP scenarios always run BOTH schedules per repeat — the gated
        # traversal wall is delta-stepping's, the Bellman-Ford baseline's
        # wall and counters land in the record's "sssp" section, and the two
        # answers are asserted bit-identical — so every artifact carries the
        # delta-vs-BF pair the paper-style evaluation needs.  The quick pair
        # (sssp + pagerank) rides inside every CI backend/storage/provider
        # counter gate.
        # delta pins the measured sweet spot on these graphs: "auto" buckets
        # (~1/avg-degree) run too many phases for the per-step overhead and
        # inf degenerates to Bellman-Ford; 0.125 relaxes ~2.6x fewer edges.
        # The quick scenario is the scale-16 pair because that is where the
        # relaxation savings dominate the per-phase overhead and the delta
        # wall decisively beats the BF wall (~1.5x); at scale 14 both
        # schedules are overhead-bound and the walls tie.
        Scenario(
            "sssp-rmat16-delta",
            "rmat",
            16,
            "sssp",
            weights=7,
            delta=0.125,
            quick=True,
        ),
        Scenario(
            "pagerank-rmat14-fixed", "rmat", quick_scale, "pagerank", weights=7, quick=True
        ),
        Scenario(
            "sssp-rmat14-delta", "rmat", quick_scale, "sssp", weights=7, delta=0.125
        ),
        Scenario(
            "pagerank-rmat15-push",
            "rmat",
            15,
            "pagerank",
            weights=7,
            pagerank_mode="push",
        ),
        Scenario("wcc-hook-rmat15", "rmat", 15, "wcc_hook"),
        Scenario("tri-rmat14", "rmat", quick_scale, "triangles"),
        # --- serving throughput (batch-size sweep x Zipf skew) ------------ #
        # Headline metric: queries/second of a Zipf-skewed stream through
        # QueryService (admission coalescing + LRU cache + MS-BFS batches).
        Scenario(
            "serve-rmat14-b16-zipf1.0",
            "rmat",
            quick_scale,
            "serve",
            batch_size=16,
            zipf_skew=1.0,
            quick=True,
        ),
        Scenario(
            "serve-rmat14-b32-zipf1.0",
            "rmat",
            quick_scale,
            "serve",
            batch_size=32,
            zipf_skew=1.0,
            quick=True,
        ),
        Scenario(
            "serve-rmat14-b32-zipf0.5",
            "rmat",
            quick_scale,
            "serve",
            batch_size=32,
            zipf_skew=0.5,
            quick=True,
        ),
        Scenario(
            "serve-rmat14-b16-uniform",
            "rmat",
            quick_scale,
            "serve",
            batch_size=16,
            zipf_skew=0.0,
            quick=True,
        ),
        # --- cluster serving: open-loop load, backpressure, hedging ------- #
        # Headline metric: tail latency (p99) under an offered load through
        # the replicated tier; the gated counters (arrivals/sheds/cache/
        # answers) are identical with hedging on or off, so a hedged and an
        # unhedged artifact of one scenario form a clean before/after pair.
        Scenario(
            "serve-cluster-rmat12-bursty",
            "rmat",
            12,
            "serve_cluster",
            num_queries=400,
            pool=256,
            cache_size=64,
            zipf_skew=1.0,
            arrivals="bursty",
            arrival_rate_qps=3000.0,
            burst_period_ms=200.0,
            burst_duty=0.25,
            num_replicas=3,
            queue_limit=48,
            hedge_quantile=0.9,
            hedge_min_samples=24,
            slo_ms=10.0,
            quick=True,
        ),
        Scenario(
            "serve-cluster-rmat14-diurnal",
            "rmat",
            quick_scale,
            "serve_cluster",
            num_queries=600,
            pool=320,
            cache_size=96,
            zipf_skew=1.0,
            arrivals="diurnal",
            arrival_rate_qps=2000.0,
            num_replicas=4,
            queue_limit=64,
            hedge_quantile=0.95,
            slo_ms=25.0,
            cluster_updates=3,
            update_edges=1024,
        ),
        # --- dynamic graphs: update streams + incremental maintenance ----- #
        # Headline metric: modeled (and wall) traversal time of incremental
        # repair vs full recompute, with both paths' counters recorded.
        Scenario(
            "dyn-rmat14-uniform-levels",
            "rmat",
            quick_scale,
            "dynamic",
            maintained="levels",
            update_style="uniform",
            update_batches=4,
            update_edges=2048,
            quick=True,
        ),
        Scenario(
            "dyn-rmat15-pa-components",
            "rmat",
            15,
            "dynamic",
            maintained="components",
            update_style="pa",
            update_batches=4,
            update_edges=2048,
        ),
        Scenario(
            "dyn-rmat16-pa-levels",
            "rmat",
            16,
            "dynamic",
            maintained="levels",
            update_style="pa",
            update_batches=8,
            update_edges=4096,
        ),
        # --- full-sweep-only scenarios (bigger scales, more sources) ----- #
        Scenario("rmat16-levels-do-br", "rmat", 16, "levels", sources=4),
        Scenario("rmat16-parents-do-br", "rmat", 16, "parents", sources=4),
        Scenario("rmat16-components", "rmat", 16, "components"),
        Scenario(
            "rmat16-levels-plain-br",
            "rmat",
            16,
            "levels",
            options=_options(direction_optimized=False),
            sources=4,
        ),
        Scenario("uniform16-levels-do-br", "uniform", 16, "levels", sources=4),
        Scenario("wdc16-levels-do-br", "wdc", 16, "levels", sources=4),
        Scenario("rmat17-levels-do-br", "rmat", 17, "levels", sources=4),
        # --- execution-backend axis: same workloads on the process pool --- #
        # Identical specs (and therefore counters) to their inline twins;
        # only wall-clock differs, which is exactly what the axis measures.
        Scenario(
            "rmat16-levels-do-br-process",
            "rmat",
            16,
            "levels",
            sources=4,
            backend="process",
        ),
        Scenario(
            "rmat17-levels-do-br-process",
            "rmat",
            17,
            "levels",
            sources=4,
            backend="process",
        ),
        # --- storage axis: same workload on a memory-mapped store ---------- #
        # Identical spec (and therefore counters) to rmat17-levels-do-br;
        # the adjacency lives in mmap-backed store segments instead of the
        # process heap, so only wall-clock and resident memory differ.
        Scenario(
            "rmat17-levels-do-br-mmap",
            "rmat",
            17,
            "levels",
            sources=4,
            storage="mmap",
        ),
        # --- out-of-core build: a graph ~4x larger than any other scenario - #
        # The gated phase is the streaming build itself (gate_phase =
        # "graph_build" in the record); edge generation, sorting, threshold
        # selection and CSR assembly all run in bounded blocks, so the build
        # works under a memory cap smaller than the graph (the CI leg runs
        # it under ulimit -v).  The traversal afterwards verifies the store.
        Scenario(
            "build-rmat19-stream",
            "rmat",
            19,
            "build",
            sources=2,
            storage="mmap",
            chunk_edges=1 << 20,
            block_edges=1 << 20,
        ),
    ]
    names = [s.name for s in scenarios]
    if len(set(names)) != len(names):  # pragma: no cover - registry typo guard
        raise AssertionError("duplicate scenario names in the bench registry")
    return tuple(scenarios)


#: The full, ordered scenario registry.
REGISTRY: tuple[Scenario, ...] = _build_registry()


def registry() -> tuple[Scenario, ...]:
    """All registered scenarios, in definition order."""
    return REGISTRY


def quick_scenarios() -> tuple[Scenario, ...]:
    """The CI smoke subset (small scales, a few seconds total)."""
    return tuple(s for s in REGISTRY if s.quick)


def find_scenarios(names: list[str]) -> tuple[Scenario, ...]:
    """Resolve scenario names, preserving registry order.

    Raises
    ------
    KeyError
        Naming every unknown scenario (with the valid names listed).
    """
    by_name = {s.name: s for s in REGISTRY}
    unknown = [n for n in names if n not in by_name]
    if unknown:
        raise KeyError(
            f"unknown scenario(s) {unknown}; valid names: {sorted(by_name)}"
        )
    wanted = set(names)
    return tuple(s for s in REGISTRY if s.name in wanted)
