"""The benchmark artifact: a stable, machine-readable performance snapshot.

Every invocation of the bench runner produces one JSON document — written to
``BENCH_<timestamp>.json`` by convention — that captures, per scenario:

* **wall-clock seconds** actually spent by this Python reproduction, broken
  into the pipeline phases (graph build, partitioning, traversal, and the
  traversal-internal kernel / exchange / delegate-reduce phases),
* the **modeled milliseconds** of the simulated GPU cluster (the quantity the
  paper reports), and
* the **workload counters** (edges examined per kernel class, communication
  volumes, iteration counts, a checksum of the answer) that must be
  bit-identical between runs of the same scenario on any machine.

The split matters for the CI perf gate: wall-clock numbers are only
comparable on similar hardware and are therefore gated with a *tolerance*,
while counters and modeled times are deterministic everywhere and any drift
in them means the traversal's behaviour changed — a much louder failure than
a slowdown.

The schema is versioned; :func:`load_artifact` refuses documents it does not
understand instead of mis-comparing them.

Each record additionally carries the resolved execution ``backend``
(``inline`` / ``process``) that ran the scenario.  The backend deliberately
lives *next to* the spec, not inside it: the spec identifies the workload,
counters are backend-invariant by construction, and keeping the spec
backend-free lets the comparator diff an inline artifact against a
process-pool artifact of the same scenarios — any counter difference then
surfaces as counter drift, i.e. a backend correctness bug.
"""

from __future__ import annotations

import json
import platform
import sys
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "BenchArtifactError",
    "new_artifact",
    "validate_artifact",
    "save_artifact",
    "load_artifact",
    "default_artifact_path",
]

#: Identifier every artifact carries; bump :data:`SCHEMA_VERSION` on changes.
SCHEMA = "repro.bench"
SCHEMA_VERSION = 1

#: Keys every per-scenario record must provide.
RECORD_KEYS = ("spec", "repeats", "wall_s", "modeled_ms", "counters")

#: Wall-clock phases recorded per scenario (seconds).
WALL_PHASES = (
    "graph_build",
    "partition",
    "traversal",
    "kernels",
    "exchange",
    "delegate_reduce",
    "total",
)


class BenchArtifactError(ValueError):
    """A benchmark artifact is missing, malformed, or from an unknown schema."""


def new_artifact(
    records: dict, label: str = "", quick: bool = False, created: str | None = None
) -> dict:
    """Assemble a schema-complete artifact from per-scenario records.

    Parameters
    ----------
    records:
        Mapping from scenario name to the record dictionary produced by
        :func:`repro.bench.runner.run_scenario`.
    label:
        Free-form description of what this snapshot measures (e.g. a commit
        subject or ``"before backward-visit vectorization"``).
    quick:
        Whether the quick subset (CI smoke) was run rather than the full grid.
    created:
        ISO-8601 creation timestamp; defaults to the current UTC time.
    """
    return {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "created": created
        if created is not None
        else datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "label": str(label),
        "quick": bool(quick),
        "host": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "scenarios": dict(records),
    }


def validate_artifact(obj: object, source: str = "artifact") -> dict:
    """Check that ``obj`` is a well-formed artifact; return it on success.

    Raises
    ------
    BenchArtifactError
        With a message naming ``source`` and the first problem found.
    """
    if not isinstance(obj, dict):
        raise BenchArtifactError(
            f"{source}: expected a JSON object, got {type(obj).__name__}"
        )
    if obj.get("schema") != SCHEMA:
        raise BenchArtifactError(
            f"{source}: schema is {obj.get('schema')!r}, expected {SCHEMA!r}"
        )
    version = obj.get("schema_version")
    if version != SCHEMA_VERSION:
        raise BenchArtifactError(
            f"{source}: schema_version {version!r} is not supported "
            f"(this code reads version {SCHEMA_VERSION})"
        )
    scenarios = obj.get("scenarios")
    if not isinstance(scenarios, dict):
        raise BenchArtifactError(f"{source}: 'scenarios' must be an object")
    for name, record in scenarios.items():
        if not isinstance(record, dict):
            raise BenchArtifactError(f"{source}: scenario {name!r} is not an object")
        for key in RECORD_KEYS:
            if key not in record:
                raise BenchArtifactError(f"{source}: scenario {name!r} lacks {key!r}")
        wall = record["wall_s"]
        if not isinstance(wall, dict):
            raise BenchArtifactError(f"{source}: scenario {name!r} wall_s must be an object")
        for phase, value in wall.items():
            if not isinstance(value, (int, float)) or value < 0:
                raise BenchArtifactError(
                    f"{source}: scenario {name!r} wall_s[{phase!r}] must be a "
                    f"non-negative number, got {value!r}"
                )
        if not isinstance(record["counters"], dict):
            raise BenchArtifactError(
                f"{source}: scenario {name!r} counters must be an object"
            )
    return obj


def save_artifact(artifact: dict, path: str | Path) -> Path:
    """Validate and write an artifact as indented JSON; return the path."""
    path = Path(path)
    validate_artifact(artifact, source=str(path))
    path.write_text(json.dumps(artifact, indent=2, sort_keys=False) + "\n")
    return path


def load_artifact(path: str | Path) -> dict:
    """Read and validate an artifact from disk.

    Raises
    ------
    BenchArtifactError
        When the file is missing, not JSON, or fails schema validation.
    """
    path = Path(path)
    if not path.exists():
        raise BenchArtifactError(f"{path}: no such artifact")
    try:
        obj = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise BenchArtifactError(f"{path}: not valid JSON ({exc})") from exc
    return validate_artifact(obj, source=str(path))


def default_artifact_path(directory: str | Path = ".") -> Path:
    """The conventional output path: ``BENCH_<UTC timestamp>.json``."""
    stamp = datetime.now(timezone.utc).strftime("%Y%m%dT%H%M%SZ")
    return Path(directory) / f"BENCH_{stamp}.json"
