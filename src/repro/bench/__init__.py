"""Benchmark & perf-regression subsystem (``repro.bench``).

The paper's contribution is performance, so this package gives the
reproduction a machine-readable performance trajectory:

* :mod:`repro.bench.scenarios` — a registry of fully-pinned benchmark
  scenarios spanning graph families, frontier programs and the BFS option
  grid;
* :mod:`repro.bench.runner` — a timed runner recording wall-clock per phase
  alongside the modeled cluster times and the deterministic workload
  counters (with a determinism guard across repeats);
* :mod:`repro.bench.artifact` — the versioned ``BENCH_<timestamp>.json``
  artifact schema;
* :mod:`repro.bench.compare` — the tolerance-gated comparator behind the CI
  perf gate (``repro bench compare``).

Typical use::

    from repro.bench import quick_scenarios, run_suite, compare_artifacts
    art = run_suite(quick_scenarios(), label="my change", quick=True)
    report = compare_artifacts(baseline, art, tolerance=0.2)
"""

from repro.bench.artifact import (
    BenchArtifactError,
    default_artifact_path,
    load_artifact,
    new_artifact,
    save_artifact,
    validate_artifact,
)
from repro.bench.compare import CompareReport, ScenarioDelta, compare_artifacts
from repro.bench.runner import (
    BenchDeterminismError,
    run_scenario,
    run_serve_scenario,
    run_suite,
    time_program,
    values_checksum,
)
from repro.bench.scenarios import (
    REGISTRY,
    Scenario,
    find_scenarios,
    quick_scenarios,
    registry,
)

__all__ = [
    "BenchArtifactError",
    "BenchDeterminismError",
    "CompareReport",
    "REGISTRY",
    "Scenario",
    "ScenarioDelta",
    "compare_artifacts",
    "default_artifact_path",
    "find_scenarios",
    "load_artifact",
    "new_artifact",
    "quick_scenarios",
    "registry",
    "run_scenario",
    "run_serve_scenario",
    "run_suite",
    "save_artifact",
    "time_program",
    "validate_artifact",
    "values_checksum",
]
