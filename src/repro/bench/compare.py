"""Comparing two benchmark artifacts: the perf-regression gate.

:func:`compare_artifacts` matches scenarios by name between an *old* (baseline)
and a *new* (candidate) artifact and classifies each one:

``regression``
    New traversal wall time exceeds the old by more than the tolerance.
``improvement``
    New traversal wall time undercuts the old by more than the tolerance.
``ok``
    Within the noise band.
``counter-drift``
    The scenario specs match but the deterministic workload counters (or the
    modeled times derived from them) differ — the traversal *behaved*
    differently, which is a correctness-level finding, not a perf one.
``added`` / ``removed``
    Scenario exists in only one artifact (informational).

Wall-clock comparisons are tolerance-gated because they depend on the host;
counters are compared exactly because they must not.  A changed spec (same
name, different graph/options) downgrades the scenario to informational —
timings of different workloads are not comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.artifact import validate_artifact

__all__ = ["ScenarioDelta", "CompareReport", "compare_artifacts"]

#: The wall phase the gate is keyed on when a record does not declare its
#: own (graph build and partitioning are shared infrastructure; the
#: traversal is what the optimizations target).  Records may override it via
#: a ``gate_phase`` key — out-of-core build scenarios gate on
#: ``graph_build``, because the build *is* their workload.
GATE_PHASE = "traversal"


@dataclass
class ScenarioDelta:
    """Comparison outcome for one scenario name."""

    name: str
    status: str
    old_wall_s: float | None = None
    new_wall_s: float | None = None
    note: str = ""

    @property
    def ratio(self) -> float | None:
        """new/old traversal wall time (``None`` when either side is absent)."""
        if not self.old_wall_s or self.new_wall_s is None:
            return None
        return self.new_wall_s / self.old_wall_s

    @property
    def wall_delta_s(self) -> float | None:
        """new - old gate-phase wall seconds (``None`` when either side is absent)."""
        if self.old_wall_s is None or self.new_wall_s is None:
            return None
        return self.new_wall_s - self.old_wall_s

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "status": self.status,
            "old_wall_s": self.old_wall_s,
            "new_wall_s": self.new_wall_s,
            "wall_delta_s": self.wall_delta_s,
            "ratio": self.ratio,
            "note": self.note,
        }


@dataclass
class CompareReport:
    """All per-scenario deltas plus the aggregate verdict."""

    tolerance: float
    deltas: list = field(default_factory=list)

    def by_status(self, status: str) -> list:
        return [d for d in self.deltas if d.status == status]

    @property
    def regressions(self) -> list:
        return self.by_status("regression")

    @property
    def improvements(self) -> list:
        return self.by_status("improvement")

    @property
    def counter_drifts(self) -> list:
        return self.by_status("counter-drift")

    @property
    def ok(self) -> bool:
        """No regression and no counter drift (the CI gate's pass condition)."""
        return not self.regressions and not self.counter_drifts

    @property
    def counters_ok(self) -> bool:
        """No counter drift (the *blocking* half of the CI gate).

        Counter drift means the traversal behaved differently — a
        correctness-level finding that must block, while wall-clock
        regressions on foreign hardware only warn; ``repro bench compare
        --fail-on counters`` keys its exit code on this property.
        """
        return not self.counter_drifts

    def as_dict(self) -> dict:
        return {
            "tolerance": self.tolerance,
            "ok": self.ok,
            "counters_ok": self.counters_ok,
            "regressions": len(self.regressions),
            "improvements": len(self.improvements),
            "counter_drifts": len(self.counter_drifts),
            # Names + first divergence per drifting scenario, so CI logs and
            # scripts can name the offenders without walking `scenarios`.
            "counter_drift_scenarios": [
                {"name": d.name, "note": d.note} for d in self.counter_drifts
            ],
            "regression_scenarios": [d.name for d in self.regressions],
            "scenarios": [d.as_dict() for d in self.deltas],
        }

    def summary_lines(self) -> list:
        """Human-readable report, one line per scenario plus a verdict."""
        lines = []
        for delta in self.deltas:
            if delta.old_wall_s is None or delta.new_wall_s is None:
                lines.append(f"  {delta.name:<28} {delta.status:<12} {delta.note}")
                continue
            ratio = delta.ratio
            change = f"{(ratio - 1) * 100:+.1f}%" if ratio is not None else "n/a"
            line = (
                f"  {delta.name:<28} {delta.status:<12} "
                f"{delta.old_wall_s * 1e3:9.2f} ms -> {delta.new_wall_s * 1e3:9.2f} ms "
                f"({change})"
            )
            if delta.note:
                line += f"  [{delta.note}]"
            lines.append(line)
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"{verdict}: {len(self.regressions)} regression(s), "
            f"{len(self.counter_drifts)} counter drift(s), "
            f"{len(self.improvements)} improvement(s) "
            f"at ±{self.tolerance * 100:.0f}% tolerance"
        )
        return lines


def _wall(record: dict) -> float | None:
    value = record.get("wall_s", {}).get(record.get("gate_phase", GATE_PHASE))
    return float(value) if value is not None else None


def _counter_note(old: dict, new: dict) -> str | None:
    """Describe the first deterministic divergence between two records."""
    old_counters, new_counters = old["counters"], new["counters"]
    for key in sorted(set(old_counters) | set(new_counters)):
        if old_counters.get(key) != new_counters.get(key):
            return (
                f"counters[{key}]: {old_counters.get(key)!r} != {new_counters.get(key)!r}"
            )
    return None


def compare_artifacts(
    old: dict, new: dict, tolerance: float = 0.2, min_delta_s: float = 0.010
) -> CompareReport:
    """Diff two artifacts scenario by scenario.

    Parameters
    ----------
    old, new:
        Artifact dictionaries (validated here; pass the output of
        :func:`repro.bench.artifact.load_artifact` or the runner directly).
    tolerance:
        Relative wall-clock band treated as noise, e.g. ``0.2`` = ±20 %.
        Counters are never tolerance-gated.
    min_delta_s:
        Absolute wall-clock floor: a change is only classified as
        regression/improvement when ``|new - old|`` also exceeds this many
        seconds.  Sub-10ms scenarios sit near the timer/scheduler noise
        floor, where a large *ratio* can be a tiny absolute wobble.
    """
    if not 0.0 <= tolerance < 10.0:
        raise ValueError(f"tolerance must be in [0, 10), got {tolerance}")
    if min_delta_s < 0.0:
        raise ValueError(f"min_delta_s must be non-negative, got {min_delta_s}")
    validate_artifact(old, source="old artifact")
    validate_artifact(new, source="new artifact")
    report = CompareReport(tolerance=tolerance)
    old_scenarios, new_scenarios = old["scenarios"], new["scenarios"]

    for name in sorted(set(old_scenarios) | set(new_scenarios)):
        if name not in new_scenarios:
            report.deltas.append(
                ScenarioDelta(name, "removed", old_wall_s=_wall(old_scenarios[name]),
                              note="only in old artifact")
            )
            continue
        if name not in old_scenarios:
            report.deltas.append(
                ScenarioDelta(name, "added", new_wall_s=_wall(new_scenarios[name]),
                              note="only in new artifact")
            )
            continue
        old_rec, new_rec = old_scenarios[name], new_scenarios[name]
        old_wall, new_wall = _wall(old_rec), _wall(new_rec)
        if old_rec["spec"] != new_rec["spec"]:
            report.deltas.append(
                ScenarioDelta(
                    name, "spec-changed", old_wall, new_wall,
                    note="scenario definition changed; timings not comparable",
                )
            )
            continue
        drift = _counter_note(old_rec, new_rec)
        if drift is not None:
            report.deltas.append(
                ScenarioDelta(name, "counter-drift", old_wall, new_wall, note=drift)
            )
            continue
        if old_wall is None or new_wall is None or old_wall == 0.0:
            report.deltas.append(
                ScenarioDelta(name, "ok", old_wall, new_wall, note="no gate phase timing")
            )
            continue
        ratio = new_wall / old_wall
        if abs(new_wall - old_wall) <= min_delta_s:
            status = "ok"
        elif ratio > 1.0 + tolerance:
            status = "regression"
        elif ratio < 1.0 - tolerance:
            status = "improvement"
        else:
            status = "ok"
        report.deltas.append(ScenarioDelta(name, status, old_wall, new_wall))
    return report
